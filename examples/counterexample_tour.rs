//! A tour of counterexample extraction: verify a property that fails and
//! inspect the violating symbolic local run service by service, through
//! the structured [`Witness`] of a [`VerificationReport`].
//!
//! Run with `cargo run --example counterexample_tour`.

use verifas::prelude::*;
use verifas::workloads::loan_approval;

fn main() -> Result<(), VerifasError> {
    let spec = loan_approval();
    let review = spec.task_by_name("Review").unwrap().0;
    // A property that does NOT hold: the review never rejects an
    // application.  Symbolically a local run may always choose "Rejected".
    let property = LtlFoProperty::new(
        "review-never-rejects",
        review,
        vec![],
        Ltl::globally(Ltl::not(Ltl::prop(0))),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(3)),
            Term::str("Rejected"),
        ))],
    );
    let engine = Engine::load(spec)?;
    let report = engine.check(&property)?;
    assert_eq!(report.outcome, VerificationOutcome::Violated);
    let witness = report.witness.as_ref().expect("a witness is produced");
    println!("property {:?} is violated", report.property);
    println!(
        "kind: {}",
        if witness.finite {
            "finite local run"
        } else {
            "infinite local run"
        }
    );
    println!(
        "violating run ({} observable transitions):",
        witness.steps.len()
    );
    for (i, step) in witness.steps.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, step.label);
    }
    println!("\nsearch statistics: {:?}", report.stats);
    Ok(())
}
