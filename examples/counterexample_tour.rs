//! A tour of counterexample extraction: verify a property that fails and
//! inspect the violating symbolic local run service by service.
//!
//! Run with `cargo run --example counterexample_tour`.

use verifas::core::{Verifier, VerifierOptions, VerificationOutcome};
use verifas::ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas::model::{Condition, Term, VarId};
use verifas::workloads::loan_approval;

fn main() {
    let spec = loan_approval();
    let review = spec.task_by_name("Review").unwrap().0;
    // A property that does NOT hold: the review never rejects an
    // application.  Symbolically a local run may always choose "Rejected".
    let property = LtlFoProperty::new(
        "review-never-rejects",
        review,
        vec![],
        Ltl::globally(Ltl::not(Ltl::prop(0))),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(3)),
            Term::str("Rejected"),
        ))],
    );
    let result = Verifier::new(&spec, &property, VerifierOptions::default())
        .unwrap()
        .verify();
    assert_eq!(result.outcome, VerificationOutcome::Violated);
    let cex = result.counterexample.expect("a counterexample is produced");
    println!("property {:?} is violated", property.name);
    println!("kind: {}", if cex.finite { "finite local run" } else { "infinite local run" });
    println!("violating run ({} observable transitions):", cex.services.len());
    for (i, service) in cex.services.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, spec.service_name(*service));
    }
    println!("\nsearch statistics: {:?}", result.stats);
}
