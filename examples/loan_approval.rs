//! Loan approval: animate the workflow with the concrete interpreter on a
//! small database, then verify properties of the Review subtask.
//!
//! Run with `cargo run --example loan_approval`.

use verifas::model::{DatabaseInstance, Interpreter, RunConfig, Tuple, Value};
use verifas::prelude::*;
use verifas::workloads::loan_approval;

fn main() -> Result<(), VerifasError> {
    let spec = loan_approval();
    // A concrete database: two applicants, one prime and one subprime.
    let bureau = spec.db.relation_by_name("BUREAU").unwrap().0;
    let applicants = spec.db.relation_by_name("APPLICANTS").unwrap().0;
    let mut db = DatabaseInstance::empty(spec.db.len());
    db.insert(
        bureau,
        Tuple {
            id: 1,
            attrs: vec![Value::str("Prime")],
        },
    );
    db.insert(
        bureau,
        Tuple {
            id: 2,
            attrs: vec![Value::str("Subprime")],
        },
    );
    db.insert(
        applicants,
        Tuple {
            id: 1,
            attrs: vec![Value::str("Ada"), Value::Id(bureau, 1)],
        },
    );
    db.insert(
        applicants,
        Tuple {
            id: 2,
            attrs: vec![Value::str("Bob"), Value::Id(bureau, 2)],
        },
    );
    db.validate(&spec.db).unwrap();

    // Animate a random run and collect local runs of the Review task.
    let review = spec.task_by_name("Review").unwrap().0;
    let config = RunConfig {
        seed: 7,
        max_steps: 120,
        ..RunConfig::default()
    };
    let mut interpreter = Interpreter::new(&spec, &db, config).unwrap();
    let runs = interpreter.run_collecting_local_runs(review);
    println!(
        "concrete run produced {} local run(s) of Review",
        runs.len()
    );
    for (i, run) in runs.iter().enumerate() {
        println!(
            "  run {i}: {} events, closed = {}",
            run.events.len(),
            run.closed
        );
    }

    // Verify: whenever Review closes it has reached a decision.
    let property = LtlFoProperty::new(
        "review-always-decides",
        review,
        vec![],
        Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
        vec![
            PropAtom::Service(ServiceRef::Closing(review)),
            PropAtom::Condition(Condition::neq(Term::var(VarId::new(3)), Term::Null)),
        ],
    );
    let engine = Engine::load(spec)?;
    let report = engine.check(&property)?;
    println!("G(close(Review) -> decision != null): {:?}", report.outcome);

    // The concrete runs are consistent with the verifier's verdict.
    for run in runs.iter().filter(|r| r.closed) {
        assert_eq!(property.check_local_run(&db, run), Some(true));
    }
    println!("all closed concrete local runs satisfy the property (oracle check)");
    Ok(())
}
