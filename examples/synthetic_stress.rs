//! Generate synthetic workflows (Appendix D) and verify the benchmark
//! properties on them, printing a small stress-test report.
//!
//! Run with `cargo run --release --example synthetic_stress`.

use verifas::core::{SearchLimits, Verifier, VerifierOptions, VerificationOutcome};
use verifas::workloads::{cyclomatic_complexity, generate_properties, generate_set, SyntheticParams};

fn main() {
    let params = SyntheticParams::small();
    let specs = generate_set(params, 6, 2017);
    println!("generated {} synthetic specifications ({params:?})", specs.len());
    let mut options = VerifierOptions::default();
    options.limits = SearchLimits { max_states: 5_000, max_millis: 1_000 };
    for spec in &specs {
        let mut verified = 0;
        let mut violated = 0;
        let mut inconclusive = 0;
        let start = std::time::Instant::now();
        for property in generate_properties(spec, 2017) {
            match Verifier::new(spec, &property, options).unwrap().verify().outcome {
                VerificationOutcome::Satisfied => verified += 1,
                VerificationOutcome::Violated => violated += 1,
                VerificationOutcome::Inconclusive => inconclusive += 1,
            }
        }
        println!(
            "{:<18} complexity {:>3}: {:>2} satisfied, {:>2} violated, {:>2} inconclusive ({} ms)",
            spec.name,
            cyclomatic_complexity(spec),
            verified,
            violated,
            inconclusive,
            start.elapsed().as_millis()
        );
    }
}
