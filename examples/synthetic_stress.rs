//! Generate synthetic workflows (Appendix D) and verify the benchmark
//! properties on them through [`Engine::check_all`], printing a small
//! stress-test report — then re-verify the hardest property with a
//! multi-threaded search (`search_threads`) and confirm the verdict and
//! witness are identical to the sequential run.
//!
//! Run with `cargo run --release --example synthetic_stress`.

use verifas::prelude::*;
use verifas::workloads::{
    cyclomatic_complexity, generate_properties, generate_set, SyntheticParams,
};

fn main() -> Result<(), VerifasError> {
    let params = SyntheticParams::small();
    let specs = generate_set(params, 6, 2017);
    println!(
        "generated {} synthetic specifications ({params:?})",
        specs.len()
    );
    let options = VerifierOptions {
        limits: SearchLimits {
            max_states: 5_000,
            max_millis: 1_000,
        },
        ..VerifierOptions::default()
    };
    let mut hardest: Option<(HasSpec, LtlFoProperty, usize)> = None;
    for spec in &specs {
        let complexity = cyclomatic_complexity(spec);
        let name = spec.name.clone();
        let properties = generate_properties(spec, 2017);
        let engine = Engine::load_with_options(spec.clone(), options)?;
        let start = std::time::Instant::now();
        // Batched verification: one preprocessing, parallel fan-out.
        let reports = engine.check_all(&properties);
        let mut verified = 0;
        let mut violated = 0;
        let mut inconclusive = 0;
        for (property, report) in properties.iter().zip(reports) {
            let report = report?;
            if hardest
                .as_ref()
                .is_none_or(|(_, _, states)| report.stats.states_created > *states)
            {
                hardest = Some((spec.clone(), property.clone(), report.stats.states_created));
            }
            match report.outcome {
                VerificationOutcome::Satisfied => verified += 1,
                VerificationOutcome::Violated => violated += 1,
                VerificationOutcome::Inconclusive => inconclusive += 1,
            }
        }
        println!(
            "{:<18} complexity {:>3}: {:>2} satisfied, {:>2} violated, {:>2} inconclusive ({} ms)",
            name,
            complexity,
            verified,
            violated,
            inconclusive,
            start.elapsed().as_millis()
        );
    }
    // The other parallelism knob: expand the frontier of a single hard
    // search with 4 workers.  The parallel search is deterministic, so
    // the verdict and witness must match the sequential run exactly.
    let (spec, property, states) = hardest.expect("some property was verified");
    println!(
        "\nhardest single search: {} ({} states) — re-verifying with search_threads = 4",
        property.name, states
    );
    let engine = Engine::load_with_options(spec, options)?;
    let sequential = engine.check(&property)?;
    let parallel = engine
        .verification()
        .property(&property)
        .search_threads(4)
        .run()?;
    assert_eq!(sequential.outcome, parallel.outcome);
    assert_eq!(sequential.witness, parallel.witness);
    println!(
        "sequential {:?} in {} ms; 4-thread {:?} in {} ms ({} worker(s) reported)",
        sequential.outcome,
        sequential.elapsed_ms(),
        parallel.outcome,
        parallel.elapsed_ms(),
        parallel.workers.len()
    );
    Ok(())
}
