//! Generate synthetic workflows (Appendix D) and verify the benchmark
//! properties on them through [`Engine::check_all`], printing a small
//! stress-test report.
//!
//! Run with `cargo run --release --example synthetic_stress`.

use verifas::prelude::*;
use verifas::workloads::{
    cyclomatic_complexity, generate_properties, generate_set, SyntheticParams,
};

fn main() -> Result<(), VerifasError> {
    let params = SyntheticParams::small();
    let specs = generate_set(params, 6, 2017);
    println!(
        "generated {} synthetic specifications ({params:?})",
        specs.len()
    );
    let options = VerifierOptions {
        limits: SearchLimits {
            max_states: 5_000,
            max_millis: 1_000,
        },
        ..VerifierOptions::default()
    };
    for spec in &specs {
        let complexity = cyclomatic_complexity(spec);
        let name = spec.name.clone();
        let properties = generate_properties(spec, 2017);
        let engine = Engine::load_with_options(spec.clone(), options)?;
        let start = std::time::Instant::now();
        // Batched verification: one preprocessing, parallel fan-out.
        let reports = engine.check_all(&properties);
        let mut verified = 0;
        let mut violated = 0;
        let mut inconclusive = 0;
        for report in reports {
            match report?.outcome {
                VerificationOutcome::Satisfied => verified += 1,
                VerificationOutcome::Violated => violated += 1,
                VerificationOutcome::Inconclusive => inconclusive += 1,
            }
        }
        println!(
            "{:<18} complexity {:>3}: {:>2} satisfied, {:>2} violated, {:>2} inconclusive ({} ms)",
            name,
            complexity,
            verified,
            violated,
            inconclusive,
            start.elapsed().as_millis()
        );
    }
    Ok(())
}
