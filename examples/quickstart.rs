//! Quickstart: specify a tiny artifact system, state an LTL-FO property and
//! verify it.
//!
//! Run with `cargo run --example quickstart`.

use verifas::core::{Verifier, VerifierOptions};
use verifas::ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas::model::schema::attr::data;
use verifas::model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term, VarId};

fn main() {
    // 1. A database schema with a single ITEMS relation.
    let mut db = DatabaseSchema::new();
    db.add_relation("ITEMS", vec![data("name")]).unwrap();

    // 2. A one-task workflow: an order moves null -> "Placed" -> "Shipped".
    let mut root = TaskBuilder::new("Orders");
    let status = root.data_var("status");
    root.service_parts(
        "Place",
        Condition::eq(Term::var(status), Term::Null),
        Condition::eq(Term::var(status), Term::str("Placed")),
        vec![],
        None,
    );
    root.service_parts(
        "Ship",
        Condition::eq(Term::var(status), Term::str("Placed")),
        Condition::eq(Term::var(status), Term::str("Shipped")),
        vec![],
        None,
    );
    root.service_parts(
        "Archive",
        Condition::eq(Term::var(status), Term::str("Shipped")),
        Condition::eq(Term::var(status), Term::Null),
        vec![],
        None,
    );
    let mut builder = SpecBuilder::new("quickstart", db, root.build());
    builder.global_pre(Condition::eq(Term::var(status), Term::Null));
    let spec = builder.build().expect("specification is well-formed");

    // 3. A property: an order is never shipped before being placed —
    //    expressed as "¬shipped until placed".
    let shipped = Condition::eq(Term::var(VarId::new(0)), Term::str("Shipped"));
    let placed = Condition::eq(Term::var(VarId::new(0)), Term::str("Placed"));
    let property = LtlFoProperty::new(
        "no-ship-before-place",
        spec.root(),
        vec![],
        Ltl::until(Ltl::not(Ltl::prop(0)), Ltl::prop(1)),
        vec![PropAtom::Condition(shipped), PropAtom::Condition(placed)],
    );

    // 4. Verify.
    let verifier = Verifier::new(&spec, &property, VerifierOptions::default()).unwrap();
    let result = verifier.verify();
    println!("property {:?}: {:?}", property.name, result.outcome);
    println!(
        "explored {} symbolic states in {} ms",
        result.stats.states_created,
        result.elapsed_ms()
    );
    if let Some(cex) = result.counterexample {
        println!("counterexample: {}", cex.description);
    }
}
