//! Quickstart: specify a tiny artifact system, state an LTL-FO property and
//! verify it through the session-oriented [`Engine`] API.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Note: the *primary* way to describe a scenario is now the textual
//! `.has` spec language — the same workflow below is a dozen lines of
//! text instead of builder calls, and runs without writing any Rust:
//!
//! ```text
//! cargo run --release --bin verifas -- check examples/specs/loan_approval.has
//! ```
//!
//! See `examples/specs/` for the corpus and the README "Spec language"
//! section for the grammar.  The builder API below remains the right
//! tool when specifications are *generated* (as the synthetic benchmark
//! does) or assembled dynamically.

use verifas::model::schema::attr::data;
use verifas::prelude::*;

fn main() -> Result<(), VerifasError> {
    // 1. A database schema with a single ITEMS relation.
    let mut db = DatabaseSchema::new();
    db.add_relation("ITEMS", vec![data("name")]).unwrap();

    // 2. A one-task workflow: an order moves null -> "Placed" -> "Shipped".
    let mut root = TaskBuilder::new("Orders");
    let status = root.data_var("status");
    root.service_parts(
        "Place",
        Condition::eq(Term::var(status), Term::Null),
        Condition::eq(Term::var(status), Term::str("Placed")),
        vec![],
        None,
    );
    root.service_parts(
        "Ship",
        Condition::eq(Term::var(status), Term::str("Placed")),
        Condition::eq(Term::var(status), Term::str("Shipped")),
        vec![],
        None,
    );
    root.service_parts(
        "Archive",
        Condition::eq(Term::var(status), Term::str("Shipped")),
        Condition::eq(Term::var(status), Term::Null),
        vec![],
        None,
    );
    let mut builder = SpecBuilder::new("quickstart", db, root.build());
    builder.global_pre(Condition::eq(Term::var(status), Term::Null));
    let spec = builder.build().expect("specification is well-formed");

    // 3. A property: an order is never shipped before being placed —
    //    expressed as "¬shipped until placed".
    let shipped = Condition::eq(Term::var(VarId::new(0)), Term::str("Shipped"));
    let placed = Condition::eq(Term::var(VarId::new(0)), Term::str("Placed"));
    let property = LtlFoProperty::new(
        "no-ship-before-place",
        spec.root(),
        vec![],
        Ltl::until(Ltl::not(Ltl::prop(0)), Ltl::prop(1)),
        vec![PropAtom::Condition(shipped), PropAtom::Condition(placed)],
    );

    // 4. Load the engine once, then verify.
    let engine = Engine::load(spec)?;
    let report = engine.check(&property)?;
    println!("property {:?}: {:?}", report.property, report.outcome);
    println!(
        "explored {} symbolic states in {} ms",
        report.stats.states_created,
        report.elapsed_ms()
    );
    if let Some(witness) = &report.witness {
        println!("counterexample: {}", witness.description);
    }
    // Every report is JSON-serializable for downstream tooling.
    println!("report: {}", report.to_json());
    Ok(())
}
