//! The paper's running example: the order fulfillment workflow and the
//! restock-before-ship property (†), verified on the correct specification
//! and on a buggy variant whose ShipItem task forgets to check the stock.
//!
//! Run with `cargo run --release --example order_fulfillment`.

use verifas::core::{Verifier, VerifierOptions, VerificationOutcome};
use verifas::ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas::model::{Condition, ServiceRef, Term};
use verifas::workloads::{order_fulfillment, order_fulfillment_buggy, order_fulfillment_property};

fn main() {
    for spec in [order_fulfillment(), order_fulfillment_buggy()] {
        println!("=== {} ===", spec.name);
        println!("tasks: {:?}", spec.tasks.iter().map(|t| t.name.clone()).collect::<Vec<_>>());

        // A guard property that distinguishes the two variants crisply:
        // whenever ShipItem is opened, the item must be in stock.
        let (_, root) = spec.task_by_name("ProcessOrders").unwrap();
        let instock = root.var_by_name("instock").unwrap().0;
        let ship = spec.task_by_name("ShipItem").unwrap().0;
        let guard = LtlFoProperty::new(
            "ship-only-in-stock",
            spec.root(),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
            vec![
                PropAtom::Service(ServiceRef::Opening(ship)),
                PropAtom::Condition(Condition::eq(Term::var(instock), Term::str("Yes"))),
            ],
        );
        let result = Verifier::new(&spec, &guard, VerifierOptions::default())
            .unwrap()
            .verify();
        println!("  G(open(ShipItem) -> instock = \"Yes\"): {:?}", result.outcome);
        if let Some(cex) = &result.counterexample {
            println!("    counterexample: {}", cex.description);
        }

        // The paper's property (†) with a universally quantified item.
        let dagger = order_fulfillment_property(&spec);
        let result = Verifier::new(&spec, &dagger, VerifierOptions::default())
            .unwrap()
            .verify();
        println!("  property (†) restock-before-ship: {:?}", result.outcome);
        if result.outcome == VerificationOutcome::Violated {
            if let Some(cex) = &result.counterexample {
                println!("    counterexample ({} steps): {}", cex.services.len(), cex.description);
            }
        }
        println!();
    }
}
