//! The paper's running example: the order fulfillment workflow and the
//! restock-before-ship property (†), verified on the correct specification
//! and on a buggy variant whose ShipItem task forgets to check the stock.
//!
//! One [`Engine`] per specification serves both properties, sharing the
//! spec-side preprocessing between them.
//!
//! Run with `cargo run --release --example order_fulfillment`.

use verifas::prelude::*;
use verifas::workloads::{order_fulfillment, order_fulfillment_buggy, order_fulfillment_property};

fn main() -> Result<(), VerifasError> {
    for spec in [order_fulfillment(), order_fulfillment_buggy()] {
        println!("=== {} ===", spec.name);
        println!(
            "tasks: {:?}",
            spec.tasks
                .iter()
                .map(|t| t.name.clone())
                .collect::<Vec<_>>()
        );

        // A guard property that distinguishes the two variants crisply:
        // whenever ShipItem is opened, the item must be in stock.
        let (_, root) = spec.task_by_name("ProcessOrders").unwrap();
        let instock = root.var_by_name("instock").unwrap().0;
        let ship = spec.task_by_name("ShipItem").unwrap().0;
        let guard = LtlFoProperty::new(
            "ship-only-in-stock",
            spec.root(),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
            vec![
                PropAtom::Service(ServiceRef::Opening(ship)),
                PropAtom::Condition(Condition::eq(Term::var(instock), Term::str("Yes"))),
            ],
        );
        // The paper's property (†) with a universally quantified item.
        let dagger = order_fulfillment_property(&spec);

        let engine = Engine::load(spec)?;
        let report = engine.check(&guard)?;
        println!(
            "  G(open(ShipItem) -> instock = \"Yes\"): {:?}",
            report.outcome
        );
        if let Some(witness) = &report.witness {
            println!("    counterexample: {}", witness.description);
        }

        let report = engine.check(&dagger)?;
        println!("  property (†) restock-before-ship: {:?}", report.outcome);
        if report.outcome == VerificationOutcome::Violated {
            if let Some(witness) = &report.witness {
                println!(
                    "    counterexample ({} steps): {}",
                    witness.steps.len(),
                    witness.description
                );
            }
        }
        println!();
    }
    Ok(())
}
