//! End-to-end tests of the `verifas serve` service layer.
//!
//! The server's whole value proposition is that putting a multi-tenant
//! gateway, a session cache and a core arbiter between the client and
//! the engine changes *nothing* about the answers: every report that
//! comes out of a served request must be bit-identical (modulo timing
//! and machine-sharing fields) to a direct `Engine::check_all` of the
//! same properties — including when an interactive request lands
//! mid-batch and steals cores from the running searches.  These tests
//! pin exactly that, plus the cache-reuse guarantee (a re-submitted
//! spec builds zero new preprocessing, observed through
//! `verifas::core::counters`), admission queueing with typed overflow
//! refusals, server-side cancellation, shutdown and client-disconnect
//! resource reclamation, and the HTTP front end.

use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use verifas::core::{counters, Json};
use verifas::prelude::*;
use verifas::serve::{AdmissionLimits, Gateway, PriorityClass, ServeConfig, Server, VerifyRequest};
use verifas::ReuseMode;

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(name);
    std::fs::read_to_string(&path).expect("example spec exists")
}

/// A report's scheduling-independent core (same idiom as the
/// `batch_scheduling` suite): verdict, witness and search statistics
/// with timing and machine-sharing fields stripped.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

fn request(spec: &str, class: PriorityClass) -> VerifyRequest {
    VerifyRequest {
        spec: spec.to_owned(),
        class,
        properties: None,
        deadline_ms: None,
        max_states: None,
        max_millis: None,
    }
}

/// Submit synchronously, collecting every frame.
fn collect(gateway: &Gateway, request: &VerifyRequest) -> Vec<Json> {
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| frames.lock().unwrap().push(Json::parse(line).unwrap());
    gateway
        .submit(request, &sink)
        .expect("request should be served");
    frames.into_inner().unwrap()
}

fn frame_kind(frame: &Json) -> &str {
    frame.get("frame").and_then(Json::as_str).unwrap()
}

/// Extract the streamed per-property reports, keyed by property index.
fn streamed_reports(frames: &[Json]) -> Vec<(usize, VerificationReport)> {
    frames
        .iter()
        .filter(|frame| frame_kind(frame) == "report")
        .map(|frame| {
            let index = frame.get("index").and_then(Json::as_u64).unwrap() as usize;
            let report = frame.get("report").expect("no error reports in this test");
            (
                index,
                VerificationReport::from_json(&report.to_string()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn resubmitted_spec_reuses_cached_session_and_matches_direct_check_all() {
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let direct = Engine::load(compiled.spec.clone())
        .unwrap()
        .check_all(&compiled.properties);

    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    });
    let frames = collect(&gateway, &request(&source, PriorityClass::Interactive));

    // Frame shape: `admitted` first, `done` last, one `report` per
    // property in between, streamed in completion order.
    assert_eq!(frame_kind(&frames[0]), "admitted");
    assert_eq!(
        frames[0].get("session").and_then(Json::as_str),
        Some("miss")
    );
    assert_eq!(frame_kind(frames.last().unwrap()), "done");
    let reports = streamed_reports(&frames);
    assert_eq!(reports.len(), compiled.properties.len());

    // Served reports are bit-identical to the direct engine run.
    for (index, report) in &reports {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap()),
            "property #{index} must not change behind the server"
        );
    }

    // Re-submitting the same spec — reformatted, so the *text* differs —
    // lands on the cached session and builds no new preprocessing.
    let universe_before = counters::universe_builds();
    let graph_before = counters::spec_graph_builds();
    let reformatted = format!("// resubmission with different formatting\n{source}\n\n");
    let frames = collect(&gateway, &request(&reformatted, PriorityClass::Interactive));
    assert_eq!(
        frames[0].get("session").and_then(Json::as_str),
        Some("hit"),
        "format-equivalent spec must share the session"
    );
    assert_eq!(
        (counters::universe_builds(), counters::spec_graph_builds()),
        (universe_before, graph_before),
        "a cached session must serve the batch with zero new preprocessing"
    );
    for (index, report) in &streamed_reports(&frames) {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap())
        );
    }
    let stats = gateway.sessions().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

/// A long batch request is running; an interactive request arrives,
/// which makes the arbiter squeeze the batch to its one-core floor
/// mid-search (through the scheduler handle, picked up at the next
/// round boundary).  Scheduling rounds are bit-identical for any worker
/// count, so the batch's verdicts, witnesses and search statistics must
/// come out exactly as a direct `Engine::check_all` — that is the whole
/// safety argument for preemption-by-rebalance.
#[test]
fn interactive_arrival_mid_batch_never_changes_batch_results() {
    let batch_source = example("conference_review.has");
    let compiled = verifas::spec::compile(&batch_source).unwrap();
    // Stretch the batch by requesting each property several times: 12
    // searches keep the batch in flight long after the interactive
    // request lands.
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    let repeated: Vec<String> = std::iter::repeat_n(names.clone(), 6).flatten().collect();
    let selected: Vec<LtlFoProperty> = repeated
        .iter()
        .map(|name| {
            compiled
                .properties
                .iter()
                .find(|p| &p.name == name)
                .unwrap()
                .clone()
        })
        .collect();
    let direct = Engine::load(compiled.spec.clone())
        .unwrap()
        .check_all(&selected);

    let gateway = Arc::new(Gateway::new(ServeConfig {
        cores: 4,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    }));

    let mut batch_request = request(&batch_source, PriorityClass::Batch);
    batch_request.properties = Some(repeated.clone());
    let (frame_tx, frame_rx) = mpsc::channel::<String>();
    let batch_thread = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            let sink = move |line: &str| frame_tx.send(line.to_owned()).unwrap();
            gateway.submit(&batch_request, &sink).unwrap()
        })
    };

    // Wait for the batch to be admitted (it holds its arbiter slot from
    // this moment until its `done` frame), then hit the server with an
    // interactive request.
    let admitted = Json::parse(&frame_rx.recv().unwrap()).unwrap();
    assert_eq!(frame_kind(&admitted), "admitted");
    assert_eq!(admitted.get("cores").and_then(Json::as_u64), Some(4));

    let interactive_frames = collect(
        &gateway,
        &request(&example("loan_approval.has"), PriorityClass::Interactive),
    );
    // The interactive request was allocated the reclaimed cores: with
    // the batch squeezed to its one-core floor, 4 - 1 = 3 are left.
    assert_eq!(
        interactive_frames[0].get("cores").and_then(Json::as_u64),
        Some(3),
        "interactive admission must reclaim cores from the running batch"
    );
    assert_eq!(frame_kind(interactive_frames.last().unwrap()), "done");

    let summary = batch_thread.join().unwrap();
    assert_eq!(summary.properties, repeated.len());
    assert_eq!(summary.completed, repeated.len());
    assert!(!summary.aborted);

    let frames: Vec<Json> = frame_rx
        .iter()
        .map(|line| Json::parse(&line).unwrap())
        .collect();
    let reports = streamed_reports(&frames);
    assert_eq!(reports.len(), repeated.len());
    for (index, report) in &reports {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap()),
            "property #{index}: a mid-run core rebalance must never change the result"
        );
    }
}

#[test]
fn over_limit_batch_queues_and_only_queue_overflow_is_refused() {
    let gateway = Arc::new(Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits {
            max_interactive: 2,
            max_batch: 1,
            queue_depth: 1,
        },
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    }));
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();

    let mut long_batch = request(&source, PriorityClass::Batch);
    long_batch.properties = Some(std::iter::repeat_n(names, 6).flatten().collect::<Vec<_>>());
    let (frame_tx, frame_rx) = mpsc::channel::<String>();
    let first_batch = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            let sink = move |line: &str| frame_tx.send(line.to_owned()).unwrap();
            gateway.submit(&long_batch, &sink).unwrap()
        })
    };
    let admitted = Json::parse(&frame_rx.recv().unwrap()).unwrap();
    assert_eq!(frame_kind(&admitted), "admitted");

    // A second batch-class request is over the in-flight limit: it is
    // *queued*, not refused — the client gets an immediate `queued`
    // frame with its position and a retry hint, and the request runs
    // once the first batch releases its slot.
    let (second_tx, second_rx) = mpsc::channel::<String>();
    let second_batch = {
        let gateway = Arc::clone(&gateway);
        let queued_request = request(&source, PriorityClass::Batch);
        std::thread::spawn(move || {
            let sink = move |line: &str| second_tx.send(line.to_owned()).unwrap();
            gateway.submit(&queued_request, &sink).unwrap()
        })
    };
    let queued = Json::parse(&second_rx.recv().unwrap()).unwrap();
    assert_eq!(frame_kind(&queued), "queued");
    assert_eq!(queued.get("class").and_then(Json::as_str), Some("batch"));
    assert_eq!(queued.get("position").and_then(Json::as_u64), Some(1));
    assert!(
        queued.get("retry_ms").and_then(Json::as_u64).unwrap() >= 50,
        "a queued frame must carry a usable retry hint"
    );

    // With one request running and one waiting (queue_depth 1), a third
    // batch arrival overflows the lane: the only refusal left, typed.
    let refused = gateway
        .submit(&request(&source, PriorityClass::Batch), &|_| {
            panic!("refused requests must not emit frames")
        })
        .unwrap_err();
    assert_eq!(
        refused,
        verifas::serve::ServeError::Overloaded {
            class: PriorityClass::Batch,
            limit: 1
        }
    );
    assert_eq!(refused.kind(), "overloaded");

    // The batch lane being full does not gate the interactive class.
    let frames = collect(
        &gateway,
        &request(&example("loan_approval.has"), PriorityClass::Interactive),
    );
    assert_eq!(frame_kind(frames.last().unwrap()), "done");

    let first_summary = first_batch.join().unwrap();
    assert!(!first_summary.aborted);
    let second_summary = second_batch.join().unwrap();
    assert!(
        !second_summary.aborted,
        "the queued request must run to completion once a slot frees"
    );
    let second_frames: Vec<Json> = second_rx
        .iter()
        .map(|line| Json::parse(&line).unwrap())
        .collect();
    assert!(
        second_frames.iter().any(|f| frame_kind(f) == "admitted"),
        "a queued request must still get its admitted frame"
    );
    // Both the queueing and the overflow refusal are visible on /metrics,
    // and the lane drained completely.
    let text = gateway.metrics_text();
    assert!(text.contains("verifas_requests_queued_total{class=\"batch\"} 1"));
    assert!(text.contains("verifas_requests_rejected_total{class=\"batch\"} 1"));
    assert_eq!(gateway.queue().queued_len(PriorityClass::Batch), 0);
    assert_eq!(gateway.queue().in_flight(PriorityClass::Batch), 0);
}

#[test]
fn server_side_cancel_stops_every_search_of_a_batch() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    });
    let source = example("parcel_returns.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    let mut req = request(&source, PriorityClass::Batch);
    let repeated: Vec<String> = std::iter::repeat_n(names, 4).flatten().collect();
    req.properties = Some(repeated.clone());

    // Cancel through the *server's* cancel path the moment the request
    // is admitted: the one batch-wide token must stop every search.
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| {
        let frame = Json::parse(line).unwrap();
        if frame_kind(&frame) == "admitted" {
            let id = frame.get("request").and_then(Json::as_u64).unwrap();
            assert!(gateway.cancel(id), "admitted request must be cancellable");
        }
        frames.lock().unwrap().push(frame);
    };
    let summary = gateway.submit(&req, &sink).unwrap();

    assert!(summary.aborted, "a cancelled batch must report aborted");
    assert_eq!(summary.cancelled, repeated.len());
    assert_eq!(summary.completed, 0);
    let frames = frames.into_inner().unwrap();
    let done = frames.last().unwrap();
    assert_eq!(frame_kind(done), "done");
    assert_eq!(
        done.get("summary")
            .and_then(|s| s.get("aborted"))
            .and_then(Json::as_bool),
        Some(true),
        "the terminal frame must distinguish an aborted stream from a finished one"
    );
    // The cancelled request released its slot: the server is not wedged.
    assert_eq!(gateway.arbiter().in_flight(PriorityClass::Batch), 0);
}

#[test]
fn per_request_deadline_rides_the_cancel_plumbing() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    });
    let mut req = request(
        &example("conference_review.has"),
        PriorityClass::Interactive,
    );
    req.deadline_ms = Some(0);
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| frames.lock().unwrap().push(Json::parse(line).unwrap());
    let summary = gateway.submit(&req, &sink).unwrap();
    assert!(summary.aborted, "an expired deadline must abort the stream");
    assert_eq!(summary.completed, 0);
}

#[test]
fn http_round_trip_streams_reports_and_reuses_sessions() {
    use std::io::{Read, Write};

    let mut server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        },
        2,
    )
    .unwrap();
    let addr = server.local_addr();
    let source = example("order_fulfillment.has");
    let verify = |body: &str| {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let request = format!(
            "POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        body.lines()
            .map(|line| Json::parse(line).unwrap())
            .collect::<Vec<_>>()
    };
    let body = Json::Obj(vec![("spec".to_owned(), Json::Str(source.clone()))]).to_string();

    let first = verify(&body);
    assert_eq!(frame_kind(&first[0]), "admitted");
    assert_eq!(first[0].get("session").and_then(Json::as_str), Some("miss"));
    assert_eq!(frame_kind(first.last().unwrap()), "done");
    assert!(first.len() >= 3);

    let second = verify(&body);
    assert_eq!(
        second[0].get("session").and_then(Json::as_str),
        Some("hit"),
        "second HTTP submission must reuse the cached session"
    );

    let text = server.gateway().metrics_text();
    assert!(text.contains("verifas_session_cache_lookups_total{result=\"hit\"} 1"));
    assert!(text.contains("verifas_requests_admitted_total{class=\"interactive\"} 2"));
    server.shutdown();
}

/// Cancelling a request whose stream already finished is a clean no-op:
/// the id has left the active table, so `cancel` reports not-found
/// instead of poking a dead token (the completion/cancel race is
/// inherent, so not-found is an answer, not an error).
#[test]
fn cancel_after_done_is_a_not_found_no_op() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    });
    let frames = collect(
        &gateway,
        &request(&example("loan_approval.has"), PriorityClass::Interactive),
    );
    assert_eq!(frame_kind(frames.last().unwrap()), "done");
    let id = frames[0].get("request").and_then(Json::as_u64).unwrap();
    assert!(
        !gateway.cancel(id),
        "a finished request must no longer be cancellable"
    );
    assert!(
        !gateway.cancel(id + 1000),
        "an unknown id is the same no-op"
    );
    assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
}

/// Cancelling the same in-flight request twice is idempotent: both
/// calls find the request, the second re-fires an already-fired token,
/// and the stream still ends in exactly one aborted `done` frame with
/// every slot released.
#[test]
fn double_cancel_is_idempotent() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
        memory_bytes: 0,
    });
    let source = example("parcel_returns.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    let mut req = request(&source, PriorityClass::Batch);
    req.properties = Some(std::iter::repeat_n(names, 4).flatten().collect::<Vec<_>>());

    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| {
        let frame = Json::parse(line).unwrap();
        if frame_kind(&frame) == "admitted" {
            let id = frame.get("request").and_then(Json::as_u64).unwrap();
            assert!(gateway.cancel(id), "first cancel must find the request");
            assert!(
                gateway.cancel(id),
                "second cancel must be an idempotent hit"
            );
        }
        frames.lock().unwrap().push(frame);
    };
    let summary = gateway.submit(&req, &sink).unwrap();
    assert!(summary.aborted);
    assert_eq!(summary.completed, 0);
    let frames = frames.into_inner().unwrap();
    assert_eq!(
        frames
            .iter()
            .filter(|frame| frame_kind(frame) == "done")
            .count(),
        1,
        "a double-cancelled stream still ends in exactly one done frame"
    );
    assert_eq!(gateway.arbiter().in_flight(PriorityClass::Batch), 0);
    assert_eq!(gateway.queue().in_flight(PriorityClass::Batch), 0);
}

/// `Server::shutdown` with a request mid-stream: the in-flight batch is
/// cancelled (not leaked, not wedged), its client sees a well-formed
/// aborted `done` frame, and every thread joins.
#[test]
fn shutdown_with_inflight_requests_aborts_the_stream_and_joins() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        },
        2,
    )
    .unwrap();
    let addr = server.local_addr();
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<Json> = std::iter::repeat_n(&compiled.properties, 8)
        .flatten()
        .map(|p| Json::Str(p.name.clone()))
        .collect();
    let body = Json::Obj(vec![
        ("spec".to_owned(), Json::Str(source)),
        ("class".to_owned(), Json::Str("batch".to_owned())),
        ("properties".to_owned(), Json::Arr(names)),
    ])
    .to_string();

    let (admitted_tx, admitted_rx) = mpsc::channel::<()>();
    let client = std::thread::spawn(move || {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let http = format!(
            "POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        (&stream).write_all(http.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed before the body");
            if line == "\r\n" {
                break;
            }
        }
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        admitted_tx.send(()).unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        let mut frames = vec![Json::parse(first.trim()).unwrap()];
        frames.extend(rest.lines().map(|l| Json::parse(l).unwrap()));
        frames
    });

    admitted_rx.recv().unwrap();
    server.shutdown();
    let frames = client.join().unwrap();
    assert_eq!(frame_kind(&frames[0]), "admitted");
    let done = frames.last().unwrap();
    assert_eq!(frame_kind(done), "done");
    assert_eq!(
        done.get("summary")
            .and_then(|s| s.get("aborted"))
            .and_then(Json::as_bool),
        Some(true),
        "shutdown must abort the in-flight stream, not truncate it"
    );
    let text = server.gateway().metrics_text();
    assert!(text.contains("verifas_requests_in_flight{class=\"batch\"} 0"));
    assert!(text.contains("verifas_queue_depth{class=\"batch\"} 0"));
}

/// A client that hangs up mid-stream costs the server at most the rest
/// of that batch: the searches run their course with writes swallowed,
/// after which the request guard reclaims the cores, the admission
/// slot, and the in-flight gauges — and the server keeps serving.
#[test]
fn client_disconnect_mid_stream_reclaims_cores_and_gauges() {
    use std::io::{BufRead, BufReader, Write};
    use std::time::{Duration, Instant};

    let mut server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        },
        2,
    )
    .unwrap();
    let addr = server.local_addr();
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<Json> = std::iter::repeat_n(&compiled.properties, 2)
        .flatten()
        .map(|p| Json::Str(p.name.clone()))
        .collect();
    let body = Json::Obj(vec![
        ("spec".to_owned(), Json::Str(source)),
        ("class".to_owned(), Json::Str("batch".to_owned())),
        ("properties".to_owned(), Json::Arr(names)),
    ])
    .to_string();

    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let http = format!(
            "POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        (&stream).write_all(http.as_bytes()).unwrap();
        let mut reader = BufReader::new(&stream);
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed before the body");
            if line == "\r\n" {
                break;
            }
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            frame_kind(&Json::parse(line.trim()).unwrap()),
            "admitted",
            "the stream must be live before we hang up on it"
        );
        // Scope end: the connection drops mid-stream.
    }

    // The batch finishes server-side (writes silently swallowed), after
    // which every gauge must return to zero.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if server.gateway().arbiter().in_flight(PriorityClass::Batch) == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnected client's request never released its slot"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let text = server.gateway().metrics_text();
    assert!(text.contains("verifas_requests_in_flight{class=\"batch\"} 0"));
    assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
    assert!(text.contains("verifas_queue_depth{class=\"batch\"} 0"));

    // The server is still healthy and still answers.
    let stream = std::net::TcpStream::connect(addr).unwrap();
    (&stream)
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    server.shutdown();
}
