//! End-to-end tests of the `verifas serve` service layer.
//!
//! The server's whole value proposition is that putting a multi-tenant
//! gateway, a session cache and a core arbiter between the client and
//! the engine changes *nothing* about the answers: every report that
//! comes out of a served request must be bit-identical (modulo timing
//! and machine-sharing fields) to a direct `Engine::check_all` of the
//! same properties — including when an interactive request lands
//! mid-batch and steals cores from the running searches.  These tests
//! pin exactly that, plus the cache-reuse guarantee (a re-submitted
//! spec builds zero new preprocessing, observed through
//! `verifas::core::counters`), typed admission refusals, server-side
//! cancellation, and the HTTP front end.

use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use verifas::core::{counters, Json};
use verifas::prelude::*;
use verifas::serve::{AdmissionLimits, Gateway, PriorityClass, ServeConfig, Server, VerifyRequest};
use verifas::ReuseMode;

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(name);
    std::fs::read_to_string(&path).expect("example spec exists")
}

/// A report's scheduling-independent core (same idiom as the
/// `batch_scheduling` suite): verdict, witness and search statistics
/// with timing and machine-sharing fields stripped.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

fn request(spec: &str, class: PriorityClass) -> VerifyRequest {
    VerifyRequest {
        spec: spec.to_owned(),
        class,
        properties: None,
        deadline_ms: None,
    }
}

/// Submit synchronously, collecting every frame.
fn collect(gateway: &Gateway, request: &VerifyRequest) -> Vec<Json> {
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| frames.lock().unwrap().push(Json::parse(line).unwrap());
    gateway
        .submit(request, &sink)
        .expect("request should be served");
    frames.into_inner().unwrap()
}

fn frame_kind(frame: &Json) -> &str {
    frame.get("frame").and_then(Json::as_str).unwrap()
}

/// Extract the streamed per-property reports, keyed by property index.
fn streamed_reports(frames: &[Json]) -> Vec<(usize, VerificationReport)> {
    frames
        .iter()
        .filter(|frame| frame_kind(frame) == "report")
        .map(|frame| {
            let index = frame.get("index").and_then(Json::as_u64).unwrap() as usize;
            let report = frame.get("report").expect("no error reports in this test");
            (
                index,
                VerificationReport::from_json(&report.to_string()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn resubmitted_spec_reuses_cached_session_and_matches_direct_check_all() {
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let direct = Engine::load(compiled.spec.clone())
        .unwrap()
        .check_all(&compiled.properties);

    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
    });
    let frames = collect(&gateway, &request(&source, PriorityClass::Interactive));

    // Frame shape: `admitted` first, `done` last, one `report` per
    // property in between, streamed in completion order.
    assert_eq!(frame_kind(&frames[0]), "admitted");
    assert_eq!(
        frames[0].get("session").and_then(Json::as_str),
        Some("miss")
    );
    assert_eq!(frame_kind(frames.last().unwrap()), "done");
    let reports = streamed_reports(&frames);
    assert_eq!(reports.len(), compiled.properties.len());

    // Served reports are bit-identical to the direct engine run.
    for (index, report) in &reports {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap()),
            "property #{index} must not change behind the server"
        );
    }

    // Re-submitting the same spec — reformatted, so the *text* differs —
    // lands on the cached session and builds no new preprocessing.
    let universe_before = counters::universe_builds();
    let graph_before = counters::spec_graph_builds();
    let reformatted = format!("// resubmission with different formatting\n{source}\n\n");
    let frames = collect(&gateway, &request(&reformatted, PriorityClass::Interactive));
    assert_eq!(
        frames[0].get("session").and_then(Json::as_str),
        Some("hit"),
        "format-equivalent spec must share the session"
    );
    assert_eq!(
        (counters::universe_builds(), counters::spec_graph_builds()),
        (universe_before, graph_before),
        "a cached session must serve the batch with zero new preprocessing"
    );
    for (index, report) in &streamed_reports(&frames) {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap())
        );
    }
    let stats = gateway.sessions().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

/// A long batch request is running; an interactive request arrives,
/// which makes the arbiter squeeze the batch to its one-core floor
/// mid-search (through the scheduler handle, picked up at the next
/// round boundary).  Scheduling rounds are bit-identical for any worker
/// count, so the batch's verdicts, witnesses and search statistics must
/// come out exactly as a direct `Engine::check_all` — that is the whole
/// safety argument for preemption-by-rebalance.
#[test]
fn interactive_arrival_mid_batch_never_changes_batch_results() {
    let batch_source = example("conference_review.has");
    let compiled = verifas::spec::compile(&batch_source).unwrap();
    // Stretch the batch by requesting each property several times: 12
    // searches keep the batch in flight long after the interactive
    // request lands.
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    let repeated: Vec<String> = std::iter::repeat_n(names.clone(), 6).flatten().collect();
    let selected: Vec<LtlFoProperty> = repeated
        .iter()
        .map(|name| {
            compiled
                .properties
                .iter()
                .find(|p| &p.name == name)
                .unwrap()
                .clone()
        })
        .collect();
    let direct = Engine::load(compiled.spec.clone())
        .unwrap()
        .check_all(&selected);

    let gateway = Arc::new(Gateway::new(ServeConfig {
        cores: 4,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
    }));

    let mut batch_request = request(&batch_source, PriorityClass::Batch);
    batch_request.properties = Some(repeated.clone());
    let (frame_tx, frame_rx) = mpsc::channel::<String>();
    let batch_thread = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            let sink = move |line: &str| frame_tx.send(line.to_owned()).unwrap();
            gateway.submit(&batch_request, &sink).unwrap()
        })
    };

    // Wait for the batch to be admitted (it holds its arbiter slot from
    // this moment until its `done` frame), then hit the server with an
    // interactive request.
    let admitted = Json::parse(&frame_rx.recv().unwrap()).unwrap();
    assert_eq!(frame_kind(&admitted), "admitted");
    assert_eq!(admitted.get("cores").and_then(Json::as_u64), Some(4));

    let interactive_frames = collect(
        &gateway,
        &request(&example("loan_approval.has"), PriorityClass::Interactive),
    );
    // The interactive request was allocated the reclaimed cores: with
    // the batch squeezed to its one-core floor, 4 - 1 = 3 are left.
    assert_eq!(
        interactive_frames[0].get("cores").and_then(Json::as_u64),
        Some(3),
        "interactive admission must reclaim cores from the running batch"
    );
    assert_eq!(frame_kind(interactive_frames.last().unwrap()), "done");

    let summary = batch_thread.join().unwrap();
    assert_eq!(summary.properties, repeated.len());
    assert_eq!(summary.completed, repeated.len());
    assert!(!summary.aborted);

    let frames: Vec<Json> = frame_rx
        .iter()
        .map(|line| Json::parse(&line).unwrap())
        .collect();
    let reports = streamed_reports(&frames);
    assert_eq!(reports.len(), repeated.len());
    for (index, report) in &reports {
        assert_eq!(
            comparable(report),
            comparable(direct[*index].as_ref().unwrap()),
            "property #{index}: a mid-run core rebalance must never change the result"
        );
    }
}

#[test]
fn over_limit_batch_is_refused_with_a_typed_error_while_interactive_admits() {
    let gateway = Arc::new(Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits {
            max_interactive: 2,
            max_batch: 1,
        },
        reuse: ReuseMode::Preproc,
    }));
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();

    let mut long_batch = request(&source, PriorityClass::Batch);
    long_batch.properties = Some(std::iter::repeat_n(names, 6).flatten().collect::<Vec<_>>());
    let (frame_tx, frame_rx) = mpsc::channel::<String>();
    let batch_thread = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            let sink = move |line: &str| frame_tx.send(line.to_owned()).unwrap();
            gateway.submit(&long_batch, &sink).unwrap()
        })
    };
    let admitted = Json::parse(&frame_rx.recv().unwrap()).unwrap();
    assert_eq!(frame_kind(&admitted), "admitted");

    // A second batch-class request is over the limit: typed refusal.
    let refused = gateway
        .submit(&request(&source, PriorityClass::Batch), &|_| {
            panic!("refused requests must not emit frames")
        })
        .unwrap_err();
    assert_eq!(
        refused,
        verifas::serve::ServeError::Overloaded {
            class: PriorityClass::Batch,
            limit: 1
        }
    );
    assert_eq!(refused.kind(), "overloaded");

    // The batch class being full does not gate the interactive class.
    let frames = collect(
        &gateway,
        &request(&example("loan_approval.has"), PriorityClass::Interactive),
    );
    assert_eq!(frame_kind(frames.last().unwrap()), "done");

    let summary = batch_thread.join().unwrap();
    assert!(!summary.aborted);
    // The refusal is visible on /metrics.
    assert!(gateway
        .metrics_text()
        .contains("verifas_requests_rejected_total{class=\"batch\"} 1"));
}

#[test]
fn server_side_cancel_stops_every_search_of_a_batch() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
    });
    let source = example("parcel_returns.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    let mut req = request(&source, PriorityClass::Batch);
    let repeated: Vec<String> = std::iter::repeat_n(names, 4).flatten().collect();
    req.properties = Some(repeated.clone());

    // Cancel through the *server's* cancel path the moment the request
    // is admitted: the one batch-wide token must stop every search.
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| {
        let frame = Json::parse(line).unwrap();
        if frame_kind(&frame) == "admitted" {
            let id = frame.get("request").and_then(Json::as_u64).unwrap();
            assert!(gateway.cancel(id), "admitted request must be cancellable");
        }
        frames.lock().unwrap().push(frame);
    };
    let summary = gateway.submit(&req, &sink).unwrap();

    assert!(summary.aborted, "a cancelled batch must report aborted");
    assert_eq!(summary.cancelled, repeated.len());
    assert_eq!(summary.completed, 0);
    let frames = frames.into_inner().unwrap();
    let done = frames.last().unwrap();
    assert_eq!(frame_kind(done), "done");
    assert_eq!(
        done.get("summary")
            .and_then(|s| s.get("aborted"))
            .and_then(Json::as_bool),
        Some(true),
        "the terminal frame must distinguish an aborted stream from a finished one"
    );
    // The cancelled request released its slot: the server is not wedged.
    assert_eq!(gateway.arbiter().in_flight(PriorityClass::Batch), 0);
}

#[test]
fn per_request_deadline_rides_the_cancel_plumbing() {
    let gateway = Gateway::new(ServeConfig {
        cores: 2,
        sessions: 4,
        limits: AdmissionLimits::default(),
        reuse: ReuseMode::Preproc,
    });
    let mut req = request(
        &example("conference_review.has"),
        PriorityClass::Interactive,
    );
    req.deadline_ms = Some(0);
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| frames.lock().unwrap().push(Json::parse(line).unwrap());
    let summary = gateway.submit(&req, &sink).unwrap();
    assert!(summary.aborted, "an expired deadline must abort the stream");
    assert_eq!(summary.completed, 0);
}

#[test]
fn http_round_trip_streams_reports_and_reuses_sessions() {
    use std::io::{Read, Write};

    let mut server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
        },
        2,
    )
    .unwrap();
    let addr = server.local_addr();
    let source = example("order_fulfillment.has");
    let verify = |body: &str| {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let request = format!(
            "POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        body.lines()
            .map(|line| Json::parse(line).unwrap())
            .collect::<Vec<_>>()
    };
    let body = Json::Obj(vec![("spec".to_owned(), Json::Str(source.clone()))]).to_string();

    let first = verify(&body);
    assert_eq!(frame_kind(&first[0]), "admitted");
    assert_eq!(first[0].get("session").and_then(Json::as_str), Some("miss"));
    assert_eq!(frame_kind(first.last().unwrap()), "done");
    assert!(first.len() >= 3);

    let second = verify(&body);
    assert_eq!(
        second[0].get("session").and_then(Json::as_str),
        Some("hit"),
        "second HTTP submission must reuse the cached session"
    );

    let text = server.gateway().metrics_text();
    assert!(text.contains("verifas_session_cache_lookups_total{result=\"hit\"} 1"));
    assert!(text.contains("verifas_requests_admitted_total{class=\"interactive\"} 2"));
    server.shutdown();
}
