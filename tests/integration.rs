//! Cross-crate integration tests: the paper's running example end-to-end
//! through the `Engine` API, agreement between the optimised verifier, the
//! baseline and the concrete interpreter, and ablation consistency.

use verifas::core::BaselineVerifier;
use verifas::model::{DatabaseInstance, Interpreter, RunConfig, Tuple, Value};
use verifas::prelude::*;
use verifas::workloads::{
    generate_properties, loan_approval, order_fulfillment, order_fulfillment_buggy,
    order_fulfillment_property, real_workflows,
};

fn small_limits() -> SearchLimits {
    SearchLimits {
        max_states: 20_000,
        max_millis: 10_000,
    }
}

fn small_options() -> VerifierOptions {
    VerifierOptions {
        limits: small_limits(),
        ..VerifierOptions::default()
    }
}

/// The guard property "whenever ShipItem opens the item is in stock" holds
/// on the correct order-fulfillment specification and fails on the buggy
/// variant (the error discussed in Section 2.1 of the paper).
#[test]
fn order_fulfillment_shipping_guard() {
    for (spec, expected) in [
        (order_fulfillment(), VerificationOutcome::Satisfied),
        (order_fulfillment_buggy(), VerificationOutcome::Violated),
    ] {
        let name = spec.name.clone();
        let (_, root) = spec.task_by_name("ProcessOrders").unwrap();
        let instock = root.var_by_name("instock").unwrap().0;
        let ship = spec.task_by_name("ShipItem").unwrap().0;
        let property = LtlFoProperty::new(
            "ship-only-in-stock",
            spec.root(),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
            vec![
                PropAtom::Service(ServiceRef::Opening(ship)),
                PropAtom::Condition(Condition::eq(Term::var(instock), Term::str("Yes"))),
            ],
        );
        let engine = Engine::load_with_options(spec, small_options()).unwrap();
        let report = engine.check(&property).unwrap();
        assert_eq!(report.outcome, expected, "spec {name}");
        if expected == VerificationOutcome::Violated {
            let witness = report.witness.expect("witness available");
            assert!(witness.description.contains("ShipItem"));
            assert!(witness.steps.iter().any(|s| s.label.contains("ShipItem")));
        }
    }
}

/// The paper's property (†) is violated on the buggy variant and the
/// verifier produces a witness mentioning ShipItem; on the correct variant
/// the verifier terminates with a definite verdict.
#[test]
fn order_fulfillment_paper_property() {
    let buggy = order_fulfillment_buggy();
    let property = order_fulfillment_property(&buggy);
    let engine = Engine::load_with_options(buggy, small_options()).unwrap();
    let report = engine.check(&property).unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Violated);

    let good = order_fulfillment();
    let property = order_fulfillment_property(&good);
    let engine = Engine::load_with_options(good, small_options()).unwrap();
    let report = engine.check(&property).unwrap();
    assert_ne!(report.outcome, VerificationOutcome::Inconclusive);
}

/// The ablated configurations agree with the default one on every
/// generated benchmark property where both produce a definite verdict
/// within the budget (disabling SP can blow past the state budget — such
/// runs are Inconclusive, which is not a disagreement).
#[test]
fn benchmark_properties_and_ablations_agree() {
    let spec = order_fulfillment();
    let engine = Engine::load_with_options(spec.clone(), small_options()).unwrap();
    let mut definite_pairs = 0;
    for property in generate_properties(&spec, 2017).iter().take(6) {
        let default = engine.check(property).unwrap().outcome;
        if default == VerificationOutcome::Inconclusive {
            continue;
        }
        for ablation in ["SP", "SA", "DSS"] {
            let options = small_options().try_without(ablation).unwrap();
            let ablated = engine
                .verification()
                .property(property)
                .options(options)
                .run()
                .unwrap()
                .outcome;
            if ablated == VerificationOutcome::Inconclusive {
                continue;
            }
            assert_eq!(
                default, ablated,
                "ablation {ablation} disagrees on {}",
                property.name
            );
            definite_pairs += 1;
        }
    }
    assert!(
        definite_pairs > 0,
        "no ablation ever produced a definite verdict"
    );
}

/// Unknown ablation names fail loudly, listing the valid ones.
#[test]
fn unknown_ablation_names_are_typed_errors() {
    let err = VerifierOptions::default().try_without("SPP").unwrap_err();
    assert!(matches!(err, VerifasError::UnknownOptimization { ref given } if given == "SPP"));
    let message = err.to_string();
    for valid in ["SP", "SA", "DSS"] {
        assert!(message.contains(valid), "{message:?} must list {valid}");
    }
}

/// The baseline verifier and VERIFAS-NoSet agree on the real workflows
/// (both ignore artifact relations), modulo runs where either hits a limit.
#[test]
fn baseline_agrees_with_noset_on_real_workflows() {
    let limits = SearchLimits {
        max_states: 4_000,
        max_millis: 2_000,
    };
    for spec in real_workflows().into_iter().take(8) {
        let name = spec.name.clone();
        let mut options = VerifierOptions::no_set();
        options.limits = limits;
        let engine = Engine::load_with_options(spec.clone(), options).unwrap();
        for property in generate_properties(&spec, 2017).into_iter().take(3) {
            let baseline = BaselineVerifier::new(&spec, &property, limits)
                .unwrap()
                .verify();
            let noset = engine.check(&property).unwrap();
            if baseline.outcome == VerificationOutcome::Inconclusive
                || noset.outcome == VerificationOutcome::Inconclusive
            {
                continue;
            }
            assert_eq!(
                baseline.outcome, noset.outcome,
                "disagreement on {name} / {}",
                property.name
            );
        }
    }
}

/// Concrete runs produced by the interpreter never violate a property the
/// symbolic verifier proves (the verifier over-approximates behaviour).
#[test]
fn concrete_runs_respect_verified_properties() {
    let spec = loan_approval();
    let review = spec.task_by_name("Review").unwrap().0;
    let property = LtlFoProperty::new(
        "review-always-decides",
        review,
        vec![],
        Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
        vec![
            PropAtom::Service(ServiceRef::Closing(review)),
            PropAtom::Condition(Condition::neq(Term::var(VarId::new(3)), Term::Null)),
        ],
    );
    let engine = Engine::load_with_options(spec.clone(), small_options()).unwrap();
    let report = engine.check(&property).unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Satisfied);

    // Build a concrete database and sample runs.
    let bureau = spec.db.relation_by_name("BUREAU").unwrap().0;
    let applicants = spec.db.relation_by_name("APPLICANTS").unwrap().0;
    let mut db = DatabaseInstance::empty(spec.db.len());
    db.insert(
        bureau,
        Tuple {
            id: 1,
            attrs: vec![Value::str("Prime")],
        },
    );
    db.insert(
        bureau,
        Tuple {
            id: 2,
            attrs: vec![Value::str("Thin")],
        },
    );
    db.insert(
        applicants,
        Tuple {
            id: 1,
            attrs: vec![Value::str("Ada"), Value::Id(bureau, 1)],
        },
    );
    db.insert(
        applicants,
        Tuple {
            id: 2,
            attrs: vec![Value::str("Bob"), Value::Id(bureau, 2)],
        },
    );
    db.validate(&spec.db).unwrap();
    for seed in 0..5u64 {
        let config = RunConfig {
            seed,
            max_steps: 150,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::new(&spec, &db, config).unwrap();
        for run in interp.run_collecting_local_runs(review) {
            if run.closed {
                assert_eq!(
                    property.check_local_run(&db, &run),
                    Some(true),
                    "concrete run violates a verified property (seed {seed})"
                );
            }
        }
    }
}
