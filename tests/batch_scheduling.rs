//! Determinism and fault isolation of the sharded batch scheduler.
//!
//! `Engine::check_all` now routes through `verifas::core::schedule`: a
//! core budget is split between batch width and per-search depth, and
//! cores freed by finished properties are reassigned to still-running
//! searches at round boundaries.  None of that may change any result:
//! every property's verdict, witness and search-tree statistics must be
//! bit-identical under flat vs sharded scheduling, for every batch width,
//! for every seed — and identical to an independent sequential
//! `Engine::check` of the same property.  The suite also pins the
//! batch-level failure modes: a cancellation fired mid-batch stops every
//! search, and an invalid property reports its own typed error without
//! disturbing the rest of the batch.
//!
//! Runs are bounded by `max_states` (deterministic) rather than wall
//! clock, so scheduling can never change where a limited run stops.

use verifas::prelude::*;
use verifas::workloads::{
    cycle_grid, cycle_grid_liveness, generate, generate_properties, real_workflows,
    skewed_batch_properties, skewed_grid, SyntheticParams,
};

const SEEDS: std::ops::Range<u64> = 0..4;
const BATCH_WIDTHS: [usize; 3] = [1, 2, 4];

fn limits() -> SearchLimits {
    SearchLimits {
        max_states: 150,
        max_millis: 600_000,
    }
}

fn engine_for(spec: &HasSpec) -> Engine {
    Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: limits(),
            ..VerifierOptions::default()
        },
    )
    .expect("workload specs are valid")
}

/// A report's scheduling-independent core: verdict, witness, search stats
/// and repeated-reachability stats (search + cycle detection), with the
/// timing and configuration-echo fields zeroed.  The `schedule` block and
/// the per-worker stats are deliberately absent — they describe how the
/// machine was shared, which is exactly what may differ.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

/// Every batch configuration — flat and sharded, across batch widths —
/// must reproduce the independent sequential `check` of each property bit
/// for bit.
fn assert_schedule_invariant(engine: &Engine, properties: &[LtlFoProperty], context: &str) {
    let baseline: Vec<_> = properties
        .iter()
        .map(|p| comparable(&engine.check(p).expect("sequential check succeeds")))
        .collect();
    for batch_threads in BATCH_WIDTHS {
        for schedule in [SchedulePolicy::Flat, SchedulePolicy::Sharded] {
            let reports = engine.check_all_with(
                properties,
                BatchOptions {
                    batch_threads,
                    schedule,
                },
            );
            assert_eq!(reports.len(), properties.len());
            for (i, report) in reports.iter().enumerate() {
                let report = report.as_ref().unwrap_or_else(|e| {
                    panic!("{context}: property {i} failed under {schedule:?}: {e}")
                });
                assert_eq!(
                    comparable(report),
                    baseline[i],
                    "{context}: property {i} ({}) diverged under {schedule:?} \
                     with batch_threads={batch_threads}",
                    properties[i].name
                );
                let stats = report
                    .schedule
                    .as_ref()
                    .expect("batch runs carry a schedule block");
                assert_eq!(stats.property_index, i);
                assert_eq!(stats.batch_threads, batch_threads);
                match schedule {
                    SchedulePolicy::Flat => assert!(stats.occupancy.is_empty()),
                    SchedulePolicy::Sharded => {
                        assert!(!stats.occupancy.is_empty());
                        assert!(stats
                            .occupancy
                            .iter()
                            .all(|s| { s.threads >= 1 && s.threads <= batch_threads }));
                    }
                }
            }
        }
    }
}

#[test]
fn synthetic_batches_are_schedule_invariant() {
    for seed in SEEDS {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let engine = engine_for(&spec);
        let properties: Vec<_> = generate_properties(&spec, seed)
            .into_iter()
            .take(4)
            .collect();
        assert_schedule_invariant(
            &engine,
            &properties,
            &format!("{} (seed {seed})", spec.name),
        );
    }
}

#[test]
fn real_workload_batches_are_schedule_invariant() {
    let spec = real_workflows()
        .into_iter()
        .next()
        .expect("at least one real workload");
    let engine = engine_for(&spec);
    for seed in SEEDS {
        let properties: Vec<_> = generate_properties(&spec, seed)
            .into_iter()
            .skip(seed as usize)
            .take(3)
            .collect();
        assert_schedule_invariant(
            &engine,
            &properties,
            &format!("{} (seed {seed})", spec.name),
        );
    }
}

/// A skewed batch (one heavy exhaustive search + trivially violated light
/// properties) is the shape the sharded scheduler exists for; it must
/// stay schedule-invariant, and the straggler's occupancy timeline must
/// show the freed cores arriving (budget growth past the initial width
/// share).
#[test]
fn skewed_batches_are_schedule_invariant_and_reassign_cores() {
    let spec = cycle_grid(5);
    let engine = Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 10_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        },
    )
    .unwrap();
    let mut properties = vec![cycle_grid_liveness(&spec)];
    for i in 0..3 {
        properties.push(LtlFoProperty::new(
            format!("hits-v0_{i}"),
            spec.root(),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(Condition::eq(
                Term::var(VarId::new(0)),
                Term::str(format!("v0_{i}")),
            ))],
        ));
    }
    assert_schedule_invariant(&engine, &properties, "cycle-grid skewed batch");
    // A singleton sharded batch with an explicit budget: the lone search
    // must run under the whole budget (deterministic even on a 1-core
    // host — the budget is the knob, not the hardware).
    let report = engine
        .check_all_with(
            &properties[..1],
            BatchOptions {
                batch_threads: 4,
                schedule: SchedulePolicy::Sharded,
            },
        )
        .remove(0)
        .unwrap();
    assert_eq!(report.stats.threads, 4, "the straggler gets all cores");
    let schedule = report.schedule.unwrap();
    assert_eq!(schedule.occupancy.last().unwrap().threads, 4);
}

/// The frontier-width-weighted straggler split (the scheduler weighs the
/// post-drain budget split by each search's live frontier width) on the
/// batch shape it exists for: `skewed_grid`'s one heavy root search plus
/// many trivial `Chore` properties.  Weighting is advisory scheduling
/// input only, so every result must stay bit-identical to flat
/// scheduling and to independent sequential checks — and the straggler's
/// occupancy timeline must be non-worse than the pre-weighting contract:
/// it ends with the whole core budget and never dips below one thread.
#[test]
fn skewed_grid_weighted_split_is_schedule_invariant() {
    let spec = skewed_grid(4);
    let engine = Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 4_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        },
    )
    .unwrap();
    let properties = skewed_batch_properties(&spec, 4);
    assert_schedule_invariant(&engine, &properties, "skewed-grid weighted batch");
    // Under an explicit budget the heavy search (property 0, the only
    // exhaustive one) must end up owning every core once the lights are
    // done, exactly as before the weighted split — freed cores may only
    // arrive earlier or in bigger slices, never stop arriving.
    //
    // The straggler claim is only meaningful if the heavy search outlives
    // the lights, and OS scheduling does not guarantee that on a busy
    // single-core host: the worker thread that claimed the heavy job can
    // run it to completion before the light workers ever get a slice, so
    // the queue never drains while the heavy runs and width-first leaves
    // its budget at the floor of one.  Hold the heavy search at its first
    // progress event until every light result has landed — budgets and
    // timing are advisory scheduling input only (they change when answers
    // arrive, never what they are), so the gate cannot change any report,
    // but it makes the requested 4-core budget arrive deterministically
    // regardless of host cores.
    let lights = properties.len() - 1;
    let lights_done = (std::sync::Mutex::new(0usize), std::sync::Condvar::new());
    let on_event = |index: usize, _: &ProgressEvent| {
        if index == 0 {
            let (count, cond) = &lights_done;
            let mut done = count.lock().unwrap();
            while *done < lights {
                let (next, timeout) = cond
                    .wait_timeout(done, std::time::Duration::from_secs(60))
                    .unwrap();
                done = next;
                if timeout.timed_out() {
                    // Let the assertions below report what went wrong
                    // instead of hanging the suite.
                    break;
                }
            }
        }
    };
    let mut on_result = |index: usize, _: &Result<VerificationReport, VerifasError>| {
        if index != 0 {
            let (count, cond) = &lights_done;
            *count.lock().unwrap() += 1;
            cond.notify_all();
        }
    };
    let reports = engine
        .batch()
        .batch_threads(4)
        .schedule(SchedulePolicy::Sharded)
        .on_event(&on_event)
        .on_result(&mut on_result)
        .run(&properties);
    let heavy = reports[0].as_ref().unwrap();
    let schedule = heavy.schedule.as_ref().unwrap();
    let occupancy = &schedule.occupancy;
    assert!(!occupancy.is_empty());
    assert_eq!(
        occupancy.last().unwrap().threads,
        4,
        "the straggler must inherit the whole budget"
    );
    assert!(occupancy.iter().all(|s| s.threads >= 1 && s.threads <= 4));
    assert_eq!(heavy.stats.threads, 4, "the widest pool is recorded");
}

/// Cancelling the batch token mid-batch stops every search: properties
/// that were still queued or running report `cancelled`, while results
/// that completed before the cancellation are untouched.
#[test]
fn mid_batch_cancellation_stops_all_searches() {
    let spec = cycle_grid(6);
    let engine = Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 1_000_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        },
    )
    .unwrap();
    // Property 0 is violated after a couple of steps; the rest exhaust
    // the grid and run its repeated-reachability pass.
    let quick = LtlFoProperty::new(
        "quick-violation",
        spec.root(),
        vec![],
        Ltl::globally(Ltl::not(Ltl::prop(0))),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(0)),
            Term::str("v0_1"),
        ))],
    );
    let properties = vec![
        quick,
        cycle_grid_liveness(&spec),
        cycle_grid_liveness(&spec),
        cycle_grid_liveness(&spec),
    ];
    let token = CancelToken::new();
    let trigger = token.clone();
    // Fire the cancellation from the batch's own result stream, as a
    // verification service would: the moment the first property lands.
    let mut on_result = move |index: usize, _: &Result<VerificationReport, VerifasError>| {
        if index == 0 {
            trigger.cancel();
        }
    };
    // batch_threads = 1 makes the order deterministic: property 0 runs
    // (and cancels the batch) before any other search starts.
    let reports = engine
        .batch()
        .batch_threads(1)
        .schedule(SchedulePolicy::Sharded)
        .cancel_token(token)
        .on_result(&mut on_result)
        .run(&properties);
    let first = reports[0].as_ref().unwrap();
    assert_eq!(first.outcome, VerificationOutcome::Violated);
    assert!(!first.cancelled, "property 0 finished before the cancel");
    for (i, report) in reports.iter().enumerate().skip(1) {
        let report = report.as_ref().unwrap();
        assert!(
            report.cancelled,
            "property {i} must report the cancellation"
        );
        assert_eq!(report.outcome, VerificationOutcome::Inconclusive);
        assert!(
            report.stats.states_created < 1_000_000,
            "property {i} must stop long before its state budget"
        );
    }
}

/// One invalid property reports its own typed error; every other property
/// of the batch is verified normally, under both policies.
#[test]
fn an_invalid_property_leaves_the_rest_of_the_batch_unaffected() {
    let spec = real_workflows()
        .into_iter()
        .next()
        .expect("at least one real workload");
    let engine = engine_for(&spec);
    let valid: Vec<_> = generate_properties(&spec, 0).into_iter().take(2).collect();
    // Proposition 7 has no interpretation: validation fails.
    let invalid = LtlFoProperty::new(
        "invalid",
        spec.root(),
        vec![],
        Ltl::globally(Ltl::prop(7)),
        vec![],
    );
    let properties = vec![valid[0].clone(), invalid, valid[1].clone()];
    let expected_first = comparable(&engine.check(&valid[0]).unwrap());
    let expected_last = comparable(&engine.check(&valid[1]).unwrap());
    for schedule in [SchedulePolicy::Flat, SchedulePolicy::Sharded] {
        let reports = engine.check_all_with(
            &properties,
            BatchOptions {
                batch_threads: 2,
                schedule,
            },
        );
        assert!(
            matches!(reports[1], Err(VerifasError::Model(_))),
            "the invalid property must report a typed model error, got {:?}",
            reports[1]
        );
        assert_eq!(
            comparable(reports[0].as_ref().unwrap()),
            expected_first,
            "{schedule:?}"
        );
        assert_eq!(
            comparable(reports[2].as_ref().unwrap()),
            expected_last,
            "{schedule:?}"
        );
    }
}

/// A panicking `on_result` callback is contained: every property's report
/// is still returned (the callback is observability only — losing a
/// finished verification to a logging bug would be absurd).
#[test]
fn a_panicking_on_result_callback_does_not_discard_reports() {
    let Some(spec) = generate(SyntheticParams::small(), 1) else {
        return;
    };
    let engine = engine_for(&spec);
    let properties: Vec<_> = generate_properties(&spec, 1).into_iter().take(3).collect();
    let mut on_result = |index: usize, _: &Result<VerificationReport, VerifasError>| {
        if index == 0 {
            panic!("observer bug");
        }
    };
    let reports = engine
        .batch()
        .batch_threads(1)
        .on_result(&mut on_result)
        .run(&properties);
    for (i, report) in reports.iter().enumerate() {
        assert!(report.is_ok(), "property {i} lost to a callback panic");
    }
}

/// The schedule block round-trips through the report's JSON serialization
/// (schema v4).
#[test]
fn batch_reports_serialize_their_schedule_block() {
    let Some(spec) = generate(SyntheticParams::small(), 0) else {
        return;
    };
    let engine = engine_for(&spec);
    let properties: Vec<_> = generate_properties(&spec, 0).into_iter().take(2).collect();
    let reports = engine.check_all(&properties);
    for report in reports {
        let report = report.unwrap();
        assert!(report.schedule.is_some());
        let parsed = VerificationReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }
}
