//! The `Engine::check_all` acceptance test: batched multi-property
//! verification over one workload spec must (a) produce byte-identical
//! verdicts to one-by-one `check` calls and (b) construct the expression
//! universe and the spec-side static-analysis constraint graph exactly
//! once, measured through `verifas::core::counters`.
//!
//! This file deliberately contains a single `#[test]`: the construction
//! counters are process-wide, and integration-test binaries each run in
//! their own process, so nothing else can increment them concurrently.

use verifas::core::counters;
use verifas::core::Json;
use verifas::prelude::*;
use verifas::workloads::{generate_properties, order_fulfillment};

#[test]
fn check_all_shares_preprocessing_and_matches_sequential_checks() {
    let spec = order_fulfillment();
    let options = VerifierOptions {
        limits: SearchLimits {
            max_states: 20_000,
            max_millis: 10_000,
        },
        ..VerifierOptions::default()
    };
    // All twelve benchmark properties verify the root task with no global
    // variables and draw their constants from the spec's own conditions,
    // so one preprocessing must serve the whole batch.
    let properties: Vec<LtlFoProperty> = generate_properties(&spec, 2017)
        .into_iter()
        .take(4)
        .collect();
    assert!(properties.len() >= 3);

    let engine = Engine::load_with_options(spec.clone(), options).unwrap();
    let universes_before = counters::universe_builds();
    let graphs_before = counters::spec_graph_builds();
    let batched = engine.check_all(&properties);
    assert_eq!(
        counters::universe_builds() - universes_before,
        1,
        "check_all must build the expression universe exactly once"
    );
    assert_eq!(
        counters::spec_graph_builds() - graphs_before,
        1,
        "check_all must build the spec-side constraint graph exactly once"
    );

    // Sequential one-by-one checks on a fresh engine.
    let sequential_engine = Engine::load_with_options(spec, options).unwrap();
    for (property, batched) in properties.iter().zip(&batched) {
        let batched = batched.as_ref().unwrap();
        let sequential = sequential_engine.check(property).unwrap();
        // Byte-identical verdicts: outcome and witness serialize to the
        // same JSON (stats carry wall-clock times and are compared
        // structurally instead).
        let verdict_json = |report: &VerificationReport| {
            Json::Obj(vec![
                (
                    "outcome".to_owned(),
                    Json::parse(&report.to_json())
                        .unwrap()
                        .get("outcome")
                        .unwrap()
                        .clone(),
                ),
                (
                    "witness".to_owned(),
                    Json::parse(&report.to_json())
                        .unwrap()
                        .get("witness")
                        .unwrap()
                        .clone(),
                ),
            ])
            .to_string()
        };
        assert_eq!(
            verdict_json(batched),
            verdict_json(&sequential),
            "batched and sequential verdicts differ on {}",
            property.name
        );
        assert_eq!(batched.outcome, sequential.outcome);
        assert_eq!(batched.witness, sequential.witness);
        assert_eq!(
            batched.stats.states_created, sequential.stats.states_created,
            "the searches themselves must be identical for {}",
            property.name
        );
    }
}
