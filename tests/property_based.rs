//! Randomised tests over the symbolic machinery using generated synthetic
//! specifications and LTL templates.
//!
//! Written as plain seeded loops (the build environment cannot fetch
//! `proptest`); the seeds sweep the same space the original property-based
//! tests explored.

use verifas::prelude::*;
use verifas::workloads::{cyclomatic_complexity, generate, generate_properties, SyntheticParams};

/// Generated specifications validate, have non-negative complexity and
/// every template property is accepted by the verifier front-end.
#[test]
fn synthetic_specs_are_well_formed() {
    for seed in 0u64..60 {
        if let Some(spec) = generate(SyntheticParams::small(), seed) {
            assert!(spec.validate().is_ok(), "seed {seed}");
            assert!(cyclomatic_complexity(&spec) >= 0, "seed {seed}");
            let properties = generate_properties(&spec, seed);
            assert_eq!(properties.len(), 12, "seed {seed}");
            for p in &properties {
                assert!(p.validate(&spec).is_ok(), "seed {seed} / {}", p.name);
            }
        }
    }
}

/// Disabling optimizations never changes a definite verdict (the
/// optimizations are pure pruning).
#[test]
fn ablation_preserves_verdicts() {
    let limits = SearchLimits {
        max_states: 2_000,
        max_millis: 500,
    };
    let mut checked = 0;
    for seed in 0u64..12 {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let prop_index = (seed as usize * 5) % 12;
        let property = generate_properties(&spec, seed).swap_remove(prop_index);
        let engine = Engine::load(spec.clone()).unwrap();
        let run = |options: VerifierOptions| {
            let mut options = options;
            options.limits = limits;
            engine
                .verification()
                .property(&property)
                .options(options)
                .run()
                .unwrap()
                .outcome
        };
        let default = run(VerifierOptions::default());
        let no_sp = run(VerifierOptions::default().without("SP"));
        if default != VerificationOutcome::Inconclusive
            && no_sp != VerificationOutcome::Inconclusive
        {
            assert_eq!(default, no_sp, "seed {seed} / {}", property.name);
            checked += 1;
        }
    }
    assert!(checked > 0, "no definite verdict pair was ever produced");
}
