//! Randomised tests over the symbolic machinery using generated synthetic
//! specifications and LTL templates.
//!
//! Written as plain seeded loops (the build environment cannot fetch
//! `proptest`); the seeds sweep the same space the original property-based
//! tests explored.

use verifas::prelude::*;
use verifas::workloads::{cyclomatic_complexity, generate, generate_properties, SyntheticParams};

/// A tiny deterministic generator (seeded-loop style, standing in for
/// proptest) used to assemble random batch mixes.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// Generated specifications validate, have non-negative complexity and
/// every template property is accepted by the verifier front-end.
#[test]
fn synthetic_specs_are_well_formed() {
    for seed in 0u64..60 {
        if let Some(spec) = generate(SyntheticParams::small(), seed) {
            assert!(spec.validate().is_ok(), "seed {seed}");
            assert!(cyclomatic_complexity(&spec) >= 0, "seed {seed}");
            let properties = generate_properties(&spec, seed);
            assert_eq!(properties.len(), 12, "seed {seed}");
            for p in &properties {
                assert!(p.validate(&spec).is_ok(), "seed {seed} / {}", p.name);
            }
        }
    }
}

/// Disabling optimizations never changes a definite verdict (the
/// optimizations are pure pruning).
#[test]
fn ablation_preserves_verdicts() {
    let limits = SearchLimits {
        max_states: 2_000,
        max_millis: 500,
    };
    let mut checked = 0;
    for seed in 0u64..12 {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let prop_index = (seed as usize * 5) % 12;
        let property = generate_properties(&spec, seed).swap_remove(prop_index);
        let engine = Engine::load(spec.clone()).unwrap();
        let run = |options: VerifierOptions| {
            let mut options = options;
            options.limits = limits;
            engine
                .verification()
                .property(&property)
                .options(options)
                .run()
                .unwrap()
                .outcome
        };
        let default = run(VerifierOptions::default());
        let no_sp = run(VerifierOptions::default().without("SP"));
        if default != VerificationOutcome::Inconclusive
            && no_sp != VerificationOutcome::Inconclusive
        {
            assert_eq!(default, no_sp, "seed {seed} / {}", property.name);
            checked += 1;
        }
    }
    assert!(checked > 0, "no definite verdict pair was ever produced");
}

/// Randomly skewed batches through the sharded scheduler match
/// independent sequential `check` calls property for property.
///
/// The mixes deliberately repeat properties (the scheduler must not
/// conflate equal-keyed work), interleave heavy and light searches in
/// random order, and run under random core budgets — the shapes that
/// would shake out a budget race between the scheduler's rebalancing and
/// the searches polling their budgets at round boundaries.
#[test]
fn random_skewed_batches_match_independent_checks() {
    let limits = SearchLimits {
        max_states: 300,
        max_millis: 600_000,
    };
    let mut batches = 0;
    for seed in 0u64..10 {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let engine = Engine::load_with_options(
            spec.clone(),
            VerifierOptions {
                limits,
                ..VerifierOptions::default()
            },
        )
        .unwrap();
        let pool = generate_properties(&spec, seed);
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mix: Vec<LtlFoProperty> = (0..4 + rng.next(5))
            .map(|_| pool[rng.next(pool.len())].clone())
            .collect();
        let batch_threads = 1 + rng.next(4);
        let expected: Vec<_> = mix
            .iter()
            .map(|p| {
                let report = engine.check(p).unwrap();
                (report.outcome, report.witness, report.stats.states_created)
            })
            .collect();
        let batched = engine.check_all_with(
            &mix,
            BatchOptions {
                batch_threads,
                schedule: SchedulePolicy::Sharded,
            },
        );
        for (i, report) in batched.iter().enumerate() {
            let report = report.as_ref().unwrap();
            assert_eq!(
                (
                    report.outcome,
                    report.witness.clone(),
                    report.stats.states_created
                ),
                expected[i],
                "seed {seed} / property {i} ({}) under batch_threads={batch_threads}",
                mix[i].name
            );
        }
        batches += 1;
    }
    assert!(batches > 0, "no synthetic spec was ever generated");
}
