//! Property-based tests over the symbolic machinery using randomly
//! generated synthetic specifications and LTL templates.

use proptest::prelude::*;
use verifas::core::{SearchLimits, VerificationOutcome, Verifier, VerifierOptions};
use verifas::workloads::{cyclomatic_complexity, generate, generate_properties, SyntheticParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated specifications validate, have non-negative complexity and
    /// every template property is accepted by the verifier front-end.
    #[test]
    fn synthetic_specs_are_well_formed(seed in 0u64..500) {
        if let Some(spec) = generate(SyntheticParams::small(), seed) {
            prop_assert!(spec.validate().is_ok());
            prop_assert!(cyclomatic_complexity(&spec) >= 0);
            let properties = generate_properties(&spec, seed);
            prop_assert_eq!(properties.len(), 12);
            for p in &properties {
                prop_assert!(p.validate(&spec).is_ok());
            }
        }
    }

    /// Disabling optimizations never changes a definite verdict (the
    /// optimizations are pure pruning).
    #[test]
    fn ablation_preserves_verdicts(seed in 0u64..200, prop_index in 0usize..12) {
        let Some(spec) = generate(SyntheticParams::small(), seed) else { return Ok(()); };
        let property = generate_properties(&spec, seed).swap_remove(prop_index);
        let limits = SearchLimits { max_states: 2_000, max_millis: 500 };
        let run = |options: VerifierOptions| {
            let mut options = options;
            options.limits = limits;
            Verifier::new(&spec, &property, options).unwrap().verify().outcome
        };
        let default = run(VerifierOptions::default());
        let no_sp = run(VerifierOptions::default().without("SP"));
        if default != VerificationOutcome::Inconclusive && no_sp != VerificationOutcome::Inconclusive {
            prop_assert_eq!(default, no_sp);
        }
    }
}
