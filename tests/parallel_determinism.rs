//! Determinism of the parallel Karp–Miller search and of the
//! repeated-reachability post-pass: for every workload (real and
//! synthetic) and every seed, a 4-worker run must return the same verdict,
//! an identical witness and bit-identical search/cycle statistics as a
//! sequential run — with the candidate index on or off — and a
//! cancellation fired mid-search must stop every worker.
//!
//! The runs are bounded by `max_states` (deterministic) rather than wall
//! clock, so thread scheduling cannot change where a limited run stops.

use verifas::prelude::*;
use verifas::workloads::{
    counter_cycle, cycle_grid, cycle_grid_liveness, generate, generate_properties,
    lattice_false_property, lattice_liveness, open_close_lattice, real_workflows, SyntheticParams,
};
use verifas_core::{CoverageKind, KarpMillerSearch, ProductSystem};

const SEEDS: std::ops::Range<u64> = 0..8;

fn limits() -> SearchLimits {
    SearchLimits {
        // Small enough to keep the full workload × seed sweep fast in
        // debug builds; limit-stopped runs are themselves an interesting
        // determinism case (the stop point is a deterministic state
        // count, never wall clock).
        max_states: 150,
        // Effectively unbounded: determinism requires that only the
        // deterministic state budget can stop a run.
        max_millis: 600_000,
    }
}

fn options(search_threads: usize, use_index: bool) -> VerifierOptions {
    VerifierOptions {
        search_threads,
        data_structure_support: use_index,
        limits: limits(),
        ..VerifierOptions::default()
    }
}

/// A report's scheduling- and configuration-independent core: verdict,
/// witness, search stats and repeated-reachability stats (search + cycle
/// detection), with the timing and configuration-echo fields zeroed.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        // `candidates` measures the filter itself (how many exact tests
        // ran after it), so it legitimately differs between index on and
        // off; everything else in the block must not.
        cycle.candidates = 0;
        cycle.used_index = false;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

/// Check one property across 1 vs 4 search threads and candidate index on
/// vs off on a shared engine (the engine's preprocessing cache serves all
/// seeds of one workload): all four runs must agree bit for bit on the
/// verdict, the witness and every deterministic statistic — including the
/// repeated-reachability verdicts, witnesses and edge/SCC stats when the
/// post-pass runs.
fn assert_deterministic(engine: &Engine, property: &LtlFoProperty, context: &str) {
    let run = |threads: usize, use_index: bool| {
        engine
            .verification()
            .property(property)
            .options(options(threads, use_index))
            .run()
            .unwrap_or_else(|e| panic!("run ({threads} threads, index {use_index}): {e}"))
    };
    let baseline = comparable(&run(1, true));
    for (threads, use_index) in [(4, true), (1, false), (4, false)] {
        let this = comparable(&run(threads, use_index));
        assert_eq!(
            baseline.0, this.0,
            "verdict diverged for {context} ({threads} threads, index {use_index})"
        );
        assert_eq!(
            baseline.1, this.1,
            "witness diverged for {context} ({threads} threads, index {use_index})"
        );
        assert_eq!(
            baseline, this,
            "stats diverged for {context} ({threads} threads, index {use_index})"
        );
    }
}

#[test]
fn real_workloads_are_deterministic_across_thread_counts() {
    for spec in real_workflows() {
        let engine = Engine::load(spec.clone()).expect("workload specs are valid");
        for seed in SEEDS {
            let properties = generate_properties(&spec, seed);
            // One property per seed keeps the suite fast while still
            // cycling through the whole template set over the seeds.
            let Some(property) = properties.get(seed as usize % properties.len().max(1)) else {
                continue;
            };
            assert_deterministic(
                &engine,
                property,
                &format!("{}/{} (seed {seed})", spec.name, property.name),
            );
        }
    }
}

#[test]
fn synthetic_workloads_are_deterministic_across_thread_counts() {
    for seed in SEEDS {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let engine = Engine::load(spec.clone()).expect("workload specs are valid");
        for property in generate_properties(&spec, seed).iter().take(2) {
            assert_deterministic(
                &engine,
                property,
                &format!("{}/{} (seed {seed})", spec.name, property.name),
            );
        }
    }
}

/// A `CancelToken` fired mid-search stops all workers: the run returns
/// (rather than hanging in the pool), reports `cancelled = true`, and did
/// not exhaust its state budget.
#[test]
fn cancellation_mid_search_stops_all_workers() {
    let spec = real_workflows()
        .into_iter()
        .next()
        .expect("at least one real workload");
    let engine = Engine::load(spec.clone()).unwrap();
    // Pick a property whose search is big enough to emit progress events
    // before finishing (so the cancellation actually lands mid-search).
    let probe = Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 3_000,
                max_millis: 60_000,
            },
            ..VerifierOptions::default()
        },
    )
    .unwrap();
    let properties = generate_properties(&spec, 0);
    let property = properties
        .iter()
        .find(|p| {
            probe
                .check(p)
                .map(|r| r.stats.states_created > 200)
                .unwrap_or(false)
        })
        .expect("some generated property has a sizeable search");
    let token = CancelToken::new();
    let trigger = token.clone();
    let mut observer = move |event: &ProgressEvent| {
        if matches!(event, ProgressEvent::Progress { .. }) {
            trigger.cancel();
        }
    };
    let report = engine
        .verification()
        .property(property)
        .options(VerifierOptions {
            search_threads: 4,
            limits: SearchLimits {
                max_states: 1_000_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        })
        .observer(&mut observer)
        .progress_every(8)
        .cancel_token(token)
        .run()
        .unwrap();
    assert!(report.cancelled, "the report must record the cancellation");
    assert!(
        report.stats.states_created < 1_000_000,
        "cancellation must stop the search before the state budget"
    );
}

/// The cycle-heavy exhausted-search workload runs the whole
/// repeated-reachability pipeline (large active set, full abstract graph,
/// SCC pass, infinite-violation witness) and must be deterministic across
/// thread counts and index settings like everything else — with the
/// verdict actually coming from the cycle detection.
#[test]
fn cycle_heavy_post_pass_is_deterministic() {
    let spec = cycle_grid(6);
    let engine = Engine::load(spec.clone()).expect("cycle grid is valid");
    let property = cycle_grid_liveness(&spec);
    assert_deterministic(&engine, &property, "cycle-grid/eventually-goal");
    let report = engine
        .verification()
        .property(&property)
        .options(VerifierOptions {
            limits: SearchLimits {
                max_states: 10_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        })
        .run()
        .unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Violated);
    let witness = report.witness.expect("infinite violation has a witness");
    assert!(!witness.finite);
    assert!(witness.description.contains("cycle:"));
    let cycle = report.repeated_cycle.expect("the post-pass ran");
    assert!(cycle.completed);
    assert!(cycle.states > 30);
    assert!(cycle.edges >= cycle.states, "the torus is cycle-heavy");
    assert!(cycle.cyclic_states > 0);
}

/// The million-state open/close lattice — the workload the arena state
/// layout exists for — must be deterministic like everything else.  The
/// parameter sweep stands in for seeds (the lattice is a closed-form
/// construction): each pair changes the discrete-group population and the
/// frontier shape, and every run is capped by a deterministic state
/// budget, so the 1-vs-4-thread × index-on/off sweep of
/// `assert_deterministic` exercises limit-stopped million-state searches
/// without exhausting one in a debug build.
#[test]
fn lattice_scenario_is_deterministic_across_threads_and_index() {
    for (ticks, children) in [(4usize, 4usize), (5, 3), (3, 6)] {
        let spec = open_close_lattice(ticks, children);
        let engine = Engine::load(spec.clone()).expect("lattice is valid");
        let property = lattice_liveness(&spec);
        assert_deterministic(
            &engine,
            &property,
            &format!("open-close-lattice-{ticks}x{children}/eventually-goal"),
        );
    }
}

/// At the search layer, the three candidate-discovery paths — per-group
/// vectors (the arena layout's default), the pre-overhaul reference
/// linear scans, and the signature index — must produce bit-identical
/// trees on a capped lattice run, sequentially and with 4 workers.
#[test]
fn lattice_candidate_paths_are_bit_identical() {
    let spec = open_close_lattice(8, 8);
    let property = lattice_false_property(&spec);
    let product = ProductSystem::new(&spec, &property, true).unwrap();
    let limits = SearchLimits {
        max_states: 3_000,
        max_millis: 600_000,
    };
    let run = |use_index: bool, reference_layout: bool, threads: usize| {
        let mut search =
            KarpMillerSearch::new(&product, CoverageKind::Subsumption, use_index, limits);
        search.reference_layout = reference_layout;
        search.threads = threads;
        let outcome = search.run();
        let mut stats = search.stats;
        stats.elapsed_ms = 0;
        stats.threads = 0;
        (outcome, search.len(), search.active_nodes(), stats)
    };
    let baseline = run(false, false, 1);
    for (use_index, reference_layout, threads) in [
        (false, false, 4),
        (false, true, 1),
        (false, true, 4),
        (true, false, 1),
        (true, false, 4),
    ] {
        assert_eq!(
            baseline,
            run(use_index, reference_layout, threads),
            "candidate path diverged (index {use_index}, reference {reference_layout}, \
             {threads} threads)"
        );
    }
}

/// A panic escaping a verification worker must come back as a typed
/// `VerifasError::Internal` naming the panic — and must not leak state
/// into the engine: the same engine instance serves the same property
/// cleanly right after.
#[test]
fn worker_panic_is_a_typed_error_and_leaks_no_state() {
    let spec = open_close_lattice(4, 4);
    let engine = Engine::load(spec.clone()).expect("lattice is valid");
    let property = lattice_liveness(&spec);
    let on_event = |_index: usize, _event: &ProgressEvent| {
        panic!("injected fault: die mid-search");
    };
    let reports = engine
        .batch()
        .batch_threads(1)
        .on_event(&on_event)
        .run(std::slice::from_ref(&property));
    assert_eq!(reports.len(), 1);
    match &reports[0] {
        Err(VerifasError::Internal { reason }) => {
            assert!(
                reason.contains("worker panicked"),
                "panic containment must name the worker, got: {reason}"
            );
            assert!(
                reason.contains("die mid-search"),
                "the panic message must survive into the typed error, got: {reason}"
            );
        }
        other => panic!("expected a typed internal error, got {other:?}"),
    }
    // No leaked state: the poisoned run must not have cached a bogus
    // report or wedged a lock — a clean run on the same engine succeeds,
    // exhausts the (tiny) lattice and reaches the definite verdict (the
    // goal is never reached, so the infinite cycling runs violate F goal).
    let clean = engine.check(&property).expect("the engine must recover");
    assert_eq!(clean.outcome, VerificationOutcome::Violated);
    assert!(clean.stats.states_created > 0);
}

/// Regression test for the `StateIndex` signature soundness (ROADMAP
/// niche left by PR 3): on a *counter-heavy* workload — active states
/// carrying bounded counters of many distinct stored tuple types, i.e.
/// exactly the stored-type/`≠` pit edges the pit-`=`-only signature must
/// ignore — the repeated-reachability post-pass must stay bit-identical
/// with the index on and off (a signature admitting those edges could
/// filter out true coverers, and index on/off would diverge here first).
#[test]
fn counter_heavy_post_pass_is_index_invariant() {
    let spec = counter_cycle(6);
    let engine = Engine::load(spec.clone()).expect("counter cycle is valid");
    let property = cycle_grid_liveness(&spec);
    // The full sweep: 1 vs 4 threads × index on vs off, bit for bit.
    assert_deterministic(&engine, &property, "counter-cycle/eventually-goal");
    // And at a budget that exhausts the space, pin the workload shape:
    // the verdict must come from the cycle-detection post-pass over
    // states that really carry stored-type counters (no ω shortcut).
    let run = |use_index: bool| {
        engine
            .verification()
            .property(&property)
            .options(VerifierOptions {
                data_structure_support: use_index,
                limits: SearchLimits {
                    max_states: 10_000,
                    max_millis: 600_000,
                },
                ..VerifierOptions::default()
            })
            .run()
            .unwrap()
    };
    let indexed = run(true);
    assert_eq!(indexed.outcome, VerificationOutcome::Violated);
    let witness = indexed.witness.clone().expect("infinite violation");
    assert!(!witness.finite);
    let repeated = indexed.repeated_stats.expect("the repeated phase ran");
    assert!(
        repeated.stored_types > 1,
        "the workload must intern distinct stored tuple types"
    );
    let cycle = indexed.repeated_cycle.expect("the post-pass ran");
    assert!(cycle.completed);
    assert!(
        cycle.cyclic_states > 0,
        "the verdict comes from the SCC pass"
    );
    assert_eq!(
        comparable(&indexed),
        comparable(&run(false)),
        "index on/off diverged on the counter-heavy post-pass"
    );
}
