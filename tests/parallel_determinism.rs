//! Determinism of the parallel Karp–Miller search: for every workload
//! (real and synthetic) and every seed, a 4-worker run must return the
//! same verdict and an identical witness as a sequential run, and a
//! cancellation fired mid-search must stop every worker.
//!
//! The runs are bounded by `max_states` (deterministic) rather than wall
//! clock, so thread scheduling cannot change where a limited run stops.

use verifas::prelude::*;
use verifas::workloads::{generate, generate_properties, real_workflows, SyntheticParams};

const SEEDS: std::ops::Range<u64> = 0..8;

fn limits() -> SearchLimits {
    SearchLimits {
        // Small enough to keep the full workload × seed sweep fast in
        // debug builds; limit-stopped runs are themselves an interesting
        // determinism case (the stop point is a deterministic state
        // count, never wall clock).
        max_states: 150,
        // Effectively unbounded: determinism requires that only the
        // deterministic state budget can stop a run.
        max_millis: 600_000,
    }
}

fn options(search_threads: usize) -> VerifierOptions {
    VerifierOptions {
        search_threads,
        limits: limits(),
        ..VerifierOptions::default()
    }
}

/// Check one property at 1 and 4 search threads on a shared engine (the
/// engine's preprocessing cache serves all seeds of one workload).
fn assert_deterministic(engine: &Engine, property: &LtlFoProperty, context: &str) {
    let sequential = engine
        .verification()
        .property(property)
        .options(options(1))
        .run()
        .expect("sequential run");
    let parallel = engine
        .verification()
        .property(property)
        .options(options(4))
        .run()
        .expect("parallel run");
    assert_eq!(
        sequential.outcome, parallel.outcome,
        "verdict diverged for {context}"
    );
    assert_eq!(
        sequential.witness, parallel.witness,
        "witness diverged for {context}"
    );
    // The searches themselves must be bit-identical, not merely
    // equivalent: same tree sizes, same pruning, same accelerations.
    let mut seq_stats = sequential.stats;
    let mut par_stats = parallel.stats;
    seq_stats.elapsed_ms = 0;
    par_stats.elapsed_ms = 0;
    seq_stats.threads = 0;
    par_stats.threads = 0;
    assert_eq!(seq_stats, par_stats, "search stats diverged for {context}");
}

#[test]
fn real_workloads_are_deterministic_across_thread_counts() {
    for spec in real_workflows() {
        let engine = Engine::load(spec.clone()).expect("workload specs are valid");
        for seed in SEEDS {
            let properties = generate_properties(&spec, seed);
            // One property per seed keeps the suite fast while still
            // cycling through the whole template set over the seeds.
            let Some(property) = properties.get(seed as usize % properties.len().max(1)) else {
                continue;
            };
            assert_deterministic(
                &engine,
                property,
                &format!("{}/{} (seed {seed})", spec.name, property.name),
            );
        }
    }
}

#[test]
fn synthetic_workloads_are_deterministic_across_thread_counts() {
    for seed in SEEDS {
        let Some(spec) = generate(SyntheticParams::small(), seed) else {
            continue;
        };
        let engine = Engine::load(spec.clone()).expect("workload specs are valid");
        for property in generate_properties(&spec, seed).iter().take(2) {
            assert_deterministic(
                &engine,
                property,
                &format!("{}/{} (seed {seed})", spec.name, property.name),
            );
        }
    }
}

/// A `CancelToken` fired mid-search stops all workers: the run returns
/// (rather than hanging in the pool), reports `cancelled = true`, and did
/// not exhaust its state budget.
#[test]
fn cancellation_mid_search_stops_all_workers() {
    let spec = real_workflows()
        .into_iter()
        .next()
        .expect("at least one real workload");
    let engine = Engine::load(spec.clone()).unwrap();
    // Pick a property whose search is big enough to emit progress events
    // before finishing (so the cancellation actually lands mid-search).
    let probe = Engine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 3_000,
                max_millis: 60_000,
            },
            ..VerifierOptions::default()
        },
    )
    .unwrap();
    let properties = generate_properties(&spec, 0);
    let property = properties
        .iter()
        .find(|p| {
            probe
                .check(p)
                .map(|r| r.stats.states_created > 200)
                .unwrap_or(false)
        })
        .expect("some generated property has a sizeable search");
    let token = CancelToken::new();
    let trigger = token.clone();
    let mut observer = move |event: &ProgressEvent| {
        if matches!(event, ProgressEvent::Progress { .. }) {
            trigger.cancel();
        }
    };
    let report = engine
        .verification()
        .property(property)
        .options(VerifierOptions {
            search_threads: 4,
            limits: SearchLimits {
                max_states: 1_000_000,
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        })
        .observer(&mut observer)
        .progress_every(8)
        .cancel_token(token)
        .run()
        .unwrap();
    assert!(report.cancelled, "the report must record the cancellation");
    assert!(
        report.stats.states_created < 1_000_000,
        "cancellation must stop the search before the state budget"
    );
}
