//! Incremental re-verification acceptance: for every `.has` file in
//! `examples/specs/`, an edit script of small source mutations (tweak a
//! service condition, add a property, rename an alias) is verified twice
//! at every step — once cold, once incrementally from the previous
//! step's engine via `Engine::load_delta` — and the reports must be
//! bit-identical modulo wall-clock fields, in both `preproc` and
//! `replay` reuse modes.  A targeted two-task scenario then proves
//! through `verifas::core::counters` that the preprocessing of an
//! unchanged task is carried, not rebuilt, and that the replay memo
//! actually serves enumerations across the delta.
//!
//! This file deliberately contains a single `#[test]`: the construction
//! and reuse counters are process-wide, and integration-test binaries
//! each run in their own process, so nothing else can increment them
//! concurrently.

use std::path::{Path, PathBuf};
use verifas::core::counters;
use verifas::prelude::*;
use verifas::spec::{self, CompiledSpec};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs")
}

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("examples/specs exists")
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "has")).then(|| {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).unwrap();
                (name, source)
            })
        })
        .collect();
    files.sort();
    assert!(files.len() >= 4);
    files
}

fn compile(name: &str, source: &str) -> CompiledSpec {
    spec::compile(source).unwrap_or_else(|e| panic!("{}", e.render(name)))
}

/// Deterministic engine options: state-bounded, no wall-clock cutoff.
fn options() -> VerifierOptions {
    VerifierOptions {
        limits: SearchLimits {
            max_states: 50_000,
            max_millis: 600_000,
        },
        ..VerifierOptions::default()
    }
}

/// A report's scheduling- and timing-independent core.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

/// Replace whole-word occurrences of `from` with `to` (identifier
/// boundaries on both sides, so renaming a `define` alias never chews
/// into string literals like `"Received"` or longer identifiers).
fn rename_word(source: &str, from: &str, to: &str) -> String {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = String::with_capacity(source.len());
    let mut rest = source;
    while let Some(at) = rest.find(from) {
        let before = rest[..at].chars().last().or_else(|| out.chars().last());
        let before_ok = !before.is_some_and(is_ident);
        let after = rest[at + from.len()..].chars().next();
        let after_ok = !after.is_some_and(is_ident);
        out.push_str(&rest[..at]);
        out.push_str(if before_ok && after_ok { to } else { from });
        rest = &rest[at + from.len()..];
    }
    out.push_str(rest);
    out
}

/// Mutation 1 — tweak a service condition: conjoin the file's first
/// pre-condition with itself.  Semantically vacuous but structurally
/// real (the lowering folds `true && c`, not `c && c`), and no constant
/// enters or leaves the spec, so sibling task slices survive the edit.
fn tweak_service_condition(source: &str) -> String {
    let at = source
        .find("pre: ")
        .expect("every corpus file has a service");
    let end = at + source[at..].find(';').expect("the pre-condition ends");
    let cond = &source[at + 5..end];
    format!(
        "{}pre: ({cond}) && ({cond}){}",
        &source[..at],
        &source[end..]
    )
}

/// Mutation 2 — add a property (on `task`): the lowered spec is
/// untouched, so the delta is fully unchanged and every prior artefact
/// carries; only the new property itself needs a search.
fn add_property(source: &str, task: &str) -> String {
    format!("{source}\nproperty \"delta-probe\" on {task} {{\n    formula: F {{ true }};\n}}\n")
}

/// Mutation 3 — rename an alias: the first `define` alias where one
/// exists (pure frontend sugar — the lowered spec *and* properties are
/// bit-identical), else the first service name (a real structural
/// rename the delta must treat as a change).
fn rename_alias_or_service(source: &str) -> String {
    let (keyword, suffix) = if source.contains("define ") {
        ("define ", "_renamed")
    } else {
        ("service ", "Renamed")
    };
    let at = source.find(keyword).unwrap() + keyword.len();
    let name: String = source[at..]
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    rename_word(source, &name, &format!("{name}{suffix}"))
}

/// The cumulative edit script for one corpus file: each step builds on
/// the previous source, the way an interactive editing session would.
fn edit_script(source: &str, root: &str) -> Vec<(&'static str, String)> {
    let tweaked = tweak_service_condition(source);
    let extended = add_property(&tweaked, root);
    let renamed = rename_alias_or_service(&extended);
    vec![
        ("original", source.to_owned()),
        ("tweak-pre", tweaked),
        ("add-property", extended),
        ("rename-alias", renamed),
    ]
}

fn root_name(compiled: &CompiledSpec) -> String {
    compiled.spec.task(compiled.spec.root()).name.clone()
}

/// Every corpus property of every edit-script step, checked on a warm
/// chain of `load_delta` engines, must match a cold engine bit for bit.
fn assert_edit_scripts_are_bit_identical() {
    for (name, source) in corpus() {
        let root = root_name(&compile(&name, &source));
        let steps = edit_script(&source, &root);
        for mode in [ReuseMode::Preproc, ReuseMode::Replay] {
            let mut warm: Option<Engine> = None;
            for (label, text) in &steps {
                let step = format!("{name}[{label}]");
                let compiled = compile(&step, text);
                let cold = Engine::load_with_options(compiled.spec.clone(), options()).unwrap();
                let next = match &warm {
                    None => {
                        Engine::load_with_reuse(compiled.spec.clone(), options(), mode).unwrap()
                    }
                    Some(prior) => {
                        Engine::load_delta(prior, compiled.spec.clone(), mode)
                            .unwrap()
                            .0
                    }
                };
                for property in &compiled.properties {
                    let from_cold = cold.check(property).unwrap();
                    let from_warm = next.check(property).unwrap();
                    assert_eq!(
                        comparable(&from_cold),
                        comparable(&from_warm),
                        "{step} {:?} ({mode:?}): incremental must be bit-identical to cold",
                        property.name
                    );
                    assert_ne!(
                        from_cold.outcome,
                        VerificationOutcome::Inconclusive,
                        "{step}"
                    );
                }
                warm = Some(next);
            }
        }
    }
}

/// The two-task counter scenario: `conference_review.has` with two
/// extra properties on the child task `Referee` (identical formulas —
/// they share one preprocessing key), then a root-local service edit.
fn referee_scenario() -> (CompiledSpec, CompiledSpec) {
    let source = std::fs::read_to_string(corpus_dir().join("conference_review.has")).unwrap();
    let probe = "property \"referee-probe\" on Referee {\n    formula: F { verdict != null };\n}\n";
    let probe2 =
        "property \"referee-probe-2\" on Referee {\n    formula: F { verdict != null };\n}\n";
    let base = format!("{source}\n{probe}\n{probe2}");
    let edited = tweak_service_condition(&base);
    (
        compile("conference_review.has[+probes]", &base),
        compile("conference_review.has[+probes,tweak-pre]", &edited),
    )
}

fn property<'a>(compiled: &'a CompiledSpec, name: &str) -> &'a LtlFoProperty {
    compiled
        .properties
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("property {name:?} missing"))
}

/// After a root-local edit, the unchanged child task's preprocessing is
/// carried — provably not rebuilt (`universe_builds` stays flat while a
/// fresh child search runs) — while the edited root's is rebuilt.
fn assert_unchanged_preprocessing_is_not_rebuilt() {
    let (base, edited) = referee_scenario();
    let prior = Engine::load_with_reuse(base.spec.clone(), options(), ReuseMode::Preproc).unwrap();
    let first = prior.check(property(&base, "referee-probe")).unwrap();

    let builds_before = counters::universe_builds();
    let (warm, summary) =
        Engine::load_delta(&prior, edited.spec.clone(), ReuseMode::Preproc).unwrap();
    assert_eq!(summary.tasks, 2);
    assert_eq!(
        summary.tasks_unchanged, 1,
        "only the Referee slice survives"
    );
    assert_eq!(summary.preps_carried, 1);
    assert_eq!(summary.reports_carried, 1);

    // A *new* property on the unchanged task runs a real search (the
    // report cache misses) against the carried preprocessing: no
    // universe is built.
    let fresh = warm.check(property(&edited, "referee-probe-2")).unwrap();
    assert_eq!(
        counters::universe_builds(),
        builds_before,
        "the carried preprocessing must serve the unchanged task's search"
    );
    assert_eq!(
        comparable(&first),
        comparable(&fresh),
        "identical formulas, same search"
    );

    // The identical request is answered from the carried report — the
    // exact same report, wall-clock fields included, zero search.
    let reused_before = counters::reports_reused();
    let carried = warm.check(property(&edited, "referee-probe")).unwrap();
    assert_eq!(carried, first);
    assert_eq!(counters::reports_reused(), reused_before + 1);

    // The edited root, by contrast, is rebuilt from scratch.
    let root_property = property(&edited, "submissions-recur");
    warm.check(root_property).unwrap();
    assert!(
        counters::universe_builds() > builds_before,
        "the changed root task must rebuild its preprocessing"
    );
}

/// Replay mode: enumerations recorded before the edit are replayed by
/// the carried memo after it, and the replayed search is bit-identical
/// to a cold one on the edited spec.
fn assert_replay_memo_serves_across_the_delta() {
    let (base, edited) = referee_scenario();
    let prior = Engine::load_with_reuse(base.spec.clone(), options(), ReuseMode::Replay).unwrap();
    prior.check(property(&base, "referee-probe")).unwrap();

    let (warm, summary) =
        Engine::load_delta(&prior, edited.spec.clone(), ReuseMode::Replay).unwrap();
    assert_eq!(summary.preps_carried, 1);

    let hits_before = counters::memo_hits();
    let replayed = warm.check(property(&edited, "referee-probe-2")).unwrap();
    assert!(
        counters::memo_hits() > hits_before,
        "the carried memo must serve enumerations across the delta"
    );
    let cold = Engine::load_with_options(edited.spec.clone(), options()).unwrap();
    let from_cold = cold.check(property(&edited, "referee-probe-2")).unwrap();
    assert_eq!(comparable(&from_cold), comparable(&replayed));
}

#[test]
fn edit_scripts_verify_bit_identically_and_reuse_preprocessing() {
    assert_edit_scripts_are_bit_identical();
    assert_unchanged_preprocessing_is_not_rebuilt();
    assert_replay_memo_serves_across_the_delta();
}
