//! Fresh engine builds of the same spec must be bit-identical.
//!
//! The differential fuzzer's first 1000-seed sweep caught five stat
//! divergences whose shared root cause was an iteration-order-dependent
//! congruence closure in `PitBuilder::assert_eq`: recursive child
//! merges could re-parent the surviving class mid-loop, and entries
//! keyed off the stale representative were silently orphaned — so the
//! canonical type computed for a condition depended on `HashMap`
//! iteration order, i.e. varied across fresh `ProductSystem` builds
//! within one process.  These tests pin the fix at the layer the bug
//! lived in: repeated cold builds from one compiled spec must produce
//! identical successor structures, before any search policy is applied.

use verifas::core::{ProductState, ProductSystem, StoredTypeInterner};
use verifas::spec::compile;

/// Dump the initial states and their direct successors in a canonical
/// textual form.  Any nondeterminism in product construction or in the
/// minimal-extension computation shows up as a differing dump.
fn level1_dump(product: &ProductSystem) -> String {
    let mut interner = StoredTypeInterner::new();
    let level: Vec<ProductState> = product.initial_states();
    let mut out = String::new();
    for (i, state) in level.iter().enumerate() {
        out.push_str(&format!("init[{i}] = {state:?}\n"));
        for (j, succ) in product.successors(state, &mut interner).iter().enumerate() {
            out.push_str(&format!(
                "  succ[{j}] via {:?} fv={} = {:?}\n",
                succ.service, succ.finite_violation, succ.state
            ));
        }
    }
    out
}

fn assert_deterministic(source: &str) {
    let compiled = compile(source).expect("repro spec compiles");
    for property in &compiled.properties {
        let mut baseline: Option<String> = None;
        // Each iteration builds fresh per-instance `HashMap`s, so ten
        // rounds give ten independent draws of iteration order.
        for round in 0..10 {
            let product = ProductSystem::new(&compiled.spec, property, true).expect("product");
            let dump = level1_dump(&product);
            match &baseline {
                None => baseline = Some(dump),
                Some(expected) => assert_eq!(
                    expected, &dump,
                    "fresh build {round} produced a different level-1 structure"
                ),
            }
        }
    }
}

#[test]
fn fuzzer_repros_build_identically_across_fresh_engines() {
    for name in [
        "seed42_threads.has",
        "seed609_index.has",
        "seed645_layout.has",
    ] {
        let path = format!(
            "{}/crates/fuzzgen/repros/{name}",
            env!("CARGO_MANIFEST_DIR")
        );
        let source = std::fs::read_to_string(&path).unwrap();
        assert_deterministic(&source);
    }
}
