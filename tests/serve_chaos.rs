//! Chaos tests of `verifas serve`: seeded fault injection at every site.
//!
//! The robustness claim under test is twofold.  *Liveness*: whatever a
//! seeded [`FaultPlan`] throws at the serve path — stalled and reset
//! sockets, panicking workers, session evictions racing lookups, a
//! skewed clock — the server answers its next request, and every gauge
//! (in-flight requests, queue depth, core leases) returns to zero once
//! traffic drains.  *Integrity*: faults can only truncate or refuse a
//! request, never steer it — every report a chaos run *completes* is
//! bit-identical (modulo timing fields) to a direct `Engine::check_all`
//! of the same property.  And because a plan's decisions are a pure
//! function of `(seed, site, occurrence)`, a failing run replays
//! byte-for-byte from its plan string alone.

use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use verifas::core::Json;
use verifas::prelude::*;
use verifas::serve::{
    AdmissionLimits, FaultPlan, FaultSite, Gateway, PriorityClass, ServeConfig, Server,
    VerifyRequest,
};
use verifas::ReuseMode;

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(name);
    std::fs::read_to_string(&path).expect("example spec exists")
}

/// A report's scheduling-independent core: verdict, witness and search
/// statistics with timing and machine-sharing fields stripped (same
/// idiom as the `serve_e2e` and `batch_scheduling` suites).
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

fn frame_kind(frame: &Json) -> &str {
    frame.get("frame").and_then(Json::as_str).unwrap()
}

/// Submit through an in-process gateway, collecting every frame.
fn collect(gateway: &Gateway, request: &VerifyRequest) -> Vec<Json> {
    let frames = Mutex::new(Vec::new());
    let sink = |line: &str| frames.lock().unwrap().push(Json::parse(line).unwrap());
    gateway
        .submit(request, &sink)
        .expect("chaos-run requests must be served, not refused");
    frames.into_inner().unwrap()
}

/// One best-effort HTTP round trip: the raw response text, or `None`
/// when an injected fault (reset, stalled-out socket) killed the
/// connection.  Chaos clients expect to lose some requests.
fn try_roundtrip(addr: std::net::SocketAddr, request: &str) -> Option<String> {
    let stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    (&stream).write_all(request.as_bytes()).ok()?;
    let mut response = String::new();
    BufReader::new(&stream).read_to_string(&mut response).ok()?;
    Some(response)
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Block until every request-holding gauge of `gateway` reads zero.
fn await_drained(gateway: &Gateway) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let drained = PriorityClass::ALL.iter().all(|&class| {
            gateway.arbiter().in_flight(class) == 0 && gateway.queue().queued_len(class) == 0
        });
        if drained {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gauges never drained: {}",
            gateway.metrics_text()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Integrity under chaos: with eviction races, clock skew and worker
/// panics firing throughout, every report a run *completes* is
/// bit-identical to a direct `Engine::check_all`, every failure is the
/// typed, contained worker-panic error, and every stream stays
/// well-formed (first frame `admitted`, last frame `done`).
#[test]
fn completed_results_under_chaos_match_direct_check_all_bit_for_bit() {
    let source = example("conference_review.has");
    let compiled = verifas::spec::compile(&source).unwrap();
    let direct = Engine::load(compiled.spec.clone())
        .unwrap()
        .check_all(&compiled.properties);

    let plan =
        Arc::new(FaultPlan::parse("seed=5,evict-race=2,clock-skew=2,worker-panic=17").unwrap());
    let gateway = Gateway::with_faults(
        ServeConfig {
            cores: 2,
            sessions: 2,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        },
        Some(Arc::clone(&plan)),
    );

    let names: Vec<String> = compiled.properties.iter().map(|p| p.name.clone()).collect();
    for round in 0..10 {
        let request = VerifyRequest {
            spec: source.clone(),
            class: if round % 2 == 0 {
                PriorityClass::Interactive
            } else {
                PriorityClass::Batch
            },
            // Stretch early rounds so the worker-panic site gets plenty
            // of in-search visits before report reuse kicks in.
            properties: Some(std::iter::repeat_n(names.clone(), 3).flatten().collect()),
            // A generous deadline the ±250 ms clock-skew fault cannot
            // push into the past.
            deadline_ms: Some(600_000),
            max_states: None,
            max_millis: None,
        };
        let frames = collect(&gateway, &request);
        assert_eq!(frame_kind(&frames[0]), "admitted", "round {round}");
        assert_eq!(frame_kind(frames.last().unwrap()), "done", "round {round}");
        for frame in &frames {
            if frame_kind(frame) != "report" {
                continue;
            }
            let index = frame.get("index").and_then(Json::as_u64).unwrap() as usize;
            match frame.get("report") {
                Some(report) => {
                    let report = VerificationReport::from_json(&report.to_string()).unwrap();
                    assert_eq!(
                        comparable(&report),
                        comparable(direct[index % names.len()].as_ref().unwrap()),
                        "round {round}: a fault changed a completed result"
                    );
                }
                None => {
                    let error = frame.get("error").and_then(Json::as_str).unwrap();
                    assert!(
                        error.contains("worker panicked"),
                        "round {round}: only the contained worker panic may fail \
                         a property here, got: {error}"
                    );
                }
            }
        }
    }

    assert!(
        plan.fired_count(FaultSite::EvictRace) >= 3,
        "the eviction race must actually have raced"
    );
    assert!(
        plan.fired_count(FaultSite::ClockSkew) >= 3,
        "the clock-skew site must actually have skewed"
    );
    assert!(
        plan.fired_count(FaultSite::WorkerPanic) >= 1,
        "at least one search worker must have panicked mid-search"
    );
    await_drained(&gateway);
    let text = gateway.metrics_text();
    assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
    assert!(text.contains("verifas_requests_in_flight{class=\"batch\"} 0"));
}

/// Liveness under a socket-fault storm: hundreds of requests against a
/// server whose reads stall and reset, whose writes stall and reset,
/// and whose connection handlers panic.  The server must answer its
/// next request afterwards, every contained panic must be counted, and
/// no gauge may leak.
#[test]
fn a_socket_fault_storm_leaves_the_server_live_and_leak_free() {
    let plan = Arc::new(
        FaultPlan::parse(
            "seed=11,read-stall=3,read-reset=4,write-stall=3,write-reset=5,conn-panic=5,stall-ms=1",
        )
        .unwrap(),
    );
    let mut server = Server::start_with_faults(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        },
        4,
        Some(Arc::clone(&plan)),
    )
    .unwrap();
    let addr = server.local_addr();
    let spec = example("loan_approval.has");
    let verify_body = Json::Obj(vec![("spec".to_owned(), Json::Str(spec.clone()))]).to_string();

    let mut answered = 0usize;
    for round in 0..300 {
        let request = match round % 25 {
            0 => post("/v1/verify", &verify_body),
            n if n % 3 == 0 => get("/metrics"),
            n if n % 3 == 1 => post("/v1/hash", &verify_body),
            _ => get("/healthz"),
        };
        if let Some(response) = try_roundtrip(addr, &request) {
            if response.starts_with("HTTP/1.1 200") {
                answered += 1;
            }
        }
    }
    assert!(
        answered >= 50,
        "the server must keep answering through the storm (got {answered}/300)"
    );

    // Every socket-level site must actually have fired — a storm that
    // never struck proves nothing.
    for site in [
        FaultSite::ReadStall,
        FaultSite::ReadReset,
        FaultSite::WriteStall,
        FaultSite::WriteReset,
        FaultSite::ConnPanic,
    ] {
        assert!(
            plan.fired_count(site) >= 1,
            "site {} never fired",
            site.name()
        );
    }
    let total_fired: u64 = FaultSite::ALL
        .iter()
        .map(|&site| plan.fired_count(site))
        .sum();
    assert!(
        total_fired >= 100,
        "a storm should land hundreds of faults, landed {total_fired}"
    );

    // Requests whose clients were cut off mid-stream finish server-side;
    // wait for the last of them, then check the books.
    await_drained(server.gateway());
    let text = server.gateway().metrics_text();
    assert!(text.contains(&format!("verifas_faults_injected_total {total_fired}")));
    assert!(text.contains(&format!(
        "verifas_worker_panics_total {}",
        plan.fired_count(FaultSite::ConnPanic)
    )));
    assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
    assert!(text.contains("verifas_requests_in_flight{class=\"batch\"} 0"));
    assert!(text.contains("verifas_queue_depth{class=\"interactive\"} 0"));
    assert!(text.contains("verifas_queue_depth{class=\"batch\"} 0"));

    // The storm is over only when a clean request gets through; faults
    // still fire, so allow a few attempts.
    let alive = (0..20).any(|_| {
        try_roundtrip(addr, &get("/healthz"))
            .is_some_and(|response| response.starts_with("HTTP/1.1 200"))
    });
    assert!(alive, "the server must still answer after the storm");
    server.shutdown();
}

/// Replayability: the same plan string against the same serial request
/// sequence makes byte-for-byte the same fault decisions and produces
/// the same frame sequence — the property that lets CI replay any chaos
/// failure from its seed alone.
#[test]
fn the_same_fault_plan_replays_the_same_decisions_and_frames() {
    let source = example("parcel_returns.has");
    let run = |plan_text: &str| {
        let plan = Arc::new(FaultPlan::parse(plan_text).unwrap());
        let gateway = Gateway::with_faults(
            ServeConfig {
                // One core and serial submissions: the visit sequence at
                // every site is deterministic, so the runs must agree.
                cores: 1,
                sessions: 2,
                limits: AdmissionLimits::default(),
                reuse: ReuseMode::Preproc,
                memory_bytes: 0,
            },
            Some(Arc::clone(&plan)),
        );
        let mut kinds = Vec::new();
        for round in 0..6 {
            let request = VerifyRequest {
                spec: source.clone(),
                class: PriorityClass::Interactive,
                properties: None,
                deadline_ms: Some(600_000 + round),
                max_states: None,
                max_millis: None,
            };
            for frame in collect(&gateway, &request) {
                kinds.push(frame_kind(&frame).to_owned());
            }
        }
        let counts: Vec<(u64, u64)> = FaultSite::ALL
            .iter()
            .map(|&site| (plan.visit_count(site), plan.fired_count(site)))
            .collect();
        (kinds, counts)
    };

    let plan_text = "seed=42,evict-race=2,clock-skew=3,stall-ms=1";
    let (first_frames, first_counts) = run(plan_text);
    let (second_frames, second_counts) = run(plan_text);
    assert_eq!(
        first_counts, second_counts,
        "same plan, same traffic: same visit and fire counts at every site"
    );
    assert_eq!(
        first_frames, second_frames,
        "same plan, same traffic: same frame sequence"
    );
    assert!(
        first_counts.iter().any(|&(_, fired)| fired > 0),
        "the replayed plan must actually inject something"
    );

    // A different seed over the same traffic diverges — the seed is the
    // whole story.
    let (_, other_counts) = run("seed=43,evict-race=2,clock-skew=3,stall-ms=1");
    assert_ne!(
        first_counts, other_counts,
        "a different seed must make different decisions"
    );
}

/// Memory-pressure degradation end to end: a server whose byte budget
/// cannot hold even one search round answers every property with the
/// typed `ResourceExhausted` report error — states-explored and budget
/// figures included — finishes the stream with a well-formed `done`
/// frame, and keeps serving.
#[test]
fn a_memory_starved_server_degrades_typed_and_stays_live() {
    let mut server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            cores: 2,
            sessions: 4,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 1,
        },
        2,
    )
    .unwrap();
    let addr = server.local_addr();
    let body = Json::Obj(vec![(
        "spec".to_owned(),
        Json::Str(example("loan_approval.has")),
    )])
    .to_string();

    let response = try_roundtrip(addr, &post("/v1/verify", &body))
        .expect("a memory-starved server still answers");
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let frames: Vec<Json> = body.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(frame_kind(&frames[0]), "admitted");
    let reports: Vec<&Json> = frames
        .iter()
        .filter(|f| frame_kind(f) == "report")
        .collect();
    assert!(!reports.is_empty());
    for report in &reports {
        let error = report
            .get("error")
            .and_then(Json::as_str)
            .expect("every search must degrade to a typed report error");
        assert!(
            error.contains("memory budget exhausted"),
            "wrong degradation: {error}"
        );
        assert!(
            error.contains("1-byte budget"),
            "the error must carry the budget figures: {error}"
        );
    }
    let done = frames.last().unwrap();
    assert_eq!(frame_kind(done), "done");
    assert_eq!(
        done.get("summary")
            .and_then(|s| s.get("errors"))
            .and_then(Json::as_u64),
        Some(reports.len() as u64),
        "the summary must account every degraded property"
    );

    // Degradation is not death: the server answers, the books balance.
    let text = server.gateway().metrics_text();
    assert!(text.contains(&format!(
        "verifas_resource_exhausted_total {}",
        reports.len()
    )));
    assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
    assert!(text.contains("verifas_memory_budget_bytes 1"));
    let health = try_roundtrip(addr, &get("/healthz")).unwrap();
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    server.shutdown();
}
