//! The spec-language frontend end to end: every `.has` file in
//! `examples/specs/` parses, validates, formats idempotently and
//! verifies; the two ported real workloads (loan approval, order
//! fulfillment) lower *bit-identically* to their programmatic builders —
//! same `HasSpec`, same `LtlFoProperty`, and same verdict, witness and
//! search statistics when run through the engine.

use std::path::{Path, PathBuf};
use verifas::prelude::*;
use verifas::spec::{self, CompiledSpec};
use verifas::workloads::{
    loan_approval, loan_approval_property, order_fulfillment, order_fulfillment_property,
};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs")
}

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("examples/specs exists")
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "has")).then(|| {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).unwrap();
                (name, source)
            })
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 4,
        "the corpus must hold the two ported workloads plus at least two new scenarios"
    );
    files
}

fn compile(name: &str, source: &str) -> CompiledSpec {
    spec::compile(source).unwrap_or_else(|e| panic!("{}", e.render(name)))
}

/// Deterministic engine options: state-bounded, no wall-clock cutoff.
fn options() -> VerifierOptions {
    VerifierOptions {
        limits: SearchLimits {
            max_states: 50_000,
            max_millis: 600_000,
        },
        ..VerifierOptions::default()
    }
}

/// A report's scheduling- and timing-independent core.
fn comparable(
    report: &VerificationReport,
) -> (
    VerificationOutcome,
    Option<Witness>,
    SearchStats,
    Option<SearchStats>,
    Option<CycleStats>,
) {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        cycle
    });
    (
        report.outcome,
        report.witness.clone(),
        strip(report.stats),
        report.repeated_stats.map(strip),
        cycle,
    )
}

/// One ported workload: the text file and the programmatic builder must
/// agree on everything, down to the verification report.
fn assert_port_is_bit_identical(file: &str, built: HasSpec, property: LtlFoProperty) {
    let source = std::fs::read_to_string(corpus_dir().join(file)).unwrap();
    let compiled = compile(file, &source);
    assert_eq!(
        compiled.spec, built,
        "{file}: the lowered specification must equal the programmatic builder's"
    );
    let ported = compiled
        .properties
        .iter()
        .find(|p| p.name == property.name)
        .unwrap_or_else(|| panic!("{file}: property {:?} missing", property.name));
    assert_eq!(
        *ported, property,
        "{file}: the lowered property must equal the programmatic one"
    );
    // Same verdict, witness and search statistics through the engine.
    let text_engine = Engine::load_with_options(compiled.spec.clone(), options()).unwrap();
    let built_engine = Engine::load_with_options(built, options()).unwrap();
    let from_text = text_engine.check(ported).unwrap();
    let from_builder = built_engine.check(&property).unwrap();
    assert_eq!(
        comparable(&from_text),
        comparable(&from_builder),
        "{file}: the verification reports must be bit-identical"
    );
    assert_ne!(
        from_text.outcome,
        VerificationOutcome::Inconclusive,
        "{file}: the cross-checked property must reach a verdict"
    );
}

#[test]
fn order_fulfillment_port_is_bit_identical() {
    let built = order_fulfillment();
    let property = order_fulfillment_property(&built);
    assert_port_is_bit_identical("order_fulfillment.has", built, property);
}

#[test]
fn loan_approval_port_is_bit_identical() {
    let built = loan_approval();
    let property = loan_approval_property(&built);
    assert_port_is_bit_identical("loan_approval.has", built, property);
}

/// Every corpus file parses, validates, and every one of its properties
/// verifies to a conclusive verdict through the engine.
#[test]
fn every_corpus_file_compiles_and_verifies() {
    for (name, source) in corpus() {
        let compiled = compile(&name, &source);
        compiled
            .spec
            .validate()
            .unwrap_or_else(|e| panic!("{name}: lowered spec invalid: {e}"));
        assert!(
            !compiled.properties.is_empty(),
            "{name}: corpus files must state at least one property"
        );
        let engine = Engine::load_with_options(compiled.spec, options()).unwrap();
        for property in &compiled.properties {
            let report = engine
                .check(property)
                .unwrap_or_else(|e| panic!("{name}: {} failed: {e}", property.name));
            assert_ne!(
                report.outcome,
                VerificationOutcome::Inconclusive,
                "{name}: {} must reach a verdict within the corpus limits",
                property.name
            );
            // Reports stay serializable end to end.
            let parsed = VerificationReport::from_json(&report.to_json()).unwrap();
            assert_eq!(parsed, report);
        }
    }
}

/// The canonical formatter is stable over the whole corpus: formatting is
/// idempotent and the formatted text lowers to the same specification.
#[test]
fn corpus_formatting_is_idempotent_and_lowering_invariant() {
    for (name, source) in corpus() {
        let formatted =
            spec::format_source(&source).unwrap_or_else(|e| panic!("{}", e.render(&name)));
        let again = spec::format_source(&formatted).unwrap();
        assert_eq!(formatted, again, "{name}: formatting must be idempotent");
        let original = compile(&name, &source);
        let reformatted = compile(&name, &formatted);
        assert_eq!(original.spec, reformatted.spec, "{name}");
        assert_eq!(original.properties, reformatted.properties, "{name}");
    }
}

/// The batch path (`Engine::batch`, sharded scheduler, streaming
/// callback) produces the same results as one-at-a-time checks for a
/// compiled `.has` property set — the CLI's `batch` subcommand rides on
/// exactly this.
#[test]
fn compiled_property_sets_batch_like_they_check() {
    let (name, source) = corpus()
        .into_iter()
        .find(|(name, _)| name == "conference_review.has")
        .expect("corpus holds conference_review.has");
    let compiled = compile(&name, &source);
    let engine = Engine::load_with_options(compiled.spec, options()).unwrap();
    let mut streamed = 0usize;
    let mut on_result = |_: usize, _: &Result<VerificationReport, VerifasError>| streamed += 1;
    let batched = engine
        .batch()
        .batch_threads(2)
        .on_result(&mut on_result)
        .run(&compiled.properties);
    assert_eq!(streamed, compiled.properties.len());
    for (property, batched) in compiled.properties.iter().zip(&batched) {
        let single = engine.check(property).unwrap();
        let batched = batched.as_ref().unwrap();
        assert_eq!(
            comparable(&single),
            comparable(batched),
            "{}",
            property.name
        );
    }
}

/// The curated scenario files stay in the corpus and keep exercising
/// the surface they were written for: a three-level task hierarchy,
/// Table-4 template instantiations, and the `R` (release) operator.
#[test]
fn curated_scenarios_cover_depth_templates_and_release() {
    use verifas::spec::ast::{LtlExpr, PropertyBody};

    for name in [
        "insurance_claim.has",
        "procurement.has",
        "cicd_pipeline.has",
    ] {
        let source = std::fs::read_to_string(corpus_dir().join(name))
            .unwrap_or_else(|e| panic!("{name} must stay in the corpus: {e}"));
        let file = spec::parse(&source).unwrap_or_else(|e| panic!("{}", e.render(name)));

        // Depth ≥ 3: some task's parent is itself a child.
        let is_child = |task_name: &str| {
            file.tasks
                .iter()
                .any(|t| t.name.name == task_name && t.parent.is_some())
        };
        assert!(
            file.tasks
                .iter()
                .any(|t| t.parent.as_ref().is_some_and(|p| is_child(&p.name))),
            "{name}: must declare a grandchild task"
        );

        // At least one Table-4 template instantiation.
        assert!(
            file.properties
                .iter()
                .any(|p| matches!(p.body, PropertyBody::Template { .. })),
            "{name}: must instantiate a Table-4 template"
        );

        // At least one `R` (release) operator in a formula body.
        fn has_release(f: &LtlExpr) -> bool {
            match f {
                LtlExpr::Release(..) => true,
                LtlExpr::True(_) | LtlExpr::False(_) | LtlExpr::Atom(_) => false,
                LtlExpr::Not(inner, _)
                | LtlExpr::Next(inner, _)
                | LtlExpr::Globally(inner, _)
                | LtlExpr::Eventually(inner, _) => has_release(inner),
                LtlExpr::And(a, b)
                | LtlExpr::Or(a, b)
                | LtlExpr::Implies(a, b)
                | LtlExpr::Until(a, b) => has_release(a) || has_release(b),
            }
        }
        assert!(
            file.properties.iter().any(|p| match &p.body {
                PropertyBody::Formula(f) => has_release(f),
                PropertyBody::Template { .. } => false,
            }),
            "{name}: must use the R (release) operator"
        );
    }
}

/// Frontend errors surface as the typed `VerifasError::Spec` with the
/// offending line and column.
#[test]
fn frontend_errors_are_typed_and_spanned() {
    let err: VerifasError = spec::compile(
        "spec \"x\";\nschema { relation R(a: data); }\ntask T { vars { x: data } opening: x == null; }",
    )
    .unwrap_err()
    .into();
    match err {
        VerifasError::Spec { span, message } => {
            assert_eq!(span.line, 3);
            assert!(message.contains("root task"), "{message}");
        }
        other => panic!("expected a Spec error, got {other:?}"),
    }
}
