//! Behavioural tests of the session-oriented `Engine` API: report JSON
//! round-trips, observer event ordering, cancellation and deadlines.

use std::sync::{Arc, Mutex};
use verifas::prelude::*;
use verifas::workloads::{generate_properties, loan_approval, order_fulfillment};

fn limits() -> SearchLimits {
    SearchLimits {
        max_states: 20_000,
        max_millis: 10_000,
    }
}

fn engine_for(spec: HasSpec) -> Engine {
    let options = VerifierOptions {
        limits: limits(),
        ..VerifierOptions::default()
    };
    Engine::load_with_options(spec, options).unwrap()
}

/// Reports produced by real verification runs round-trip through JSON,
/// for satisfied, violated (with witness) and repeated-phase results alike.
#[test]
fn verification_reports_round_trip_through_json() {
    let spec = order_fulfillment();
    let engine = engine_for(spec.clone());
    let mut round_tripped = 0;
    for property in generate_properties(&spec, 2017).iter().take(6) {
        let report = engine.check(property).unwrap();
        let text = report.to_json();
        let parsed = VerificationReport::from_json(&text).unwrap();
        assert_eq!(
            parsed, report,
            "round trip changed the report for {}",
            property.name
        );
        assert_eq!(
            parsed.to_json(),
            text,
            "serialization is not stable for {}",
            property.name
        );
        round_tripped += 1;
    }
    assert!(round_tripped > 0);
}

/// The witness of a violated property survives serialization with its
/// structured steps intact.
#[test]
fn witness_steps_survive_json() {
    let spec = loan_approval();
    let review = spec.task_by_name("Review").unwrap().0;
    let property = LtlFoProperty::new(
        "review-never-rejects",
        review,
        vec![],
        Ltl::globally(Ltl::not(Ltl::prop(0))),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(3)),
            Term::str("Rejected"),
        ))],
    );
    let engine = engine_for(spec);
    let report = engine.check(&property).unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Violated);
    let parsed = VerificationReport::from_json(&report.to_json()).unwrap();
    let original = report.witness.unwrap();
    let recovered = parsed.witness.unwrap();
    assert_eq!(original.steps, recovered.steps);
    assert!(!recovered.steps.is_empty());
    assert_eq!(original.finite, recovered.finite);
}

/// Progress events arrive in order: each phase starts before its progress
/// events, `states_created` never decreases within a phase, and every
/// started phase finishes.
#[test]
fn observer_events_are_monotone() {
    let spec = order_fulfillment();
    let engine = engine_for(spec.clone());
    // Pick a property whose search is big enough to emit several events.
    let property = order_fulfillment_property_with_big_search(&spec);
    let events: Arc<Mutex<Vec<ProgressEvent>>> = Arc::default();
    let sink = Arc::clone(&events);
    let mut observer = move |event: &ProgressEvent| sink.lock().unwrap().push(*event);
    let report = engine
        .verification()
        .property(&property)
        .observer(&mut observer)
        .progress_every(16)
        .run()
        .unwrap();
    let events = events.lock().unwrap();
    assert!(!events.is_empty(), "no events were observed");
    let mut started = Vec::new();
    let mut finished = Vec::new();
    let mut last_created: Option<(Phase, usize)> = None;
    for event in events.iter() {
        match *event {
            ProgressEvent::PhaseStarted { phase } => {
                started.push(phase);
                last_created = None;
            }
            ProgressEvent::Progress {
                phase,
                states_created,
                ..
            } => {
                assert_eq!(
                    started.last(),
                    Some(&phase),
                    "progress for a phase that has not started"
                );
                if let Some((last_phase, last)) = last_created {
                    if last_phase == phase {
                        assert!(
                            states_created >= last,
                            "states_created went backwards: {last} -> {states_created}"
                        );
                    }
                }
                last_created = Some((phase, states_created));
            }
            ProgressEvent::PhaseFinished { phase, stats } => {
                assert_eq!(started.last(), Some(&phase), "finish without start");
                assert!(stats.states_created > 0);
                finished.push(phase);
            }
            ProgressEvent::CycleProgress { phase, .. } => {
                // Cycle-detection progress follows the repeated phase's own
                // search (it runs over the finished search's active set).
                assert_eq!(phase, Phase::RepeatedReachability);
                assert!(
                    started.contains(&Phase::RepeatedReachability),
                    "cycle progress before the repeated phase started"
                );
            }
        }
    }
    assert_eq!(started, finished, "every started phase must finish");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Progress { .. })),
        "the search was big enough for progress events"
    );
    assert_ne!(report.outcome, VerificationOutcome::Inconclusive);
}

/// Cancelling from inside the observer stops the search: the report is
/// Inconclusive, flagged cancelled, and far smaller than the full run.
#[test]
fn cancellation_stops_the_search() {
    let spec = order_fulfillment();
    let engine = engine_for(spec.clone());
    let property = order_fulfillment_property_with_big_search(&spec);
    let full = engine.check(&property).unwrap();
    assert!(full.stats.states_created > 100, "need a sizeable search");

    let token = CancelToken::new();
    let trigger = token.clone();
    let mut observer = move |event: &ProgressEvent| {
        if matches!(event, ProgressEvent::Progress { .. }) {
            trigger.cancel();
        }
    };
    let report = engine
        .verification()
        .property(&property)
        .observer(&mut observer)
        .progress_every(16)
        .cancel_token(token)
        .run()
        .unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Inconclusive);
    assert!(report.cancelled);
    assert!(report.stats.cancelled);
    assert!(
        report.stats.states_created < full.stats.states_created,
        "cancellation did not stop early ({} vs {})",
        report.stats.states_created,
        full.stats.states_created
    );
}

/// An already-expired deadline stops the run before any state expansion.
#[test]
fn expired_deadlines_stop_immediately() {
    let spec = order_fulfillment();
    let engine = engine_for(spec.clone());
    let property = order_fulfillment_property_with_big_search(&spec);
    let report = engine
        .verification()
        .property(&property)
        .deadline(std::time::Duration::ZERO)
        .run()
        .unwrap();
    assert_eq!(report.outcome, VerificationOutcome::Inconclusive);
    assert!(report.cancelled);
}

/// A benchmark property of the order-fulfillment workflow whose search
/// expands enough states to emit several progress events at granularity 16.
fn order_fulfillment_property_with_big_search(spec: &HasSpec) -> LtlFoProperty {
    let engine = engine_for(spec.clone());
    generate_properties(spec, 2017)
        .into_iter()
        .find(|p| {
            engine
                .check(p)
                .map(|r| r.stats.states_created > 200)
                .unwrap_or(false)
        })
        .expect("some benchmark property has a sizeable search")
}
