//! Golden-file diagnostics: every malformed `.has` fixture under
//! `tests/diagnostics/` must produce *exactly* the error text recorded in
//! its sibling `.expected` file — message wording and line/column span
//! included — so parser and resolver errors stay stable and humane.
//!
//! To update the goldens after an intentional wording change, run with
//! `UPDATE_DIAGNOSTICS=1` and review the diff.

use std::path::PathBuf;
use verifas_spec::compile;

fn fixtures() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/diagnostics");
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/diagnostics exists")
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|e| e == "has"))
        .collect();
    out.sort();
    assert!(out.len() >= 10, "the diagnostics corpus must not shrink");
    out
}

#[test]
fn malformed_inputs_produce_exact_spanned_diagnostics() {
    let update = std::env::var_os("UPDATE_DIAGNOSTICS").is_some();
    let mut failures = Vec::new();
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let error = match compile(&source) {
            Err(e) => e,
            Ok(_) => panic!("{name}: expected a diagnostic, but the fixture compiled"),
        };
        let rendered = format!("{}\n", error.render(&name));
        let expected_path = path.with_extension("expected");
        if update {
            std::fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("{name}: missing golden file {expected_path:?}"));
        if rendered != expected {
            failures.push(format!(
                "{name}:\n  expected: {}\n  actual:   {}",
                expected.trim_end(),
                rendered.trim_end()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "diagnostics drifted from their goldens:\n{}",
        failures.join("\n")
    );
}

/// Spans in the goldens are real positions: every recorded line/column
/// points inside the fixture text.
#[test]
fn golden_spans_point_into_the_fixture() {
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let error = compile(&source).expect_err("fixtures are malformed");
        let lines: Vec<&str> = source.lines().collect();
        let line = error.span.line as usize;
        assert!(
            line >= 1 && line <= lines.len() + 1,
            "{name}: line {line} outside the fixture"
        );
        if line <= lines.len() {
            // Columns may point one past the end of the line (EOF-style
            // errors); anything further means the span is wrong.
            assert!(
                (error.span.column as usize) <= lines[line - 1].chars().count() + 1,
                "{name}: column {} outside line {line}",
                error.span.column
            );
        }
    }
}
