//! Seeded printer/parser round-trip fuzzing.
//!
//! An LCG drives a generator of random small — but valid-by-construction
//! — specification ASTs.  Each generated tree is pretty-printed with the
//! canonical formatter, reparsed, and the two trees must be structurally
//! identical (spans stripped); both must then lower to the *same*
//! `HasSpec` and property list.  This pins the printer and the parser
//! against drifting apart: any token the printer emits that the parser
//! reads back differently (precedence, parenthesization, escaping,
//! keyword clashes) fails a seed.

use verifas_spec::ast::*;
use verifas_spec::{format_spec, parse, resolve};

/// A minimal deterministic LCG (same constants as Knuth's MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform value in `0..bound` (bound ≥ 1).
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

fn ident(name: String) -> Ident {
    Ident::synthetic(name)
}

/// Relation layout the generator tracks to keep conditions well-typed.
struct GenRelation {
    name: String,
    /// `None` for a data attribute, `Some(target index)` for a foreign key.
    attrs: Vec<Option<usize>>,
}

struct GenVar {
    name: String,
    /// `None` for data, `Some(relation index)` for an id variable.
    rel: Option<usize>,
}

fn gen_relations(rng: &mut Lcg) -> Vec<GenRelation> {
    let count = 1 + rng.below(3);
    let mut out: Vec<GenRelation> = Vec::new();
    for i in 0..count {
        let attr_count = 1 + rng.below(2);
        let mut attrs = Vec::new();
        for _ in 0..attr_count {
            if !out.is_empty() && rng.chance(30) {
                attrs.push(Some(rng.below(out.len())));
            } else {
                attrs.push(None);
            }
        }
        out.push(GenRelation {
            name: format!("R{i}"),
            attrs,
        });
    }
    out
}

fn gen_vars(rng: &mut Lcg, relations: &[GenRelation], prefix: &str) -> Vec<GenVar> {
    let count = 2 + rng.below(3);
    (0..count)
        .map(|i| GenVar {
            name: format!("{prefix}{i}"),
            rel: rng.chance(40).then(|| rng.below(relations.len())),
        })
        .collect()
}

/// A random term of the given type (`None` = data) over the scope.
fn gen_term(rng: &mut Lcg, vars: &[GenVar], rel: Option<usize>) -> TermExpr {
    let candidates: Vec<&GenVar> = vars.iter().filter(|v| v.rel == rel).collect();
    match rel {
        None => match rng.below(if candidates.is_empty() { 2 } else { 3 }) {
            0 => TermExpr::Str(format!("c{}", rng.below(4)), Default::default()),
            1 => TermExpr::Null(Default::default()),
            _ => TermExpr::Var(ident(candidates[rng.below(candidates.len())].name.clone())),
        },
        Some(_) => {
            if candidates.is_empty() || rng.chance(30) {
                TermExpr::Null(Default::default())
            } else {
                TermExpr::Var(ident(candidates[rng.below(candidates.len())].name.clone()))
            }
        }
    }
}

/// A random well-typed atomic condition over the scope.
fn gen_atom_cond(rng: &mut Lcg, relations: &[GenRelation], vars: &[GenVar]) -> CondExpr {
    // A relational atom needs an id variable for some relation.
    let keyed: Vec<usize> = vars.iter().filter_map(|v| v.rel).collect();
    if !keyed.is_empty() && rng.chance(30) {
        let rel_index = keyed[rng.below(keyed.len())];
        let relation = &relations[rel_index];
        let key = gen_term(rng, vars, Some(rel_index));
        let mut args = vec![key];
        for attr in &relation.attrs {
            args.push(gen_term(rng, vars, *attr));
        }
        return CondExpr::Rel {
            rel: ident(relation.name.clone()),
            args,
        };
    }
    // Comparison between same-typed terms (null compares with anything).
    let var = &vars[rng.below(vars.len())];
    let left = TermExpr::Var(ident(var.name.clone()));
    let right = gen_term(rng, vars, var.rel);
    CondExpr::Cmp {
        left,
        eq: rng.chance(60),
        right,
    }
}

fn gen_cond(rng: &mut Lcg, relations: &[GenRelation], vars: &[GenVar], depth: usize) -> CondExpr {
    if depth == 0 || rng.chance(35) {
        return gen_atom_cond(rng, relations, vars);
    }
    match rng.below(5) {
        0 => CondExpr::Not(
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
            Default::default(),
        ),
        1 => CondExpr::And(
            (0..2 + rng.below(2))
                .map(|_| gen_cond(rng, relations, vars, depth - 1))
                .collect(),
        ),
        2 => CondExpr::Or(
            (0..2 + rng.below(2))
                .map(|_| gen_cond(rng, relations, vars, depth - 1))
                .collect(),
        ),
        3 => CondExpr::Implies(
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
        ),
        _ => {
            if rng.chance(50) {
                CondExpr::True(Default::default())
            } else {
                CondExpr::False(Default::default())
            }
        }
    }
}

fn gen_ltl(rng: &mut Lcg, relations: &[GenRelation], vars: &[GenVar], depth: usize) -> LtlExpr {
    if depth == 0 || rng.chance(30) {
        return LtlExpr::Atom(AtomExpr::Cond(
            Box::new(gen_cond(rng, relations, vars, 1)),
            Default::default(),
        ));
    }
    let sub = |rng: &mut Lcg| Box::new(gen_ltl(rng, relations, vars, depth - 1));
    match rng.below(8) {
        0 => LtlExpr::Not(sub(rng), Default::default()),
        1 => LtlExpr::And(sub(rng), sub(rng)),
        2 => LtlExpr::Or(sub(rng), sub(rng)),
        3 => LtlExpr::Implies(sub(rng), sub(rng)),
        4 => LtlExpr::Globally(sub(rng), Default::default()),
        5 => LtlExpr::Eventually(sub(rng), Default::default()),
        6 => LtlExpr::Until(sub(rng), sub(rng)),
        _ => LtlExpr::Next(sub(rng), Default::default()),
    }
}

fn type_decl(relations: &[GenRelation], rel: Option<usize>) -> TypeDecl {
    match rel {
        None => TypeDecl::Data,
        Some(i) => TypeDecl::Id(ident(relations[i].name.clone())),
    }
}

/// One random, valid-by-construction specification file.
fn gen_spec(seed: u64) -> SpecFile {
    let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let rng = &mut rng;
    let relations = gen_relations(rng);
    let root_vars = gen_vars(rng, &relations, "v");
    let mut root = TaskDecl {
        name: ident("Root".into()),
        parent: None,
        vars: root_vars
            .iter()
            .map(|v| VarDecl {
                name: ident(v.name.clone()),
                typ: type_decl(&relations, v.rel),
            })
            .collect(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        artifacts: Vec::new(),
        opening: None,
        closing: None,
        services: Vec::new(),
    };
    // Optionally one artifact relation plus a matching insert service
    // (root has no inputs, so update services propagate nothing).
    if root_vars.len() >= 2 && rng.chance(50) {
        let columns = vec![
            ident(root_vars[0].name.clone()),
            ident(root_vars[1].name.clone()),
        ];
        root.artifacts.push(ArtifactDecl {
            name: ident("POOL".into()),
            columns: columns.clone(),
        });
        root.services.push(ServiceDecl {
            name: ident("stash".into()),
            pre: gen_cond(rng, &relations, &root_vars, 1),
            post: gen_cond(rng, &relations, &root_vars, 1),
            propagate: Vec::new(),
            update: Some(UpdateDecl {
                insert: rng.chance(50),
                rel: ident("POOL".into()),
                vars: columns,
            }),
        });
    }
    for i in 0..1 + rng.below(3) {
        root.services.push(ServiceDecl {
            name: ident(format!("s{i}")),
            pre: gen_cond(rng, &relations, &root_vars, 2),
            post: gen_cond(rng, &relations, &root_vars, 2),
            propagate: Vec::new(),
            update: None,
        });
    }
    let mut tasks = vec![root];
    // Optionally one child wired through the same-name convention: its
    // variables are a prefix of the root's (same names, same types).
    if rng.chance(60) {
        let take = 2 + rng.below(root_vars.len() - 1);
        let child_vars: Vec<&GenVar> = root_vars.iter().take(take).collect();
        let input = child_vars[0];
        let output = child_vars[child_vars.len() - 1];
        let child_scope: Vec<GenVar> = child_vars
            .iter()
            .map(|v| GenVar {
                name: v.name.clone(),
                rel: v.rel,
            })
            .collect();
        let mut services = Vec::new();
        for i in 0..1 + rng.below(2) {
            services.push(ServiceDecl {
                name: ident(format!("c{i}")),
                pre: gen_cond(rng, &relations, &child_scope, 1),
                post: gen_cond(rng, &relations, &child_scope, 1),
                // Every service of a task with inputs must propagate them.
                propagate: vec![ident(input.name.clone())],
                update: None,
            });
        }
        tasks.push(TaskDecl {
            name: ident("Child".into()),
            parent: Some(ident("Root".into())),
            vars: child_scope
                .iter()
                .map(|v| VarDecl {
                    name: ident(v.name.clone()),
                    typ: type_decl(&relations, v.rel),
                })
                .collect(),
            inputs: vec![IoPair {
                child: ident(input.name.clone()),
                parent: None,
            }],
            outputs: if output.name != input.name {
                vec![IoPair {
                    child: ident(output.name.clone()),
                    parent: None,
                }]
            } else {
                Vec::new()
            },
            artifacts: Vec::new(),
            opening: Some(gen_cond(rng, &relations, &root_vars, 1)),
            closing: Some(gen_cond(rng, &relations, &child_scope, 1)),
            services,
        });
    }
    let init = rng
        .chance(70)
        .then(|| gen_cond(rng, &relations, &root_vars, 1));
    let mut properties = Vec::new();
    for i in 0..rng.below(3) {
        let body = if rng.chance(30) {
            PropertyBody::Template {
                name: "G phi".into(),
                span: Default::default(),
                phi: Some(AtomExpr::Cond(
                    Box::new(gen_cond(rng, &relations, &root_vars, 1)),
                    Default::default(),
                )),
                psi: None,
            }
        } else {
            PropertyBody::Formula(gen_ltl(rng, &relations, &root_vars, 2))
        };
        // `define` aliases interact with alias atoms; the generated
        // bodies stay self-contained (inline `{ … }` condition atoms).
        properties.push(PropertyDecl {
            name: format!("p{i}"),
            span: Default::default(),
            task: ident("Root".into()),
            foralls: if rng.chance(30) {
                vec![VarDecl {
                    name: ident("g0".into()),
                    typ: TypeDecl::Data,
                }]
            } else {
                Vec::new()
            },
            defines: Vec::new(),
            body,
        });
    }
    SpecFile {
        name: format!("fuzz-{seed}"),
        span: Default::default(),
        relations: relations
            .iter()
            .map(|r| RelationDecl {
                name: ident(r.name.clone()),
                attrs: r
                    .attrs
                    .iter()
                    .enumerate()
                    .map(|(i, target)| AttrDecl {
                        name: ident(format!("a{i}")),
                        kind: match target {
                            None => AttrKindDecl::Data,
                            Some(t) => AttrKindDecl::Ref(ident(relations[*t].name.clone())),
                        },
                    })
                    .collect(),
            })
            .collect(),
        tasks,
        init,
        properties,
    }
}

#[test]
fn seeded_round_trip_is_lossless() {
    for seed in 0..96u64 {
        let original = gen_spec(seed);
        let printed = format_spec(&original);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: reparse failed: {e}\n--- printed ---\n{printed}")
        });
        let mut a = original.clone();
        let mut b = reparsed.clone();
        a.strip_spans();
        b.strip_spans();
        assert_eq!(
            a, b,
            "seed {seed}: printed text reparsed differently\n--- printed ---\n{printed}"
        );
        // Both trees must lower identically (and successfully: the
        // generator only emits valid specifications).
        let lowered_original = resolve(&original)
            .unwrap_or_else(|e| panic!("seed {seed}: original failed to lower: {e}\n{printed}"));
        let lowered_reparsed = resolve(&reparsed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed to lower: {e}\n{printed}"));
        assert_eq!(
            lowered_original.spec, lowered_reparsed.spec,
            "seed {seed}: lowered specifications diverge"
        );
        assert_eq!(
            lowered_original.properties, lowered_reparsed.properties,
            "seed {seed}: lowered properties diverge"
        );
    }
}

/// Formatting a formatted file is a fixed point for every seed.
#[test]
fn seeded_formatting_is_idempotent() {
    for seed in 0..96u64 {
        let printed = format_spec(&gen_spec(seed));
        let again = format_spec(&parse(&printed).unwrap());
        assert_eq!(printed, again, "seed {seed}");
    }
}
