//! Tokenizer of the `.has` specification language.
//!
//! The lexer turns source text into a flat token stream with 1-based
//! line/column spans on every token; keywords are not distinguished here
//! (the parser matches identifier text where the grammar expects one), so
//! the token set stays small and the spans stay exact.

use crate::error::SpecError;
use verifas_core::SourceSpan;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (or keyword — the parser decides by position).
    Ident(String),
    /// String literal, unquoted and unescaped.
    Str(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `.`
    Dot,
    /// `!`
    Bang,
    /// `!=`
    NotEq,
    /// `==`
    EqEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl Token {
    /// A short human-readable rendering used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(name) => format!("`{name}`"),
            Token::Str(s) => format!("string \"{s}\""),
            Token::Int(i) => format!("integer {i}"),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Comma => "`,`".into(),
            Token::Semi => "`;`".into(),
            Token::Colon => "`:`".into(),
            Token::Assign => "`:=`".into(),
            Token::Dot => "`.`".into(),
            Token::Bang => "`!`".into(),
            Token::NotEq => "`!=`".into(),
            Token::EqEq => "`==`".into(),
            Token::AndAnd => "`&&`".into(),
            Token::OrOr => "`||`".into(),
            Token::Arrow => "`->`".into(),
            Token::Eof => "end of file".into(),
        }
    }
}

/// A token with the span of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line/column of the token's first character.
    pub span: SourceSpan,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peek one character past the next one.
    fn peek2(&self) -> Option<char> {
        let mut ahead = self.chars.clone();
        ahead.next();
        ahead.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.column = 1;
            }
            Some(_) => self.column += 1,
            None => {}
        }
        c
    }

    fn here(&self) -> SourceSpan {
        SourceSpan::new(self.line, self.column)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_int(&mut self, negative: bool, span: SourceSpan) -> Result<Token, SpecError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let value: i64 = digits.parse().map_err(|_| {
            SpecError::new(span, format!("integer literal `{digits}` is out of range"))
        })?;
        Ok(Token::Int(if negative { -value } else { value }))
    }

    fn next_token(&mut self) -> Result<Spanned, SpecError> {
        self.skip_trivia();
        let span = self.here();
        let Some(c) = self.peek() else {
            return Ok(Spanned {
                token: Token::Eof,
                span,
            });
        };
        let token = match c {
            '{' => {
                self.bump();
                Token::LBrace
            }
            '}' => {
                self.bump();
                Token::RBrace
            }
            '(' => {
                self.bump();
                Token::LParen
            }
            ')' => {
                self.bump();
                Token::RParen
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            ';' => {
                self.bump();
                Token::Semi
            }
            '.' => {
                self.bump();
                Token::Dot
            }
            ':' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Token::Assign
                } else {
                    Token::Colon
                }
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Token::NotEq
                } else {
                    Token::Bang
                }
            }
            '=' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Token::EqEq
                } else {
                    return Err(SpecError::new(
                        span,
                        "expected `==` (single `=` is not an operator; \
                         use `==` to compare, `:=` to define)",
                    ));
                }
            }
            '&' => {
                self.bump();
                if self.peek() == Some('&') {
                    self.bump();
                    Token::AndAnd
                } else {
                    return Err(SpecError::new(span, "expected `&&`"));
                }
            }
            '|' => {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                    Token::OrOr
                } else {
                    return Err(SpecError::new(span, "expected `||`"));
                }
            }
            '-' => {
                self.bump();
                match self.peek() {
                    Some('>') => {
                        self.bump();
                        Token::Arrow
                    }
                    Some(d) if d.is_ascii_digit() => self.lex_int(true, span)?,
                    _ => {
                        return Err(SpecError::new(
                            span,
                            "expected `->` or a negative integer after `-`",
                        ))
                    }
                }
            }
            '"' => {
                self.bump();
                let mut text = String::new();
                loop {
                    match self.bump() {
                        None | Some('\n') => {
                            return Err(SpecError::new(span, "unterminated string literal"))
                        }
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('"') => text.push('"'),
                            Some('\\') => text.push('\\'),
                            Some(other) => {
                                return Err(SpecError::new(
                                    span,
                                    format!("unknown escape `\\{other}` in string literal"),
                                ))
                            }
                            None => {
                                return Err(SpecError::new(span, "unterminated string literal"))
                            }
                        },
                        Some(other) => text.push(other),
                    }
                }
                Token::Str(text)
            }
            d if d.is_ascii_digit() => self.lex_int(false, span)?,
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Ident(name)
            }
            other => {
                return Err(SpecError::new(
                    span,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        Ok(Spanned { token, span })
    }
}

/// `true` when the source contains `//` comments (outside string
/// literals).  Formatting preserves comments (see [`collect_comments`]
/// and `format_source`); this predicate remains for callers that care
/// whether a file has any — e.g. to pick a comment-free fast path.
pub fn has_comments(source: &str) -> bool {
    let mut chars = source.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => in_string = !in_string,
            // Escapes only exist inside strings; a lone trailing
            // backslash just ends the scan.
            '\\' if in_string => {
                chars.next();
            }
            // A string never spans lines (the lexer rejects it); treat
            // the newline as closing so a malformed file cannot hide a
            // comment from this scan.
            '\n' if in_string => in_string = false,
            '/' if !in_string && chars.peek() == Some(&'/') => return true,
            _ => {}
        }
    }
    false
}

/// A `//` comment, collected for the comment-preserving formatter
/// (`verifas fmt` re-anchors these against the canonical layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// `true` when the comment is the first non-whitespace on its line
    /// (a standalone comment); `false` when it trails code.
    pub own_line: bool,
    /// The text after `//`, trimmed.
    pub text: String,
}

/// Every `//` comment in `source` (outside string literals), in order.
///
/// Uses the same string-awareness rules as [`has_comments`]: escapes
/// only exist inside strings, and a string never spans lines, so the
/// in-string state resets at each newline.
pub fn collect_comments(source: &str) -> Vec<Comment> {
    let mut out = Vec::new();
    for (index, text) in source.lines().enumerate() {
        let mut chars = text.char_indices().peekable();
        let mut in_string = false;
        while let Some((at, c)) = chars.next() {
            match c {
                '"' => in_string = !in_string,
                '\\' if in_string => {
                    chars.next();
                }
                '/' if !in_string && matches!(chars.peek(), Some((_, '/'))) => {
                    out.push(Comment {
                        line: (index + 1) as u32,
                        own_line: text[..at].trim().is_empty(),
                        text: text[at + 2..].trim().to_owned(),
                    });
                    break;
                }
                _ => {}
            }
        }
    }
    out
}

/// Tokenize a whole source text (stops at the first lexical error).
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, SpecError> {
    let mut lexer = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        let spanned = lexer.next_token()?;
        let done = spanned.token == Token::Eof;
        out.push(spanned);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Token> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokens_and_spans() {
        let toks = tokenize("spec \"x\";\n  a == -3").unwrap();
        assert_eq!(toks[0].token, Token::Ident("spec".into()));
        assert_eq!(toks[0].span, SourceSpan::new(1, 1));
        assert_eq!(toks[1].token, Token::Str("x".into()));
        assert_eq!(toks[1].span, SourceSpan::new(1, 6));
        assert_eq!(toks[2].token, Token::Semi);
        assert_eq!(toks[3].token, Token::Ident("a".into()));
        assert_eq!(toks[3].span, SourceSpan::new(2, 3));
        assert_eq!(toks[4].token, Token::EqEq);
        assert_eq!(toks[5].token, Token::Int(-3));
        assert_eq!(toks[6].token, Token::Eof);
    }

    #[test]
    fn comments_and_operators() {
        assert_eq!(
            kinds("a := b // ignored\n!= ! && || -> : ."),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Bang,
                Token::AndAnd,
                Token::OrOr,
                Token::Arrow,
                Token::Colon,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\\c""#),
            vec![Token::Str("a\"b\\c".into()), Token::Eof]
        );
    }

    #[test]
    fn comment_detection_is_string_aware() {
        assert!(has_comments("a // trailing"));
        assert!(has_comments("// leading\nspec \"x\";"));
        assert!(!has_comments("spec \"not // a comment\";"));
        assert!(!has_comments("a / b"));
        assert!(has_comments("\"s\" // after a string"));
        assert!(!has_comments(""));
    }

    #[test]
    fn lexical_errors_carry_spans() {
        let err = tokenize("ok\n  @").unwrap_err();
        assert_eq!(err.span, SourceSpan::new(2, 3));
        assert!(err.message.contains('@'));
        let err = tokenize("\"open").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = tokenize("a = b").unwrap_err();
        assert!(err.message.contains("=="));
    }
}
