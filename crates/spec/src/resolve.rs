//! Name resolution, type resolution and lowering of a parsed `.has` file
//! into a `verifas_model::HasSpec` plus named LTL-FO properties.
//!
//! Lowering goes through the exact same builders programmatic callers use
//! ([`TaskBuilder`], [`SpecBuilder`], the `Condition` / `Ltl` constructor
//! helpers), in declaration order, so a `.has` file and an equivalent
//! Rust builder produce *structurally identical* specifications — the
//! facade's `spec_frontend` integration test pins the two real ported
//! workloads bit for bit, down to verdicts and search statistics.
//!
//! Every diagnostic carries the span of the offending construct; errors
//! surfaced by the model-level validation (which has no source spans) are
//! anchored at the `spec` header.

use crate::ast::*;
use crate::error::SpecError;
use std::collections::HashMap;
use verifas_core::SourceSpan;
use verifas_ltl::{all_templates, Ltl, LtlFoProperty, PropAtom};
use verifas_model::schema::AttrKind;
use verifas_model::{
    Condition, DatabaseSchema, HasSpec, ServiceRef, SpecBuilder, TaskBuilder, TaskId, Term, VarId,
    VarType,
};

/// The result of compiling one `.has` file: the lowered specification and
/// its named properties, in declaration order.
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    /// The validated specification.
    pub spec: HasSpec,
    /// The properties, validated against `spec`.
    pub properties: Vec<LtlFoProperty>,
}

/// Per-task symbols kept for name resolution (the builders own the tasks
/// themselves).
struct TaskScope {
    name: String,
    vars: Vec<(String, VarType)>,
    services: Vec<String>,
}

/// Words the condition grammar claims for literals: a variable with one
/// of these names could never be referenced (the parser reads the
/// literal first), so declaring one is rejected up front.
const RESERVED_TERMS: &[&str] = &["true", "false", "null"];

/// Words the LTL grammar claims for literals and operators: an alias
/// with one of these names would be silently shadowed (or unreferencable)
/// at every use site.
const RESERVED_ATOMS: &[&str] = &[
    "true", "false", "null", "open", "close", "did", "G", "F", "X", "U", "R",
];

fn check_reserved(ident: &Ident, reserved: &[&str], what: &str) -> Result<(), SpecError> {
    if reserved.contains(&ident.name.as_str()) {
        return Err(SpecError::new(
            ident.span,
            format!(
                "`{}` is a reserved word and cannot name a {what}",
                ident.name
            ),
        ));
    }
    Ok(())
}

/// Lower a parsed file into a validated [`CompiledSpec`].
pub fn resolve(file: &SpecFile) -> Result<CompiledSpec, SpecError> {
    let db = resolve_schema(file)?;
    let mut scopes: Vec<TaskScope> = Vec::new();
    let mut builder: Option<SpecBuilder> = None;
    for (index, decl) in file.tasks.iter().enumerate() {
        if index == 0 {
            if let Some(parent) = &decl.parent {
                return Err(SpecError::new(
                    parent.span,
                    format!(
                        "the first task (`{}`) is the root and cannot be a child",
                        decl.name.name
                    ),
                ));
            }
        } else if decl.parent.is_none() {
            return Err(SpecError::new(
                decl.name.span,
                format!(
                    "task `{}` must declare `child of <PARENT>` (only the first task is the root)",
                    decl.name.name
                ),
            ));
        }
        if scopes.iter().any(|s| s.name == decl.name.name) {
            return Err(SpecError::new(
                decl.name.span,
                format!("duplicate task `{}`", decl.name.name),
            ));
        }
        let (task, scope, maps) = resolve_task(&db, decl, &scopes)?;
        match (&mut builder, &decl.parent) {
            (slot @ None, _) => *slot = Some(SpecBuilder::new(file.name.clone(), db.clone(), task)),
            (Some(builder), Some(parent)) => {
                let (input_map, output_map) = maps;
                builder
                    .add_child_with_maps(&parent.name, task, input_map, output_map)
                    .map_err(|e| SpecError::new(parent.span, format!("cannot attach task: {e}")))?;
            }
            (Some(_), None) => unreachable!("non-first tasks have parents"),
        }
        scopes.push(scope);
    }
    let mut builder = builder.expect("the parser guarantees at least one task");
    if let Some(init) = &file.init {
        let ctx = CondCtx::of(&db, &scopes[0]);
        builder.global_pre(lower_cond(init, &ctx)?);
    }
    let spec = builder.build().map_err(|e| {
        SpecError::new(
            file.span,
            format!("the lowered specification is invalid: {e}"),
        )
    })?;
    let mut properties: Vec<LtlFoProperty> = Vec::new();
    for decl in &file.properties {
        // Reports and `--prop` selection key on the property name; a
        // duplicate would make verdicts unattributable.
        if properties.iter().any(|p| p.name == decl.name) {
            return Err(SpecError::new(
                decl.span,
                format!("duplicate property {:?}", decl.name),
            ));
        }
        properties.push(resolve_property(&db, &spec, &scopes, decl)?);
    }
    Ok(CompiledSpec { spec, properties })
}

fn resolve_schema(file: &SpecFile) -> Result<DatabaseSchema, SpecError> {
    let mut db = DatabaseSchema::new();
    for rel in &file.relations {
        let mut attrs = Vec::new();
        for attr in &rel.attrs {
            let kind = match &attr.kind {
                AttrKindDecl::Data => AttrKind::NonKey,
                AttrKindDecl::Ref(target) => {
                    let (id, _) = db.relation_by_name(&target.name).ok_or_else(|| {
                        SpecError::new(
                            target.span,
                            format!(
                                "unknown relation `{}` (foreign keys may only reference \
                                 previously declared relations)",
                                target.name
                            ),
                        )
                    })?;
                    AttrKind::ForeignKey(id)
                }
            };
            attrs.push((attr.name.name.clone(), kind));
        }
        db.add_relation(rel.name.name.clone(), attrs)
            .map_err(|e| SpecError::new(rel.name.span, e.to_string()))?;
    }
    Ok(db)
}

/// An explicit `(child name, parent name)` input or output mapping;
/// `None` lowers through the builder's same-name convention.
type NameMap = Option<Vec<(String, String)>>;
type IoMaps = (NameMap, NameMap);

fn resolve_task(
    db: &DatabaseSchema,
    decl: &TaskDecl,
    scopes: &[TaskScope],
) -> Result<(verifas_model::Task, TaskScope, IoMaps), SpecError> {
    let mut builder = TaskBuilder::new(decl.name.name.clone());
    let mut vars: Vec<(String, VarType)> = Vec::new();
    let mut services: Vec<String> = Vec::new();
    for var in &decl.vars {
        check_reserved(&var.name, RESERVED_TERMS, "variable")?;
        if vars.iter().any(|(name, _)| *name == var.name.name) {
            return Err(SpecError::new(
                var.name.span,
                format!(
                    "duplicate variable `{}` in task `{}`",
                    var.name.name, decl.name.name
                ),
            ));
        }
        let typ = resolve_type(db, &var.typ)?;
        match typ {
            VarType::Data => builder.data_var(var.name.name.clone()),
            VarType::Id(rel) => builder.id_var(var.name.name.clone(), rel),
        };
        vars.push((var.name.name.clone(), typ));
    }
    let lookup = |ident: &Ident| -> Result<VarId, SpecError> {
        vars.iter()
            .position(|(name, _)| *name == ident.name)
            .map(|i| VarId::new(i as u32))
            .ok_or_else(|| {
                SpecError::new(
                    ident.span,
                    format!(
                        "unknown variable `{}` in task `{}`",
                        ident.name, decl.name.name
                    ),
                )
            })
    };
    // Input/output declarations: resolve the child side now and validate
    // the (optional) explicit parent side against the parent's scope, so
    // the builder's same-name wiring can never fail without a span.
    let parent_scope =
        match &decl.parent {
            None => None,
            Some(parent) => Some(scopes.iter().find(|s| s.name == parent.name).ok_or_else(
                || {
                    SpecError::new(
                        parent.span,
                        format!(
                            "unknown parent task `{}` (tasks may only reference \
                             previously declared tasks)",
                            parent.name
                        ),
                    )
                },
            )?),
        };
    let resolve_io = |pairs: &[IoPair]| -> Result<(Vec<VarId>, NameMap), SpecError> {
        let mut vars = Vec::new();
        let mut explicit = false;
        let mut mapping = Vec::new();
        for pair in pairs {
            vars.push(lookup(&pair.child)?);
            let parent_name = pair.parent.as_ref().unwrap_or(&pair.child);
            if let Some(parent_scope) = parent_scope {
                if !parent_scope
                    .vars
                    .iter()
                    .any(|(n, _)| n == &parent_name.name)
                {
                    return Err(SpecError::new(
                        parent_name.span,
                        format!(
                            "unknown variable `{}` in parent task `{}`",
                            parent_name.name, parent_scope.name
                        ),
                    ));
                }
            }
            explicit |= pair.parent.is_some();
            mapping.push((pair.child.name.clone(), parent_name.name.clone()));
        }
        Ok((vars, explicit.then_some(mapping)))
    };
    let (input_vars, input_map) = resolve_io(&decl.inputs)?;
    let (output_vars, output_map) = resolve_io(&decl.outputs)?;
    builder.inputs(input_vars);
    builder.outputs(output_vars);
    for artifact in &decl.artifacts {
        if builder
            .as_task()
            .art_rel_by_name(&artifact.name.name)
            .is_some()
        {
            return Err(SpecError::new(
                artifact.name.span,
                format!(
                    "duplicate artifact relation `{}` in task `{}`",
                    artifact.name.name, decl.name.name
                ),
            ));
        }
        let columns = artifact
            .columns
            .iter()
            .map(&lookup)
            .collect::<Result<Vec<_>, _>>()?;
        builder.art_relation_like(artifact.name.name.clone(), &columns);
    }
    let own_ctx = CondCtx {
        db,
        task_name: &decl.name.name,
        vars: &vars,
        globals: &[],
    };
    match (&decl.opening, parent_scope) {
        (Some(cond), Some(parent_scope)) => {
            let parent_ctx = CondCtx::of(db, parent_scope);
            builder.opening_pre(lower_cond(cond, &parent_ctx)?);
        }
        (Some(cond), None) => {
            return Err(SpecError::new(
                cond.span(),
                "the root task has a fixed opening condition (true) — remove the `opening` clause",
            ))
        }
        (None, _) => {}
    }
    match (&decl.closing, &decl.parent) {
        (Some(cond), Some(_)) => {
            builder.closing_pre(lower_cond(cond, &own_ctx)?);
        }
        (Some(cond), None) => {
            return Err(SpecError::new(
                cond.span(),
                "the root task has a fixed closing condition (false) — remove the `closing` clause",
            ))
        }
        (None, _) => {}
    }
    for svc in &decl.services {
        if services.contains(&svc.name.name) {
            return Err(SpecError::new(
                svc.name.span,
                format!(
                    "duplicate service `{}` in task `{}`",
                    svc.name.name, decl.name.name
                ),
            ));
        }
        let pre = lower_cond(&svc.pre, &own_ctx)?;
        let post = lower_cond(&svc.post, &own_ctx)?;
        let propagated = svc
            .propagate
            .iter()
            .map(&lookup)
            .collect::<Result<Vec<_>, _>>()?;
        let update = match &svc.update {
            None => None,
            Some(update) => {
                let (rel, _) = builder
                    .as_task()
                    .art_rel_by_name(&update.rel.name)
                    .ok_or_else(|| {
                        SpecError::new(
                            update.rel.span,
                            format!(
                                "unknown artifact relation `{}` in task `{}`",
                                update.rel.name, decl.name.name
                            ),
                        )
                    })?;
                let vars = update
                    .vars
                    .iter()
                    .map(&lookup)
                    .collect::<Result<Vec<_>, _>>()?;
                Some(if update.insert {
                    verifas_model::Update::Insert { rel, vars }
                } else {
                    verifas_model::Update::Retrieve { rel, vars }
                })
            }
        };
        builder.service_parts(svc.name.name.clone(), pre, post, propagated, update);
        services.push(svc.name.name.clone());
    }
    let scope = TaskScope {
        name: decl.name.name.clone(),
        vars,
        services,
    };
    Ok((builder.build(), scope, (input_map, output_map)))
}

fn resolve_type(db: &DatabaseSchema, typ: &TypeDecl) -> Result<VarType, SpecError> {
    match typ {
        TypeDecl::Data => Ok(VarType::Data),
        TypeDecl::Id(rel) => {
            let (id, _) = db.relation_by_name(&rel.name).ok_or_else(|| {
                SpecError::new(rel.span, format!("unknown relation `{}`", rel.name))
            })?;
            Ok(VarType::Id(id))
        }
    }
}

/// Scope for condition lowering: the task's variables plus (for property
/// conditions) the property's global variables.
struct CondCtx<'a> {
    db: &'a DatabaseSchema,
    task_name: &'a str,
    vars: &'a [(String, VarType)],
    globals: &'a [(String, VarType)],
}

impl<'a> CondCtx<'a> {
    fn of(db: &'a DatabaseSchema, scope: &'a TaskScope) -> Self {
        CondCtx {
            db,
            task_name: &scope.name,
            vars: &scope.vars,
            globals: &[],
        }
    }
}

fn lower_term(term: &TermExpr, ctx: &CondCtx<'_>) -> Result<Term, SpecError> {
    match term {
        TermExpr::Null(_) => Ok(Term::Null),
        TermExpr::Str(text, _) => Ok(Term::str(text.clone())),
        TermExpr::Int(value, _) => Ok(Term::int(*value)),
        TermExpr::Var(ident) => {
            if let Some(index) = ctx.vars.iter().position(|(name, _)| *name == ident.name) {
                return Ok(Term::var(VarId::new(index as u32)));
            }
            if let Some(index) = ctx.globals.iter().position(|(name, _)| *name == ident.name) {
                return Ok(Term::global(index as u32));
            }
            Err(SpecError::new(
                ident.span,
                format!(
                    "unknown variable `{}` in task `{}`",
                    ident.name, ctx.task_name
                ),
            ))
        }
    }
}

fn lower_cond(cond: &CondExpr, ctx: &CondCtx<'_>) -> Result<Condition, SpecError> {
    match cond {
        CondExpr::True(_) => Ok(Condition::True),
        CondExpr::False(_) => Ok(Condition::False),
        CondExpr::Cmp { left, eq, right } => {
            let (l, r) = (lower_term(left, ctx)?, lower_term(right, ctx)?);
            Ok(if *eq {
                Condition::eq(l, r)
            } else {
                Condition::neq(l, r)
            })
        }
        CondExpr::Rel { rel, args } => {
            let (id, relation) = ctx.db.relation_by_name(&rel.name).ok_or_else(|| {
                SpecError::new(rel.span, format!("unknown relation `{}`", rel.name))
            })?;
            if args.len() != relation.arity() + 1 {
                return Err(SpecError::new(
                    rel.span,
                    format!(
                        "relation `{}` takes {} terms (the key followed by {} attributes), got {}",
                        rel.name,
                        relation.arity() + 1,
                        relation.arity(),
                        args.len()
                    ),
                ));
            }
            let mut terms = args
                .iter()
                .map(|t| lower_term(t, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let rest = terms.split_off(1);
            Ok(Condition::Rel {
                rel: id,
                id: terms.pop().expect("arity checked above"),
                args: rest,
            })
        }
        CondExpr::Not(inner, _) => Ok(Condition::not(lower_cond(inner, ctx)?)),
        CondExpr::And(parts) => Ok(Condition::and(
            parts
                .iter()
                .map(|c| lower_cond(c, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        CondExpr::Or(parts) => Ok(Condition::or(
            parts
                .iter()
                .map(|c| lower_cond(c, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        CondExpr::Implies(a, b) => Ok(Condition::implies(lower_cond(a, ctx)?, lower_cond(b, ctx)?)),
    }
}

fn resolve_property(
    db: &DatabaseSchema,
    spec: &HasSpec,
    scopes: &[TaskScope],
    decl: &PropertyDecl,
) -> Result<LtlFoProperty, SpecError> {
    let task_index = scopes
        .iter()
        .position(|s| s.name == decl.task.name)
        .ok_or_else(|| {
            SpecError::new(decl.task.span, format!("unknown task `{}`", decl.task.name))
        })?;
    let task_id = TaskId::new(task_index as u32);
    let scope = &scopes[task_index];
    let mut globals: Vec<(String, VarType)> = Vec::new();
    for var in &decl.foralls {
        check_reserved(&var.name, RESERVED_TERMS, "global variable")?;
        if globals.iter().any(|(name, _)| *name == var.name.name) {
            return Err(SpecError::new(
                var.name.span,
                format!("duplicate global variable `{}`", var.name.name),
            ));
        }
        if scope.vars.iter().any(|(name, _)| *name == var.name.name) {
            return Err(SpecError::new(
                var.name.span,
                format!(
                    "global variable `{}` shadows a variable of task `{}`",
                    var.name.name, scope.name
                ),
            ));
        }
        globals.push((var.name.name.clone(), resolve_type(db, &var.typ)?));
    }
    let ctx = CondCtx {
        db,
        task_name: &scope.name,
        vars: &scope.vars,
        globals: &globals,
    };
    let mut defines: HashMap<String, Condition> = HashMap::new();
    for define in &decl.defines {
        check_reserved(&define.name, RESERVED_ATOMS, "condition alias")?;
        if defines.contains_key(&define.name.name) {
            return Err(SpecError::new(
                define.name.span,
                format!("duplicate alias `{}`", define.name.name),
            ));
        }
        let cond = lower_cond(&define.cond, &ctx)?;
        defines.insert(define.name.name.clone(), cond);
    }
    let mut env = PropertyEnv {
        ctx,
        scopes,
        defines: &defines,
        atoms: Vec::new(),
    };
    let formula = match &decl.body {
        PropertyBody::Formula(expr) => lower_ltl(expr, &mut env)?,
        PropertyBody::Template {
            name,
            span,
            phi,
            psi,
        } => lower_template(name, *span, phi.as_ref(), psi.as_ref(), &mut env)?,
    };
    let global_types: Vec<VarType> = globals.iter().map(|(_, typ)| *typ).collect();
    let property = LtlFoProperty::new(decl.name.clone(), task_id, global_types, formula, env.atoms);
    property
        .validate(spec)
        .map_err(|e| SpecError::new(decl.span, format!("invalid property: {e}")))?;
    Ok(property)
}

/// Lowering state of one property body: the condition scope, the alias
/// table and the proposition atoms interned so far (identical atoms share
/// one proposition id, assigned in first-occurrence order).
struct PropertyEnv<'a> {
    ctx: CondCtx<'a>,
    scopes: &'a [TaskScope],
    defines: &'a HashMap<String, Condition>,
    atoms: Vec<PropAtom>,
}

impl PropertyEnv<'_> {
    fn intern(&mut self, atom: PropAtom) -> Ltl {
        let id = match self.atoms.iter().position(|a| *a == atom) {
            Some(id) => id,
            None => {
                self.atoms.push(atom);
                self.atoms.len() - 1
            }
        };
        Ltl::prop(id as u32)
    }

    fn task_by_name(&self, ident: &Ident) -> Result<TaskId, SpecError> {
        self.scopes
            .iter()
            .position(|s| s.name == ident.name)
            .map(|i| TaskId::new(i as u32))
            .ok_or_else(|| SpecError::new(ident.span, format!("unknown task `{}`", ident.name)))
    }
}

fn lower_atom(atom: &AtomExpr, env: &mut PropertyEnv<'_>) -> Result<PropAtom, SpecError> {
    match atom {
        AtomExpr::Cond(cond, _) => Ok(PropAtom::Condition(lower_cond(cond, &env.ctx)?)),
        AtomExpr::Alias(ident) => env
            .defines
            .get(&ident.name)
            .cloned()
            .map(PropAtom::Condition)
            .ok_or_else(|| {
                SpecError::new(
                    ident.span,
                    format!(
                        "unknown alias `{}` (introduce it with `define {} := …;`)",
                        ident.name, ident.name
                    ),
                )
            }),
        AtomExpr::Open(task) => Ok(PropAtom::Service(ServiceRef::Opening(
            env.task_by_name(task)?,
        ))),
        AtomExpr::Close(task) => Ok(PropAtom::Service(ServiceRef::Closing(
            env.task_by_name(task)?,
        ))),
        AtomExpr::Did(task, service) => {
            let task_id = env.task_by_name(task)?;
            let index = env.scopes[task_id.index()]
                .services
                .iter()
                .position(|name| *name == service.name)
                .ok_or_else(|| {
                    SpecError::new(
                        service.span,
                        format!("unknown service `{}` in task `{}`", service.name, task.name),
                    )
                })?;
            Ok(PropAtom::Service(ServiceRef::Internal {
                task: task_id,
                index,
            }))
        }
    }
}

fn lower_ltl(expr: &LtlExpr, env: &mut PropertyEnv<'_>) -> Result<Ltl, SpecError> {
    Ok(match expr {
        LtlExpr::True(_) => Ltl::True,
        LtlExpr::False(_) => Ltl::False,
        LtlExpr::Atom(atom) => {
            let atom = lower_atom(atom, env)?;
            env.intern(atom)
        }
        LtlExpr::Not(inner, _) => Ltl::not(lower_ltl(inner, env)?),
        LtlExpr::And(a, b) => Ltl::and(lower_ltl(a, env)?, lower_ltl(b, env)?),
        LtlExpr::Or(a, b) => Ltl::or(lower_ltl(a, env)?, lower_ltl(b, env)?),
        LtlExpr::Implies(a, b) => Ltl::implies(lower_ltl(a, env)?, lower_ltl(b, env)?),
        LtlExpr::Next(inner, _) => Ltl::next(lower_ltl(inner, env)?),
        LtlExpr::Globally(inner, _) => Ltl::globally(lower_ltl(inner, env)?),
        LtlExpr::Eventually(inner, _) => Ltl::eventually(lower_ltl(inner, env)?),
        LtlExpr::Until(a, b) => Ltl::until(lower_ltl(a, env)?, lower_ltl(b, env)?),
        LtlExpr::Release(a, b) => Ltl::release(lower_ltl(a, env)?, lower_ltl(b, env)?),
    })
}

fn lower_template(
    name: &str,
    span: SourceSpan,
    phi: Option<&AtomExpr>,
    psi: Option<&AtomExpr>,
    env: &mut PropertyEnv<'_>,
) -> Result<Ltl, SpecError> {
    let template = all_templates()
        .into_iter()
        .find(|t| t.name == name)
        .ok_or_else(|| {
            let names: Vec<&str> = all_templates().iter().map(|t| t.name).collect();
            SpecError::new(
                span,
                format!("unknown template \"{name}\"; available templates: {names:?}"),
            )
        })?;
    let expect = |slot: &str, given: bool, wanted: bool| -> Result<(), SpecError> {
        if given == wanted {
            Ok(())
        } else if wanted {
            Err(SpecError::new(
                span,
                format!("template \"{name}\" requires a `{slot}` placeholder"),
            ))
        } else {
            Err(SpecError::new(
                span,
                format!("template \"{name}\" does not use a `{slot}` placeholder"),
            ))
        }
    };
    expect("phi", phi.is_some(), template.arity >= 1)?;
    expect("psi", psi.is_some(), template.arity >= 2)?;
    match template.arity {
        0 => Ok(template.instantiate(&Ltl::True, &Ltl::True)),
        1 => {
            let atom = lower_atom(phi.expect("arity checked"), env)?;
            let p = env.intern(atom);
            Ok(template.instantiate(&p, &p))
        }
        _ => {
            let phi_atom = lower_atom(phi.expect("arity checked"), env)?;
            let p = env.intern(phi_atom);
            let psi_atom = lower_atom(psi.expect("arity checked"), env)?;
            let q = env.intern(psi_atom);
            Ok(template.instantiate(&p, &q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use verifas_ltl::PropertyClass;

    fn compile(source: &str) -> Result<CompiledSpec, SpecError> {
        resolve(&parse(source).unwrap())
    }

    const FLOW: &str = r#"
spec "flow";
schema {
    relation R(a: data);
}
task Root {
    vars { status: data }
    service begin {
        pre: status == null;
        post: status == "Working";
    }
    service finish {
        pre: status == "Working";
        post: status == "Done";
    }
}
init: status == null;
property "never-done" on Root {
    formula: G !{ status == "Done" };
}
property "recurrent" on Root {
    template "GF phi" with phi := did(Root.begin);
}
"#;

    #[test]
    fn lowers_a_flow_specification() {
        let compiled = compile(FLOW).unwrap();
        assert_eq!(compiled.spec.name, "flow");
        assert_eq!(compiled.spec.tasks.len(), 1);
        assert_eq!(compiled.spec.tasks[0].services.len(), 2);
        assert_eq!(compiled.properties.len(), 2);
        assert_eq!(compiled.properties[0].name, "never-done");
        assert_eq!(compiled.properties[0].props.len(), 1);
        // The template property reuses the Table-4 recurrence template.
        let template = all_templates()
            .into_iter()
            .find(|t| t.name == "GF phi")
            .unwrap();
        assert_eq!(template.class, PropertyClass::Fairness);
        assert_eq!(
            compiled.properties[1].formula,
            template.instantiate(&Ltl::prop(0), &Ltl::prop(0))
        );
        assert_eq!(
            compiled.properties[1].props,
            vec![PropAtom::Service(ServiceRef::Internal {
                task: TaskId::new(0),
                index: 0
            })]
        );
    }

    #[test]
    fn identical_atoms_share_one_proposition() {
        let compiled = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T {
    vars { x: data }
}
property "q" on T {
    define seen := x != null;
    formula: G(seen -> F seen) && F { x != null };
}
"#,
        )
        .unwrap();
        // `seen` and the literal `{ x != null }` are the same condition:
        // one proposition.
        assert_eq!(compiled.properties[0].props.len(), 1);
    }

    #[test]
    fn unknown_names_are_spanned() {
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T {
    vars { x: data }
    service S { pre: y == null; post: true; }
}
"#,
        )
        .unwrap_err();
        assert_eq!((err.span.line, err.span.column), (6, 22));
        assert!(err.message.contains("unknown variable `y`"), "{err}");
    }

    #[test]
    fn reserved_words_cannot_be_declared() {
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T { vars { true: data } }
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("reserved word"), "{err}");
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T { vars { x: data } }
property "q" on T {
    define close := x == "a";
    formula: G close(T);
}
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("reserved word"), "{err}");
    }

    #[test]
    fn duplicate_property_names_are_rejected() {
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T { vars { x: data } }
property "q" on T { formula: G !{ x == "a" }; }
property "q" on T { formula: F { x == "b" }; }
"#,
        )
        .unwrap_err();
        assert_eq!(err.span.line, 6);
        assert!(err.message.contains("duplicate property"), "{err}");
    }

    #[test]
    fn root_opening_clause_is_rejected() {
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T {
    vars { x: data }
    opening: x == null;
}
"#,
        )
        .unwrap_err();
        assert!(
            err.message.contains("root task has a fixed opening"),
            "{err}"
        );
    }

    #[test]
    fn invalid_lowered_specs_are_reported_at_the_header() {
        // A service with an update must propagate exactly the inputs; the
        // violation is only caught by the model-level validation.
        let err = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task T {
    vars { x: data, y: data }
    artifact POOL(x);
    service S {
        pre: true;
        post: true;
        propagate y;
        insert POOL(x);
    }
}
"#,
        )
        .unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.message.contains("invalid"), "{err}");
    }

    #[test]
    fn children_wire_through_the_same_name_convention() {
        let compiled = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task Root {
    vars { item: id(R), verdict: data }
    service seed { pre: item == null; post: item != null; }
}
task Review child of Root {
    vars { item: id(R), verdict: data }
    inputs { item }
    outputs { verdict }
    opening: item != null;
    closing: verdict != null;
    service judge { pre: true; post: verdict == "ok"; propagate item; }
}
init: item == null && verdict == null;
"#,
        )
        .unwrap();
        let spec = &compiled.spec;
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(
            spec.tasks[1].opening.input_map,
            vec![(VarId::new(0), VarId::new(0))]
        );
        assert_eq!(
            spec.tasks[1].closing.output_map,
            vec![(VarId::new(1), VarId::new(1))]
        );
    }

    #[test]
    fn explicit_io_mappings_resolve() {
        let compiled = compile(
            r#"
spec "p";
schema { relation R(a: data); }
task Root {
    vars { holder: id(R), outcome: data }
    service seed { pre: holder == null; post: holder != null; }
}
task Inspect child of Root {
    vars { holder: id(R), report: data }
    inputs { holder }
    outputs { report -> outcome }
    opening: holder != null;
    closing: report != null;
    service visit { pre: true; post: report == "ok"; propagate holder; }
}
"#,
        )
        .unwrap();
        assert_eq!(
            compiled.spec.tasks[1].closing.output_map,
            vec![(VarId::new(1), VarId::new(1))]
        );
    }
}
