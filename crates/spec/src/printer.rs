//! Canonical pretty-printer of the `.has` language (`verifas fmt`).
//!
//! The printer emits one canonical layout: four-space indentation, one
//! declaration per line, and minimal parentheses (re-inserted from the
//! tree shape by operator precedence).  Printing is *round-trip exact*:
//! reparsing the output yields the same AST (up to spans) — the seeded
//! round-trip fuzz test pins this against printer/parser drift — and
//! printing is idempotent.

use crate::ast::*;

/// Render a parsed specification in canonical formatting.
pub fn format_spec(file: &SpecFile) -> String {
    let mut out = String::new();
    let p = &mut out;
    line(p, 0, &format!("spec {};", quoted(&file.name)));
    blank(p);
    line(p, 0, "schema {");
    for rel in &file.relations {
        let attrs: Vec<String> = rel
            .attrs
            .iter()
            .map(|a| match &a.kind {
                AttrKindDecl::Data => format!("{}: data", a.name.name),
                AttrKindDecl::Ref(target) => format!("{}: ref {}", a.name.name, target.name),
            })
            .collect();
        line(
            p,
            1,
            &format!("relation {}({});", rel.name.name, attrs.join(", ")),
        );
    }
    line(p, 0, "}");
    for task in &file.tasks {
        blank(p);
        print_task(p, task);
    }
    if let Some(init) = &file.init {
        blank(p);
        line(p, 0, &format!("init: {};", cond(init, COND_TOP)));
    }
    for prop in &file.properties {
        blank(p);
        print_property(p, prop);
    }
    out
}

fn print_task(p: &mut String, task: &TaskDecl) {
    match &task.parent {
        None => line(p, 0, &format!("task {} {{", task.name.name)),
        Some(parent) => line(
            p,
            0,
            &format!("task {} child of {} {{", task.name.name, parent.name),
        ),
    }
    if !task.vars.is_empty() {
        line(p, 1, "vars {");
        for (i, v) in task.vars.iter().enumerate() {
            let comma = if i + 1 < task.vars.len() { "," } else { "" };
            line(p, 2, &format!("{}: {}{comma}", v.name.name, typ(&v.typ)));
        }
        line(p, 1, "}");
    }
    for (keyword, pairs) in [("inputs", &task.inputs), ("outputs", &task.outputs)] {
        if !pairs.is_empty() {
            let rendered: Vec<String> = pairs
                .iter()
                .map(|pair| match &pair.parent {
                    None => pair.child.name.clone(),
                    Some(parent) => format!("{} -> {}", pair.child.name, parent.name),
                })
                .collect();
            line(p, 1, &format!("{keyword} {{ {} }}", rendered.join(", ")));
        }
    }
    for artifact in &task.artifacts {
        let columns: Vec<&str> = artifact.columns.iter().map(|c| c.name.as_str()).collect();
        line(
            p,
            1,
            &format!("artifact {}({});", artifact.name.name, columns.join(", ")),
        );
    }
    if let Some(c) = &task.opening {
        line(p, 1, &format!("opening: {};", cond(c, COND_TOP)));
    }
    if let Some(c) = &task.closing {
        line(p, 1, &format!("closing: {};", cond(c, COND_TOP)));
    }
    for svc in &task.services {
        line(p, 1, &format!("service {} {{", svc.name.name));
        line(p, 2, &format!("pre: {};", cond(&svc.pre, COND_TOP)));
        line(p, 2, &format!("post: {};", cond(&svc.post, COND_TOP)));
        if !svc.propagate.is_empty() {
            let vars: Vec<&str> = svc.propagate.iter().map(|v| v.name.as_str()).collect();
            line(p, 2, &format!("propagate {};", vars.join(", ")));
        }
        if let Some(update) = &svc.update {
            let vars: Vec<&str> = update.vars.iter().map(|v| v.name.as_str()).collect();
            let verb = if update.insert { "insert" } else { "retrieve" };
            line(
                p,
                2,
                &format!("{verb} {}({});", update.rel.name, vars.join(", ")),
            );
        }
        line(p, 1, "}");
    }
    line(p, 0, "}");
}

fn print_property(p: &mut String, prop: &PropertyDecl) {
    line(
        p,
        0,
        &format!("property {} on {} {{", quoted(&prop.name), prop.task.name),
    );
    if !prop.foralls.is_empty() {
        let decls: Vec<String> = prop
            .foralls
            .iter()
            .map(|v| format!("{}: {}", v.name.name, typ(&v.typ)))
            .collect();
        line(p, 1, &format!("forall {};", decls.join(", ")));
    }
    for define in &prop.defines {
        line(
            p,
            1,
            &format!(
                "define {} := {};",
                define.name.name,
                cond(&define.cond, COND_TOP)
            ),
        );
    }
    match &prop.body {
        PropertyBody::Formula(f) => line(p, 1, &format!("formula: {};", ltl(f, LTL_TOP))),
        PropertyBody::Template { name, phi, psi, .. } => {
            let mut text = format!("template {}", quoted(name));
            let mut args = Vec::new();
            if let Some(a) = phi {
                args.push(format!("phi := {}", atom(a)));
            }
            if let Some(a) = psi {
                args.push(format!("psi := {}", atom(a)));
            }
            if !args.is_empty() {
                text.push_str(&format!(" with {}", args.join(", ")));
            }
            text.push(';');
            line(p, 1, &text);
        }
    }
    line(p, 0, "}");
}

fn typ(t: &TypeDecl) -> String {
    match t {
        TypeDecl::Data => "data".into(),
        TypeDecl::Id(rel) => format!("id({})", rel.name),
    }
}

fn quoted(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn term(t: &TermExpr) -> String {
    match t {
        TermExpr::Null(_) => "null".into(),
        TermExpr::Str(s, _) => quoted(s),
        TermExpr::Int(i, _) => i.to_string(),
        TermExpr::Var(ident) => ident.name.clone(),
    }
}

// Condition precedence contexts, loosest (top) to tightest.
const COND_TOP: u8 = 0; // `->` allowed unparenthesized
const COND_OR: u8 = 1;
const COND_AND: u8 = 2;
const COND_NOT: u8 = 3;

fn cond_level(c: &CondExpr) -> u8 {
    match c {
        CondExpr::Implies(..) => 0,
        CondExpr::Or(_) => 1,
        CondExpr::And(_) => 2,
        CondExpr::Not(..) => 3,
        _ => 4,
    }
}

fn cond(c: &CondExpr, context: u8) -> String {
    let text = match c {
        CondExpr::True(_) => "true".into(),
        CondExpr::False(_) => "false".into(),
        CondExpr::Cmp { left, eq, right } => format!(
            "{} {} {}",
            term(left),
            if *eq { "==" } else { "!=" },
            term(right)
        ),
        CondExpr::Rel { rel, args } => {
            let args: Vec<String> = args.iter().map(term).collect();
            format!("{}({})", rel.name, args.join(", "))
        }
        CondExpr::Not(inner, _) => format!("!{}", cond(inner, COND_NOT + 1)),
        CondExpr::And(parts) => {
            let parts: Vec<String> = parts.iter().map(|part| cond(part, COND_AND + 1)).collect();
            parts.join(" && ")
        }
        CondExpr::Or(parts) => {
            let parts: Vec<String> = parts.iter().map(|part| cond(part, COND_OR + 1)).collect();
            parts.join(" || ")
        }
        // `->` is right-associative: the left side must bind tighter, the
        // right side may be another implication.
        CondExpr::Implies(a, b) => format!("{} -> {}", cond(a, COND_OR), cond(b, COND_TOP)),
    };
    if cond_level(c) < context {
        format!("({text})")
    } else {
        text
    }
}

// LTL precedence contexts, loosest to tightest.
const LTL_TOP: u8 = 0; // `->`
const LTL_OR: u8 = 1;
const LTL_AND: u8 = 2;
const LTL_UNTIL: u8 = 3;
const LTL_UNARY: u8 = 4;

fn ltl_level(f: &LtlExpr) -> u8 {
    match f {
        LtlExpr::Implies(..) => 0,
        LtlExpr::Or(..) => 1,
        LtlExpr::And(..) => 2,
        LtlExpr::Until(..) | LtlExpr::Release(..) => 3,
        LtlExpr::Not(..) | LtlExpr::Next(..) | LtlExpr::Globally(..) | LtlExpr::Eventually(..) => 4,
        _ => 5,
    }
}

fn ltl(f: &LtlExpr, context: u8) -> String {
    let text = match f {
        LtlExpr::True(_) => "true".into(),
        LtlExpr::False(_) => "false".into(),
        LtlExpr::Atom(a) => atom(a),
        LtlExpr::Not(inner, _) => format!("!{}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Globally(inner, _) => format!("G {}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Eventually(inner, _) => format!("F {}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Next(inner, _) => format!("X {}", ltl(inner, LTL_UNARY + 1)),
        // Right-associative binaries: left child binds tighter, right child
        // may repeat the operator.
        LtlExpr::And(a, b) => format!("{} && {}", ltl(a, LTL_AND + 1), ltl(b, LTL_AND)),
        LtlExpr::Or(a, b) => format!("{} || {}", ltl(a, LTL_OR + 1), ltl(b, LTL_OR)),
        LtlExpr::Implies(a, b) => format!("{} -> {}", ltl(a, LTL_OR), ltl(b, LTL_TOP)),
        LtlExpr::Until(a, b) => format!("{} U {}", ltl(a, LTL_UNTIL + 1), ltl(b, LTL_UNTIL)),
        LtlExpr::Release(a, b) => format!("{} R {}", ltl(a, LTL_UNTIL + 1), ltl(b, LTL_UNTIL)),
    };
    if ltl_level(f) < context {
        format!("({text})")
    } else {
        text
    }
}

fn atom(a: &AtomExpr) -> String {
    match a {
        AtomExpr::Cond(c, _) => format!("{{ {} }}", cond(c, COND_TOP)),
        AtomExpr::Open(task) => format!("open({})", task.name),
        AtomExpr::Close(task) => format!("close({})", task.name),
        AtomExpr::Did(task, service) => format!("did({}.{})", task.name, service.name),
        AtomExpr::Alias(ident) => ident.name.clone(),
    }
}

fn line(out: &mut String, indent: usize, text: &str) {
    for _ in 0..indent {
        out.push_str("    ");
    }
    out.push_str(text);
    out.push('\n');
}

fn blank(out: &mut String) {
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn printing_is_idempotent_and_round_trips() {
        let source = r#"
spec "demo";
schema { relation R(a: data, b: ref R2); relation R2(c: data); }
task Root {
    vars { x: data, y: id(R) }
    artifact POOL(x, y);
    service S {
        pre: ((x == null)) || x == "a" && x != "b";
        post: (x == "a" -> R(y, x, y)) -> x == "c";
        propagate y;
        insert POOL(x, y);
    }
}
init: x == null;
property "p" on Root {
    forall g: data;
    define bad := x == g && x != null;
    formula: G(bad -> (!bad U { x == "ok" }) && X F bad);
}
property "t" on Root {
    template "G phi" with phi := { x == "Bad" };
}
"#;
        let first = parse(source).unwrap();
        let printed = format_spec(&first);
        let reparsed = parse(&printed).unwrap();
        let mut a = first.clone();
        let mut b = reparsed.clone();
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b, "printed text must reparse to the same tree");
        // Idempotence: formatting the formatted text changes nothing.
        assert_eq!(format_spec(&reparsed), printed);
    }

    #[test]
    fn minimal_parens_are_preserved_where_needed() {
        let source = r#"
spec "parens";
schema { relation R(a: data); }
task T {
    vars { x: data }
    service S { pre: !(x == "a" && x == "b"); post: (x == "a" || x == "b") && x != "c"; }
}
"#;
        let file = parse(source).unwrap();
        let printed = format_spec(&file);
        assert!(printed.contains("!(x == \"a\" && x == \"b\")"));
        assert!(printed.contains("(x == \"a\" || x == \"b\") && x != \"c\""));
        let reparsed = parse(&printed).unwrap();
        let mut a = file;
        let mut b = reparsed;
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b);
    }
}
