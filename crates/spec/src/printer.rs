//! Canonical pretty-printer of the `.has` language (`verifas fmt`).
//!
//! The printer emits one canonical layout: four-space indentation, one
//! declaration per line, and minimal parentheses (re-inserted from the
//! tree shape by operator precedence).  Printing is *round-trip exact*:
//! reparsing the output yields the same AST (up to spans) — the seeded
//! round-trip fuzz test pins this against printer/parser drift — and
//! printing is idempotent.
//!
//! `//` comments survive formatting: [`format_spec_with_comments`]
//! takes the comments the lexer collected from the original source and
//! re-anchors each one against the canonical layout.  A comment that
//! trailed a declaration trails the same declaration's canonical line;
//! a standalone comment is emitted, at the canonical indent, before the
//! first declaration that originally followed it.  No comment is ever
//! dropped — anything left unanchored (e.g. trailing the final `}`)
//! flushes at the end of the file.

use crate::ast::*;
use crate::lexer::Comment;

/// Render a parsed specification in canonical formatting (comments,
/// if the tree came from source text, are dropped — use
/// [`format_spec_with_comments`] or `format_source` to keep them).
pub fn format_spec(file: &SpecFile) -> String {
    format_spec_with_comments(file, &[])
}

/// Render a parsed specification in canonical formatting, re-anchoring
/// the given source comments (see [`crate::lexer::collect_comments`]).
pub fn format_spec_with_comments(file: &SpecFile, comments: &[Comment]) -> String {
    let mut p = Printer {
        out: String::new(),
        comments,
        next: 0,
    };
    p.line(0, &format!("spec {};", quoted(&file.name)), file.span.line);
    p.blank();
    p.line(0, "schema {", 0);
    for rel in &file.relations {
        let attrs: Vec<String> = rel
            .attrs
            .iter()
            .map(|a| match &a.kind {
                AttrKindDecl::Data => format!("{}: data", a.name.name),
                AttrKindDecl::Ref(target) => format!("{}: ref {}", a.name.name, target.name),
            })
            .collect();
        p.line(
            1,
            &format!("relation {}({});", rel.name.name, attrs.join(", ")),
            rel.name.span.line,
        );
    }
    p.line(0, "}", 0);
    for task in &file.tasks {
        p.blank();
        print_task(&mut p, task);
    }
    if let Some(init) = &file.init {
        p.blank();
        p.line(
            0,
            &format!("init: {};", cond(init, COND_TOP)),
            init.span().line,
        );
    }
    for prop in &file.properties {
        p.blank();
        print_property(&mut p, prop);
    }
    p.finish()
}

/// The emitter: canonical lines interleaved with re-anchored comments.
struct Printer<'a> {
    out: String,
    comments: &'a [Comment],
    /// Index of the first comment not yet emitted.
    next: usize,
}

impl Printer<'_> {
    /// Emit one canonical line.  `anchor` is the 1-based source line of
    /// the construct being printed (0 for structural lines — braces,
    /// block keywords — that have no span of their own).  Standalone
    /// comments from before the anchor are flushed first at this line's
    /// indent; a comment that trailed the anchor line in the source is
    /// appended to this line.
    fn line(&mut self, indent: usize, text: &str, anchor: u32) {
        if anchor != 0 {
            while self
                .comments
                .get(self.next)
                .is_some_and(|c| c.line < anchor)
            {
                let comment = &self.comments[self.next];
                self.next += 1;
                self.push_indent(indent);
                self.out.push_str(&rendered(comment));
                self.out.push('\n');
            }
        }
        self.push_indent(indent);
        self.out.push_str(text);
        if anchor != 0
            && self
                .comments
                .get(self.next)
                .is_some_and(|c| c.line == anchor && !c.own_line)
        {
            self.out.push(' ');
            self.out.push_str(&rendered(&self.comments[self.next]));
            self.next += 1;
        }
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn push_indent(&mut self, indent: usize) {
        for _ in 0..indent {
            self.out.push_str("    ");
        }
    }

    /// Flush any comments no construct claimed (e.g. after the last
    /// declaration) and return the finished text.
    fn finish(mut self) -> String {
        while self.next < self.comments.len() {
            let comment = &self.comments[self.next];
            self.next += 1;
            self.out.push_str(&rendered(comment));
            self.out.push('\n');
        }
        self.out
    }
}

/// A comment in canonical form: `// text`, or a bare `//` when empty.
fn rendered(comment: &Comment) -> String {
    if comment.text.is_empty() {
        "//".to_owned()
    } else {
        format!("// {}", comment.text)
    }
}

fn print_task(p: &mut Printer<'_>, task: &TaskDecl) {
    let header = match &task.parent {
        None => format!("task {} {{", task.name.name),
        Some(parent) => format!("task {} child of {} {{", task.name.name, parent.name),
    };
    p.line(0, &header, task.name.span.line);
    if !task.vars.is_empty() {
        p.line(1, "vars {", 0);
        for (i, v) in task.vars.iter().enumerate() {
            let comma = if i + 1 < task.vars.len() { "," } else { "" };
            p.line(
                2,
                &format!("{}: {}{comma}", v.name.name, typ(&v.typ)),
                v.name.span.line,
            );
        }
        p.line(1, "}", 0);
    }
    for (keyword, pairs) in [("inputs", &task.inputs), ("outputs", &task.outputs)] {
        if !pairs.is_empty() {
            let rendered: Vec<String> = pairs
                .iter()
                .map(|pair| match &pair.parent {
                    None => pair.child.name.clone(),
                    Some(parent) => format!("{} -> {}", pair.child.name, parent.name),
                })
                .collect();
            p.line(
                1,
                &format!("{keyword} {{ {} }}", rendered.join(", ")),
                pairs[0].child.span.line,
            );
        }
    }
    for artifact in &task.artifacts {
        let columns: Vec<&str> = artifact.columns.iter().map(|c| c.name.as_str()).collect();
        p.line(
            1,
            &format!("artifact {}({});", artifact.name.name, columns.join(", ")),
            artifact.name.span.line,
        );
    }
    if let Some(c) = &task.opening {
        p.line(
            1,
            &format!("opening: {};", cond(c, COND_TOP)),
            c.span().line,
        );
    }
    if let Some(c) = &task.closing {
        p.line(
            1,
            &format!("closing: {};", cond(c, COND_TOP)),
            c.span().line,
        );
    }
    for svc in &task.services {
        p.line(
            1,
            &format!("service {} {{", svc.name.name),
            svc.name.span.line,
        );
        p.line(
            2,
            &format!("pre: {};", cond(&svc.pre, COND_TOP)),
            svc.pre.span().line,
        );
        p.line(
            2,
            &format!("post: {};", cond(&svc.post, COND_TOP)),
            svc.post.span().line,
        );
        if !svc.propagate.is_empty() {
            let vars: Vec<&str> = svc.propagate.iter().map(|v| v.name.as_str()).collect();
            p.line(
                2,
                &format!("propagate {};", vars.join(", ")),
                svc.propagate[0].span.line,
            );
        }
        if let Some(update) = &svc.update {
            let vars: Vec<&str> = update.vars.iter().map(|v| v.name.as_str()).collect();
            let verb = if update.insert { "insert" } else { "retrieve" };
            p.line(
                2,
                &format!("{verb} {}({});", update.rel.name, vars.join(", ")),
                update.rel.span.line,
            );
        }
        p.line(1, "}", 0);
    }
    p.line(0, "}", 0);
}

fn print_property(p: &mut Printer<'_>, prop: &PropertyDecl) {
    p.line(
        0,
        &format!("property {} on {} {{", quoted(&prop.name), prop.task.name),
        prop.span.line,
    );
    if !prop.foralls.is_empty() {
        let decls: Vec<String> = prop
            .foralls
            .iter()
            .map(|v| format!("{}: {}", v.name.name, typ(&v.typ)))
            .collect();
        p.line(
            1,
            &format!("forall {};", decls.join(", ")),
            prop.foralls[0].name.span.line,
        );
    }
    for define in &prop.defines {
        p.line(
            1,
            &format!(
                "define {} := {};",
                define.name.name,
                cond(&define.cond, COND_TOP)
            ),
            define.name.span.line,
        );
    }
    match &prop.body {
        PropertyBody::Formula(f) => {
            p.line(1, &format!("formula: {};", ltl(f, LTL_TOP)), f.span().line)
        }
        PropertyBody::Template {
            name,
            phi,
            psi,
            span,
        } => {
            let mut text = format!("template {}", quoted(name));
            let mut args = Vec::new();
            if let Some(a) = phi {
                args.push(format!("phi := {}", atom(a)));
            }
            if let Some(a) = psi {
                args.push(format!("psi := {}", atom(a)));
            }
            if !args.is_empty() {
                text.push_str(&format!(" with {}", args.join(", ")));
            }
            text.push(';');
            p.line(1, &text, span.line);
        }
    }
    p.line(0, "}", 0);
}

fn typ(t: &TypeDecl) -> String {
    match t {
        TypeDecl::Data => "data".into(),
        TypeDecl::Id(rel) => format!("id({})", rel.name),
    }
}

fn quoted(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn term(t: &TermExpr) -> String {
    match t {
        TermExpr::Null(_) => "null".into(),
        TermExpr::Str(s, _) => quoted(s),
        TermExpr::Int(i, _) => i.to_string(),
        TermExpr::Var(ident) => ident.name.clone(),
    }
}

// Condition precedence contexts, loosest (top) to tightest.
const COND_TOP: u8 = 0; // `->` allowed unparenthesized
const COND_OR: u8 = 1;
const COND_AND: u8 = 2;
const COND_NOT: u8 = 3;

fn cond_level(c: &CondExpr) -> u8 {
    match c {
        CondExpr::Implies(..) => 0,
        CondExpr::Or(_) => 1,
        CondExpr::And(_) => 2,
        CondExpr::Not(..) => 3,
        _ => 4,
    }
}

fn cond(c: &CondExpr, context: u8) -> String {
    let text = match c {
        CondExpr::True(_) => "true".into(),
        CondExpr::False(_) => "false".into(),
        CondExpr::Cmp { left, eq, right } => format!(
            "{} {} {}",
            term(left),
            if *eq { "==" } else { "!=" },
            term(right)
        ),
        CondExpr::Rel { rel, args } => {
            let args: Vec<String> = args.iter().map(term).collect();
            format!("{}({})", rel.name, args.join(", "))
        }
        CondExpr::Not(inner, _) => format!("!{}", cond(inner, COND_NOT + 1)),
        CondExpr::And(parts) => {
            let parts: Vec<String> = parts.iter().map(|part| cond(part, COND_AND + 1)).collect();
            parts.join(" && ")
        }
        CondExpr::Or(parts) => {
            let parts: Vec<String> = parts.iter().map(|part| cond(part, COND_OR + 1)).collect();
            parts.join(" || ")
        }
        // `->` is right-associative: the left side must bind tighter, the
        // right side may be another implication.
        CondExpr::Implies(a, b) => format!("{} -> {}", cond(a, COND_OR), cond(b, COND_TOP)),
    };
    if cond_level(c) < context {
        format!("({text})")
    } else {
        text
    }
}

// LTL precedence contexts, loosest to tightest.
const LTL_TOP: u8 = 0; // `->`
const LTL_OR: u8 = 1;
const LTL_AND: u8 = 2;
const LTL_UNTIL: u8 = 3;
const LTL_UNARY: u8 = 4;

fn ltl_level(f: &LtlExpr) -> u8 {
    match f {
        LtlExpr::Implies(..) => 0,
        LtlExpr::Or(..) => 1,
        LtlExpr::And(..) => 2,
        LtlExpr::Until(..) | LtlExpr::Release(..) => 3,
        LtlExpr::Not(..) | LtlExpr::Next(..) | LtlExpr::Globally(..) | LtlExpr::Eventually(..) => 4,
        _ => 5,
    }
}

fn ltl(f: &LtlExpr, context: u8) -> String {
    let text = match f {
        LtlExpr::True(_) => "true".into(),
        LtlExpr::False(_) => "false".into(),
        LtlExpr::Atom(a) => atom(a),
        LtlExpr::Not(inner, _) => format!("!{}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Globally(inner, _) => format!("G {}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Eventually(inner, _) => format!("F {}", ltl(inner, LTL_UNARY + 1)),
        LtlExpr::Next(inner, _) => format!("X {}", ltl(inner, LTL_UNARY + 1)),
        // Right-associative binaries: left child binds tighter, right child
        // may repeat the operator.
        LtlExpr::And(a, b) => format!("{} && {}", ltl(a, LTL_AND + 1), ltl(b, LTL_AND)),
        LtlExpr::Or(a, b) => format!("{} || {}", ltl(a, LTL_OR + 1), ltl(b, LTL_OR)),
        LtlExpr::Implies(a, b) => format!("{} -> {}", ltl(a, LTL_OR), ltl(b, LTL_TOP)),
        LtlExpr::Until(a, b) => format!("{} U {}", ltl(a, LTL_UNTIL + 1), ltl(b, LTL_UNTIL)),
        LtlExpr::Release(a, b) => format!("{} R {}", ltl(a, LTL_UNTIL + 1), ltl(b, LTL_UNTIL)),
    };
    if ltl_level(f) < context {
        format!("({text})")
    } else {
        text
    }
}

fn atom(a: &AtomExpr) -> String {
    match a {
        AtomExpr::Cond(c, _) => format!("{{ {} }}", cond(c, COND_TOP)),
        AtomExpr::Open(task) => format!("open({})", task.name),
        AtomExpr::Close(task) => format!("close({})", task.name),
        AtomExpr::Did(task, service) => format!("did({}.{})", task.name, service.name),
        AtomExpr::Alias(ident) => ident.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn printing_is_idempotent_and_round_trips() {
        let source = r#"
spec "demo";
schema { relation R(a: data, b: ref R2); relation R2(c: data); }
task Root {
    vars { x: data, y: id(R) }
    artifact POOL(x, y);
    service S {
        pre: ((x == null)) || x == "a" && x != "b";
        post: (x == "a" -> R(y, x, y)) -> x == "c";
        propagate y;
        insert POOL(x, y);
    }
}
init: x == null;
property "p" on Root {
    forall g: data;
    define bad := x == g && x != null;
    formula: G(bad -> (!bad U { x == "ok" }) && X F bad);
}
property "t" on Root {
    template "G phi" with phi := { x == "Bad" };
}
"#;
        let first = parse(source).unwrap();
        let printed = format_spec(&first);
        let reparsed = parse(&printed).unwrap();
        let mut a = first.clone();
        let mut b = reparsed.clone();
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b, "printed text must reparse to the same tree");
        // Idempotence: formatting the formatted text changes nothing.
        assert_eq!(format_spec(&reparsed), printed);
    }

    #[test]
    fn comments_survive_formatting_golden() {
        let source = r#"// file header: a demo spec
spec "demo"; // trailing the spec line
schema {
    // R holds one data column
  relation R( a: data );
}
task Root {
    vars { x: data } // the only variable
    service S {
        // the precondition is trivial
        pre:   true;
        post: x == "done";
    }
}
// properties follow
property "p" on Root {
    formula: G !{ x == "bad" }; // never bad
}
// trailing the end of file
"#;
        let expected = r#"// file header: a demo spec
spec "demo"; // trailing the spec line

schema {
    // R holds one data column
    relation R(a: data);
}

task Root {
    vars {
        x: data // the only variable
    }
    service S {
        // the precondition is trivial
        pre: true;
        post: x == "done";
    }
}

// properties follow
property "p" on Root {
    formula: G (!{ x == "bad" }); // never bad
}
// trailing the end of file
"#;
        let file = parse(source).unwrap();
        let comments = crate::lexer::collect_comments(source);
        let printed = format_spec_with_comments(&file, &comments);
        assert_eq!(printed, expected);
        // Idempotent: reformatting the commented output changes nothing.
        let again = format_spec_with_comments(
            &parse(&printed).unwrap(),
            &crate::lexer::collect_comments(&printed),
        );
        assert_eq!(again, printed);
        // And the commented output still reparses to the same tree.
        let mut a = file;
        let mut b = parse(&printed).unwrap();
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b);
    }

    #[test]
    fn no_comment_is_ever_dropped() {
        // Comments in awkward places: inside blocks the printer folds
        // onto one line, trailing closers, and between reordered items.
        let source = r#"spec "x";
schema { relation R(a: data); }
task T {
    artifact POOL(x); // artifact first: the printer reorders it after vars
    vars {
        // standalone inside vars
        x: data
    }
    service S {
        pre: true;
        post: x == "a";
    } // trailing the service closer
} // trailing the task closer
"#;
        let file = parse(source).unwrap();
        let comments = crate::lexer::collect_comments(source);
        let printed = format_spec_with_comments(&file, &comments);
        for comment in &comments {
            assert!(
                printed.contains(&comment.text),
                "comment {:?} was dropped:\n{printed}",
                comment.text
            );
        }
        let again = format_spec_with_comments(
            &parse(&printed).unwrap(),
            &crate::lexer::collect_comments(&printed),
        );
        assert_eq!(again, printed, "commented formatting must be idempotent");
    }

    #[test]
    fn minimal_parens_are_preserved_where_needed() {
        let source = r#"
spec "parens";
schema { relation R(a: data); }
task T {
    vars { x: data }
    service S { pre: !(x == "a" && x == "b"); post: (x == "a" || x == "b") && x != "c"; }
}
"#;
        let file = parse(source).unwrap();
        let printed = format_spec(&file);
        assert!(printed.contains("!(x == \"a\" && x == \"b\")"));
        assert!(printed.contains("(x == \"a\" || x == \"b\") && x != \"c\""));
        let reparsed = parse(&printed).unwrap();
        let mut a = file;
        let mut b = reparsed;
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b);
    }
}
