//! The abstract syntax tree of the `.has` specification language.
//!
//! The AST mirrors the surface grammar (see the crate docs for a sketch),
//! not the lowered `verifas-model` structures: parenthesization survives as
//! tree shape, conditions stay name-based, and every name carries the span
//! of its first character so the resolver can point diagnostics at the
//! offending construct.  [`crate::printer`] prints this tree back to
//! canonical text and [`mod@crate::resolve`] lowers it to a
//! `verifas_model::HasSpec` plus named LTL-FO properties.
//!
//! All nodes implement `PartialEq`; [`SpecFile::strip_spans`] zeroes every
//! span so round-trip tests can compare trees structurally.

use verifas_core::SourceSpan;

/// An identifier with the span of its first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name.
    pub name: String,
    /// Where it appeared.
    pub span: SourceSpan,
}

impl Ident {
    /// An identifier with a default (zero) span, for generated trees.
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: SourceSpan::default(),
        }
    }
}

/// A whole `.has` source file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFile {
    /// The specification name (`spec "name";`).
    pub name: String,
    /// Span of the `spec` keyword (anchor for file-level diagnostics).
    pub span: SourceSpan,
    /// Database relations, in declaration order.
    pub relations: Vec<RelationDecl>,
    /// Tasks, in declaration order; the first is the root.
    pub tasks: Vec<TaskDecl>,
    /// The global pre-condition (`init: …;`), if any.
    pub init: Option<CondExpr>,
    /// Named LTL-FO properties.
    pub properties: Vec<PropertyDecl>,
}

/// `relation NAME(attr: data, attr: ref OTHER);`
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: Ident,
    /// Non-`ID` attributes, in declaration order.
    pub attrs: Vec<AttrDecl>,
}

/// One attribute of a database relation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: Ident,
    /// `data`, or `ref TARGET` for a foreign key.
    pub kind: AttrKindDecl,
}

/// The kind of a database attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKindDecl {
    /// A data attribute (`data`).
    Data,
    /// A foreign key referencing another relation (`ref TARGET`).
    Ref(Ident),
}

/// The type of an artifact variable or property-global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDecl {
    /// `data`
    Data,
    /// `id(RELATION)`
    Id(Ident),
}

/// `name: type`
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: Ident,
    /// Variable type.
    pub typ: TypeDecl,
}

/// One entry of an `inputs { … }` / `outputs { … }` block: a child
/// variable, optionally mapped to a differently-named parent variable.
#[derive(Debug, Clone, PartialEq)]
pub struct IoPair {
    /// The child-side variable.
    pub child: Ident,
    /// The parent-side variable (`child -> parent`); `None` uses the
    /// paper's same-name convention.
    pub parent: Option<Ident>,
}

/// `artifact NAME(var, …);` — an artifact relation whose columns mirror
/// the named task variables (names and types).
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactDecl {
    /// Artifact-relation name.
    pub name: Ident,
    /// Task variables providing the column layout.
    pub columns: Vec<Ident>,
}

/// `insert REL(vars…);` / `retrieve REL(vars…);` inside a service.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateDecl {
    /// `true` for an insertion, `false` for a retrieval.
    pub insert: bool,
    /// The artifact relation.
    pub rel: Ident,
    /// The tuple variables, in column order.
    pub vars: Vec<Ident>,
}

/// An internal service declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDecl {
    /// Service name.
    pub name: Ident,
    /// Pre-condition over the task's variables.
    pub pre: CondExpr,
    /// Post-condition over the task's (next) variables.
    pub post: CondExpr,
    /// `propagate a, b;` — variables preserved by the transition.
    pub propagate: Vec<Ident>,
    /// The optional artifact-relation update.
    pub update: Option<UpdateDecl>,
}

/// A task declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDecl {
    /// Task name.
    pub name: Ident,
    /// `child of PARENT` — absent exactly for the root (first) task.
    pub parent: Option<Ident>,
    /// Artifact variables, in declaration order.
    pub vars: Vec<VarDecl>,
    /// Input variables (with optional explicit parent mapping).
    pub inputs: Vec<IoPair>,
    /// Output variables (with optional explicit parent mapping).
    pub outputs: Vec<IoPair>,
    /// Artifact relations.
    pub artifacts: Vec<ArtifactDecl>,
    /// Opening condition (over the *parent's* variables).
    pub opening: Option<CondExpr>,
    /// Closing condition (over the task's own variables).
    pub closing: Option<CondExpr>,
    /// Internal services, in declaration order.
    pub services: Vec<ServiceDecl>,
}

/// A term of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum TermExpr {
    /// `null`
    Null(SourceSpan),
    /// A string constant.
    Str(String, SourceSpan),
    /// An integer constant.
    Int(i64, SourceSpan),
    /// A task variable or property-global variable.
    Var(Ident),
}

impl TermExpr {
    /// The term's source position.
    pub fn span(&self) -> SourceSpan {
        match self {
            TermExpr::Null(s) | TermExpr::Str(_, s) | TermExpr::Int(_, s) => *s,
            TermExpr::Var(ident) => ident.span,
        }
    }
}

/// A quantifier-free condition, shaped as written.
#[derive(Debug, Clone, PartialEq)]
pub enum CondExpr {
    /// `true`
    True(SourceSpan),
    /// `false`
    False(SourceSpan),
    /// `left == right` / `left != right`
    Cmp {
        /// Left term.
        left: TermExpr,
        /// `true` for `==`, `false` for `!=`.
        eq: bool,
        /// Right term.
        right: TermExpr,
    },
    /// `REL(key, args…)`
    Rel {
        /// The database relation.
        rel: Ident,
        /// Key term followed by the attribute terms.
        args: Vec<TermExpr>,
    },
    /// `!c`
    Not(Box<CondExpr>, SourceSpan),
    /// `c && c && …` (flat, two or more conjuncts)
    And(Vec<CondExpr>),
    /// `c || c || …` (flat, two or more disjuncts)
    Or(Vec<CondExpr>),
    /// `a -> b` (right-associative)
    Implies(Box<CondExpr>, Box<CondExpr>),
}

impl CondExpr {
    /// The condition's source position (its leftmost token).
    pub fn span(&self) -> SourceSpan {
        match self {
            CondExpr::True(s) | CondExpr::False(s) | CondExpr::Not(_, s) => *s,
            CondExpr::Cmp { left, .. } => left.span(),
            CondExpr::Rel { rel, .. } => rel.span,
            CondExpr::And(cs) | CondExpr::Or(cs) => {
                cs.first().map(CondExpr::span).unwrap_or_default()
            }
            CondExpr::Implies(a, _) => a.span(),
        }
    }
}

/// An atomic proposition of an LTL formula.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomExpr {
    /// `{ condition }` — a condition over the task's variables and the
    /// property's global variables.
    Cond(Box<CondExpr>, SourceSpan),
    /// `open(Task)` — the opening service of a task fired.
    Open(Ident),
    /// `close(Task)` — the closing service of a task fired.
    Close(Ident),
    /// `did(Task.Service)` — an internal service fired.
    Did(Ident, Ident),
    /// A condition alias introduced by `define`.
    Alias(Ident),
}

impl AtomExpr {
    /// The atom's source position.
    pub fn span(&self) -> SourceSpan {
        match self {
            AtomExpr::Cond(_, s) => *s,
            AtomExpr::Open(i) | AtomExpr::Close(i) | AtomExpr::Alias(i) => i.span,
            AtomExpr::Did(t, _) => t.span,
        }
    }
}

/// An LTL formula, shaped as written.
#[derive(Debug, Clone, PartialEq)]
pub enum LtlExpr {
    /// `true`
    True(SourceSpan),
    /// `false`
    False(SourceSpan),
    /// An atomic proposition.
    Atom(AtomExpr),
    /// `!f`
    Not(Box<LtlExpr>, SourceSpan),
    /// `a && b` (right-associative)
    And(Box<LtlExpr>, Box<LtlExpr>),
    /// `a || b` (right-associative)
    Or(Box<LtlExpr>, Box<LtlExpr>),
    /// `a -> b` (right-associative)
    Implies(Box<LtlExpr>, Box<LtlExpr>),
    /// `X f`
    Next(Box<LtlExpr>, SourceSpan),
    /// `G f`
    Globally(Box<LtlExpr>, SourceSpan),
    /// `F f`
    Eventually(Box<LtlExpr>, SourceSpan),
    /// `a U b` (right-associative)
    Until(Box<LtlExpr>, Box<LtlExpr>),
    /// `a R b` (right-associative)
    Release(Box<LtlExpr>, Box<LtlExpr>),
}

impl LtlExpr {
    /// The formula's source position (its leftmost token).
    pub fn span(&self) -> SourceSpan {
        match self {
            LtlExpr::True(s)
            | LtlExpr::False(s)
            | LtlExpr::Not(_, s)
            | LtlExpr::Next(_, s)
            | LtlExpr::Globally(_, s)
            | LtlExpr::Eventually(_, s) => *s,
            LtlExpr::Atom(a) => a.span(),
            LtlExpr::And(a, _)
            | LtlExpr::Or(a, _)
            | LtlExpr::Implies(a, _)
            | LtlExpr::Until(a, _)
            | LtlExpr::Release(a, _) => a.span(),
        }
    }
}

/// `define name := condition;`
#[derive(Debug, Clone, PartialEq)]
pub struct DefineDecl {
    /// The alias name.
    pub name: Ident,
    /// The aliased condition.
    pub cond: CondExpr,
}

/// The body of a property: a free-form formula, or an instantiation of
/// one of the Table-4 templates of `verifas_ltl::templates`.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyBody {
    /// `formula: <ltl>;`
    Formula(LtlExpr),
    /// `template "G phi" with phi = atom, psi = atom;`
    Template {
        /// The template name, as in `verifas_ltl::all_templates`.
        name: String,
        /// Span of the template name.
        span: SourceSpan,
        /// The `phi` placeholder (required for arity ≥ 1).
        phi: Option<AtomExpr>,
        /// The `psi` placeholder (required for arity 2).
        psi: Option<AtomExpr>,
    },
}

/// `property "name" on Task { … }`
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDecl {
    /// The property name.
    pub name: String,
    /// Span of the property name.
    pub span: SourceSpan,
    /// The task whose local runs the property constrains.
    pub task: Ident,
    /// Universally quantified global variables (`forall …;`).
    pub foralls: Vec<VarDecl>,
    /// Condition aliases (`define …;`).
    pub defines: Vec<DefineDecl>,
    /// The property body.
    pub body: PropertyBody,
}

impl SpecFile {
    /// Zero every span in the tree, for structural comparison in
    /// round-trip tests.
    pub fn strip_spans(&mut self) {
        fn ident(i: &mut Ident) {
            i.span = SourceSpan::default();
        }
        fn term(t: &mut TermExpr) {
            match t {
                TermExpr::Null(s) | TermExpr::Str(_, s) | TermExpr::Int(_, s) => {
                    *s = SourceSpan::default()
                }
                TermExpr::Var(i) => ident(i),
            }
        }
        fn cond(c: &mut CondExpr) {
            match c {
                CondExpr::True(s) | CondExpr::False(s) => *s = SourceSpan::default(),
                CondExpr::Cmp { left, right, .. } => {
                    term(left);
                    term(right);
                }
                CondExpr::Rel { rel, args } => {
                    ident(rel);
                    args.iter_mut().for_each(term);
                }
                CondExpr::Not(inner, s) => {
                    *s = SourceSpan::default();
                    cond(inner);
                }
                CondExpr::And(cs) | CondExpr::Or(cs) => cs.iter_mut().for_each(cond),
                CondExpr::Implies(a, b) => {
                    cond(a);
                    cond(b);
                }
            }
        }
        fn atom(a: &mut AtomExpr) {
            match a {
                AtomExpr::Cond(c, s) => {
                    *s = SourceSpan::default();
                    cond(c);
                }
                AtomExpr::Open(i) | AtomExpr::Close(i) | AtomExpr::Alias(i) => ident(i),
                AtomExpr::Did(t, s) => {
                    ident(t);
                    ident(s);
                }
            }
        }
        fn ltl(f: &mut LtlExpr) {
            match f {
                LtlExpr::True(s) | LtlExpr::False(s) => *s = SourceSpan::default(),
                LtlExpr::Atom(a) => atom(a),
                LtlExpr::Not(inner, s)
                | LtlExpr::Next(inner, s)
                | LtlExpr::Globally(inner, s)
                | LtlExpr::Eventually(inner, s) => {
                    *s = SourceSpan::default();
                    ltl(inner);
                }
                LtlExpr::And(a, b)
                | LtlExpr::Or(a, b)
                | LtlExpr::Implies(a, b)
                | LtlExpr::Until(a, b)
                | LtlExpr::Release(a, b) => {
                    ltl(a);
                    ltl(b);
                }
            }
        }
        fn typ(t: &mut TypeDecl) {
            if let TypeDecl::Id(i) = t {
                ident(i)
            }
        }
        self.span = SourceSpan::default();
        for r in &mut self.relations {
            ident(&mut r.name);
            for a in &mut r.attrs {
                ident(&mut a.name);
                if let AttrKindDecl::Ref(target) = &mut a.kind {
                    ident(target);
                }
            }
        }
        for t in &mut self.tasks {
            ident(&mut t.name);
            if let Some(p) = &mut t.parent {
                ident(p);
            }
            for v in &mut t.vars {
                ident(&mut v.name);
                typ(&mut v.typ);
            }
            for io in t.inputs.iter_mut().chain(&mut t.outputs) {
                ident(&mut io.child);
                if let Some(p) = &mut io.parent {
                    ident(p);
                }
            }
            for a in &mut t.artifacts {
                ident(&mut a.name);
                a.columns.iter_mut().for_each(ident);
            }
            if let Some(c) = &mut t.opening {
                cond(c);
            }
            if let Some(c) = &mut t.closing {
                cond(c);
            }
            for svc in &mut t.services {
                ident(&mut svc.name);
                cond(&mut svc.pre);
                cond(&mut svc.post);
                svc.propagate.iter_mut().for_each(ident);
                if let Some(u) = &mut svc.update {
                    ident(&mut u.rel);
                    u.vars.iter_mut().for_each(ident);
                }
            }
        }
        if let Some(c) = &mut self.init {
            cond(c);
        }
        for p in &mut self.properties {
            p.span = SourceSpan::default();
            ident(&mut p.task);
            for v in &mut p.foralls {
                ident(&mut v.name);
                typ(&mut v.typ);
            }
            for d in &mut p.defines {
                ident(&mut d.name);
                cond(&mut d.cond);
            }
            match &mut p.body {
                PropertyBody::Formula(f) => ltl(f),
                PropertyBody::Template { span, phi, psi, .. } => {
                    *span = SourceSpan::default();
                    if let Some(a) = phi {
                        atom(a);
                    }
                    if let Some(a) = psi {
                        atom(a);
                    }
                }
            }
        }
    }
}
