//! # verifas-spec — the textual `.has` specification language
//!
//! This crate is the textual frontend of VERIFAS: it parses `.has` files
//! describing a Hierarchical Artifact System and its LTL-FO properties,
//! and lowers them to the same `verifas_model::HasSpec` /
//! `verifas_ltl::LtlFoProperty` structures the programmatic builders
//! produce — bit-identically, so a workload ported to text verifies with
//! the same verdict, witness and search statistics as its Rust builder.
//!
//! The pipeline is [`parse`] (lexer + recursive-descent parser with
//! line/column spans) → [`fn@resolve`] (name/type resolution and
//! lowering, with spanned diagnostics) → `verifas::Engine`.
//! [`format_spec`] prints the parsed tree back in one canonical layout
//! (`verifas fmt`).
//!
//! ## Grammar sketch
//!
//! ```text
//! file      := 'spec' STRING ';' schema task+ init? property*
//! schema    := 'schema' '{' ('relation' NAME '(' attr (',' attr)* ')' ';')* '}'
//! attr      := NAME ':' ('data' | 'ref' RELATION)
//! task      := 'task' NAME ('child' 'of' PARENT)? '{' item* '}'
//! item      := 'vars' '{' NAME ':' type (',' NAME ':' type)* '}'
//!            | 'inputs' '{' io (',' io)* '}' | 'outputs' '{' io (',' io)* '}'
//!            | 'artifact' NAME '(' VAR (',' VAR)* ')' ';'
//!            | 'opening' ':' cond ';'        // over the parent's variables
//!            | 'closing' ':' cond ';'        // over the task's own variables
//!            | 'service' NAME '{' 'pre' ':' cond ';' 'post' ':' cond ';'
//!                  ('propagate' VAR (',' VAR)* ';')?
//!                  (('insert' | 'retrieve') REL '(' VAR (',' VAR)* ')' ';')? '}'
//! io        := VAR ('->' PARENTVAR)?          // default: same-name wiring
//! type      := 'data' | 'id' '(' RELATION ')'
//! init      := 'init' ':' cond ';'            // global pre-condition (root vars)
//! property  := 'property' STRING 'on' TASK '{'
//!                  ('forall' NAME ':' type (',' NAME ':' type)* ';')?
//!                  ('define' NAME ':=' cond ';')*
//!                  ('formula' ':' ltl ';'
//!                   | 'template' STRING ('with' ('phi'|'psi') ':=' atom
//!                                        (',' ('phi'|'psi') ':=' atom)*)? ';') '}'
//! cond      := conditions over '==' '!=' 'null' constants, relational atoms
//!              'REL(key, attrs…)', '!', '&&', '||', '->' (right-assoc)
//! ltl       := 'G' 'F' 'X' unary, 'U' 'R' (right-assoc), '!', '&&', '||', '->'
//! atom      := '{' cond '}' | 'open' '(' TASK ')' | 'close' '(' TASK ')'
//!            | 'did' '(' TASK '.' SERVICE ')' | ALIAS
//! ```
//!
//! Comments run `//` to end of line and survive formatting
//! ([`format_source`] re-anchors them).  `template` names are the Table-4
//! rows of `verifas_ltl::all_templates` (e.g. `"G phi"`, `"GF phi"`).
//! Identical atoms share one proposition, assigned in first-occurrence
//! order — exactly how the programmatic properties are written.
//!
//! ## Example
//!
//! ```
//! let source = r#"
//! spec "doc";
//! schema { relation R(a: data); }
//! task Root {
//!     vars { status: data }
//!     service go {
//!         pre: status == null;
//!         post: status == "Done";
//!     }
//! }
//! init: status == null;
//! property "never-broken" on Root {
//!     formula: G !{ status == "Broken" };
//! }
//! "#;
//! let compiled = verifas_spec::compile(source)?;
//! assert_eq!(compiled.spec.name, "doc");
//! let engine = verifas_core::Engine::load(compiled.spec)?;
//! let report = engine.check(&compiled.properties[0])?;
//! assert_eq!(report.outcome, verifas_core::VerificationOutcome::Satisfied);
//! # Ok::<(), verifas_core::VerifasError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod resolve;

pub use ast::SpecFile;
pub use error::SpecError;
pub use lexer::{collect_comments, has_comments, Comment};
pub use parser::parse;
pub use printer::{format_spec, format_spec_with_comments};
pub use resolve::{resolve, CompiledSpec};

/// Parse and lower a `.has` source text in one step.
pub fn compile(source: &str) -> Result<CompiledSpec, SpecError> {
    resolve(&parse(source)?)
}

/// Parse a `.has` source text and render it in canonical formatting.
/// `//` comments survive: each is re-anchored against the canonical
/// layout (trailing comments stay trailing, standalone comments stay
/// before the declaration that followed them).
pub fn format_source(source: &str) -> Result<String, SpecError> {
    let file = parse(source)?;
    if has_comments(source) {
        Ok(format_spec_with_comments(&file, &collect_comments(source)))
    } else {
        Ok(format_spec(&file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_spanned_errors() {
        let err =
            compile("spec \"x\";\nschema { relation R(a: data); }\ntask T { vars { x: id(S) } }")
                .unwrap_err();
        assert_eq!((err.span.line, err.span.column), (3, 23));
        assert!(err.message.contains("unknown relation `S`"), "{err}");
    }

    #[test]
    fn format_source_normalizes_layout() {
        let text = format_source(
            "spec \"x\";  schema { relation R(a: data); } task T { vars { x: data } }",
        )
        .unwrap();
        assert!(text.starts_with("spec \"x\";\n"));
        assert!(text.contains("task T {\n    vars {\n        x: data\n    }\n}\n"));
    }
}
