//! Recursive-descent parser of the `.has` specification language.
//!
//! The parser consumes the token stream of [`crate::lexer`] and produces
//! the [`crate::ast`] tree, stopping at the first error with an exact
//! line/column span.  Operator precedence (loosest to tightest):
//!
//! * conditions — `->` (right-assoc), `||`, `&&`, `!`, atoms;
//! * LTL — `->` (right-assoc), `||`, `&&`, `U` / `R` (right-assoc),
//!   `!` / `G` / `F` / `X`, atoms.
//!
//! `&&` / `||` chains in conditions are collected into flat [`CondExpr::And`] /
//! [`CondExpr::Or`] lists (mirroring `Condition::and` / `Condition::or`,
//! which flatten); in LTL they stay right-nested binary nodes (mirroring
//! `Ltl::and` / `Ltl::or`).

use crate::ast::*;
use crate::error::SpecError;
use crate::lexer::{tokenize, Spanned, Token};
use verifas_core::SourceSpan;

/// Parse a whole `.has` source text into its AST.
pub fn parse(source: &str) -> Result<SpecFile, SpecError> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn span(&self) -> SourceSpan {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Spanned {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(self.span(), message)
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<SourceSpan, SpecError> {
        if *self.peek() == token {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!(
                "expected {} {what}, found {}",
                token.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, SpecError> {
        match self.peek() {
            Token::Ident(_) => {
                let t = self.bump();
                let Token::Ident(name) = t.token else {
                    unreachable!()
                };
                Ok(Ident { name, span: t.span })
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<(String, SourceSpan), SpecError> {
        match self.peek() {
            Token::Str(_) => {
                let t = self.bump();
                let Token::Str(text) = t.token else {
                    unreachable!()
                };
                Ok((text, t.span))
            }
            other => Err(self.error(format!(
                "expected a quoted {what}, found {}",
                other.describe()
            ))),
        }
    }

    /// `true` iff the next token is the identifier `word`.
    fn at_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Ident(name) if name == word)
    }

    fn expect_keyword(&mut self, word: &str) -> Result<SourceSpan, SpecError> {
        if self.at_keyword(word) {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!(
                "expected keyword `{word}`, found {}",
                self.peek().describe()
            )))
        }
    }

    /// Consume the identifier `word` if it is next.
    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.at_keyword(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----- file structure ------------------------------------------------

    fn file(&mut self) -> Result<SpecFile, SpecError> {
        let span = self.expect_keyword("spec")?;
        let (name, _) = self.expect_string("specification name")?;
        self.expect(Token::Semi, "after the specification name")?;
        self.expect_keyword("schema")?;
        self.expect(Token::LBrace, "to open the schema block")?;
        let mut relations = Vec::new();
        while !self.eat(&Token::RBrace) {
            relations.push(self.relation()?);
        }
        let mut tasks = Vec::new();
        while self.at_keyword("task") {
            tasks.push(self.task()?);
        }
        if tasks.is_empty() {
            return Err(self.error(format!(
                "expected at least one `task` after the schema block, found {}",
                self.peek().describe()
            )));
        }
        let init = if self.eat_keyword("init") {
            self.expect(Token::Colon, "after `init`")?;
            let cond = self.condition()?;
            self.expect(Token::Semi, "after the init condition")?;
            Some(cond)
        } else {
            None
        };
        let mut properties = Vec::new();
        while self.at_keyword("property") {
            properties.push(self.property()?);
        }
        if *self.peek() != Token::Eof {
            return Err(self.error(format!(
                "expected `task`, `init`, `property` or end of file, found {}",
                self.peek().describe()
            )));
        }
        Ok(SpecFile {
            name,
            span,
            relations,
            tasks,
            init,
            properties,
        })
    }

    fn relation(&mut self) -> Result<RelationDecl, SpecError> {
        self.expect_keyword("relation")?;
        let name = self.expect_ident("a relation name")?;
        self.expect(Token::LParen, "after the relation name")?;
        let mut attrs = vec![self.attr()?];
        while self.eat(&Token::Comma) {
            attrs.push(self.attr()?);
        }
        self.expect(Token::RParen, "to close the attribute list")?;
        self.expect(Token::Semi, "after the relation declaration")?;
        Ok(RelationDecl { name, attrs })
    }

    fn attr(&mut self) -> Result<AttrDecl, SpecError> {
        let name = self.expect_ident("an attribute name")?;
        self.expect(Token::Colon, "after the attribute name")?;
        let kind = if self.eat_keyword("data") {
            AttrKindDecl::Data
        } else if self.eat_keyword("ref") {
            AttrKindDecl::Ref(self.expect_ident("the referenced relation")?)
        } else {
            return Err(self.error(format!(
                "expected attribute type `data` or `ref <RELATION>`, found {}",
                self.peek().describe()
            )));
        };
        Ok(AttrDecl { name, kind })
    }

    fn type_decl(&mut self) -> Result<TypeDecl, SpecError> {
        if self.eat_keyword("data") {
            Ok(TypeDecl::Data)
        } else if self.eat_keyword("id") {
            self.expect(Token::LParen, "after `id`")?;
            let rel = self.expect_ident("a relation name")?;
            self.expect(Token::RParen, "to close the `id(...)` type")?;
            Ok(TypeDecl::Id(rel))
        } else {
            Err(self.error(format!(
                "expected a type (`data` or `id(RELATION)`), found {}",
                self.peek().describe()
            )))
        }
    }

    fn var_decl(&mut self) -> Result<VarDecl, SpecError> {
        let name = self.expect_ident("a variable name")?;
        self.expect(Token::Colon, "after the variable name")?;
        let typ = self.type_decl()?;
        Ok(VarDecl { name, typ })
    }

    fn io_pair(&mut self) -> Result<IoPair, SpecError> {
        let child = self.expect_ident("a variable name")?;
        let parent = if self.eat(&Token::Arrow) {
            Some(self.expect_ident("the parent variable")?)
        } else {
            None
        };
        Ok(IoPair { child, parent })
    }

    fn ident_list(&mut self) -> Result<Vec<Ident>, SpecError> {
        let mut out = vec![self.expect_ident("a variable name")?];
        while self.eat(&Token::Comma) {
            out.push(self.expect_ident("a variable name")?);
        }
        Ok(out)
    }

    fn task(&mut self) -> Result<TaskDecl, SpecError> {
        self.expect_keyword("task")?;
        let name = self.expect_ident("a task name")?;
        let parent = if self.eat_keyword("child") {
            self.expect_keyword("of")?;
            Some(self.expect_ident("the parent task")?)
        } else {
            None
        };
        self.expect(Token::LBrace, "to open the task body")?;
        let mut task = TaskDecl {
            name,
            parent,
            vars: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            artifacts: Vec::new(),
            opening: None,
            closing: None,
            services: Vec::new(),
        };
        let mut seen_vars = false;
        let mut seen_inputs = false;
        let mut seen_outputs = false;
        while !self.eat(&Token::RBrace) {
            let span = self.span();
            if self.eat_keyword("vars") {
                if seen_vars {
                    return Err(SpecError::new(span, "duplicate `vars` block"));
                }
                seen_vars = true;
                self.expect(Token::LBrace, "to open the vars block")?;
                task.vars.push(self.var_decl()?);
                while self.eat(&Token::Comma) {
                    task.vars.push(self.var_decl()?);
                }
                self.expect(Token::RBrace, "to close the vars block")?;
            } else if self.eat_keyword("inputs") {
                if seen_inputs {
                    return Err(SpecError::new(span, "duplicate `inputs` block"));
                }
                seen_inputs = true;
                self.expect(Token::LBrace, "to open the inputs block")?;
                task.inputs.push(self.io_pair()?);
                while self.eat(&Token::Comma) {
                    task.inputs.push(self.io_pair()?);
                }
                self.expect(Token::RBrace, "to close the inputs block")?;
            } else if self.eat_keyword("outputs") {
                if seen_outputs {
                    return Err(SpecError::new(span, "duplicate `outputs` block"));
                }
                seen_outputs = true;
                self.expect(Token::LBrace, "to open the outputs block")?;
                task.outputs.push(self.io_pair()?);
                while self.eat(&Token::Comma) {
                    task.outputs.push(self.io_pair()?);
                }
                self.expect(Token::RBrace, "to close the outputs block")?;
            } else if self.eat_keyword("artifact") {
                let name = self.expect_ident("an artifact-relation name")?;
                self.expect(Token::LParen, "after the artifact-relation name")?;
                let columns = self.ident_list()?;
                self.expect(Token::RParen, "to close the column list")?;
                self.expect(Token::Semi, "after the artifact declaration")?;
                task.artifacts.push(ArtifactDecl { name, columns });
            } else if self.eat_keyword("opening") {
                if task.opening.is_some() {
                    return Err(SpecError::new(span, "duplicate `opening` condition"));
                }
                self.expect(Token::Colon, "after `opening`")?;
                let cond = self.condition()?;
                self.expect(Token::Semi, "after the opening condition")?;
                task.opening = Some(cond);
            } else if self.eat_keyword("closing") {
                if task.closing.is_some() {
                    return Err(SpecError::new(span, "duplicate `closing` condition"));
                }
                self.expect(Token::Colon, "after `closing`")?;
                let cond = self.condition()?;
                self.expect(Token::Semi, "after the closing condition")?;
                task.closing = Some(cond);
            } else if self.eat_keyword("service") {
                task.services.push(self.service()?);
            } else {
                return Err(self.error(format!(
                    "expected a task item (`vars`, `inputs`, `outputs`, `artifact`, \
                     `opening`, `closing` or `service`) or `}}`, found {}",
                    self.peek().describe()
                )));
            }
        }
        Ok(task)
    }

    fn service(&mut self) -> Result<ServiceDecl, SpecError> {
        let name = self.expect_ident("a service name")?;
        self.expect(Token::LBrace, "to open the service body")?;
        self.expect_keyword("pre")?;
        self.expect(Token::Colon, "after `pre`")?;
        let pre = self.condition()?;
        self.expect(Token::Semi, "after the pre-condition")?;
        self.expect_keyword("post")?;
        self.expect(Token::Colon, "after `post`")?;
        let post = self.condition()?;
        self.expect(Token::Semi, "after the post-condition")?;
        let propagate = if self.eat_keyword("propagate") {
            let vars = self.ident_list()?;
            self.expect(Token::Semi, "after the propagate list")?;
            vars
        } else {
            Vec::new()
        };
        let update = if self.at_keyword("insert") || self.at_keyword("retrieve") {
            let insert = self.eat_keyword("insert") || {
                self.expect_keyword("retrieve")?;
                false
            };
            let rel = self.expect_ident("an artifact-relation name")?;
            self.expect(Token::LParen, "after the artifact-relation name")?;
            let vars = self.ident_list()?;
            self.expect(Token::RParen, "to close the tuple")?;
            self.expect(Token::Semi, "after the update")?;
            Some(UpdateDecl { insert, rel, vars })
        } else {
            None
        };
        self.expect(Token::RBrace, "to close the service body")?;
        Ok(ServiceDecl {
            name,
            pre,
            post,
            propagate,
            update,
        })
    }

    fn property(&mut self) -> Result<PropertyDecl, SpecError> {
        self.expect_keyword("property")?;
        let (name, span) = self.expect_string("property name")?;
        self.expect_keyword("on")?;
        let task = self.expect_ident("the verified task")?;
        self.expect(Token::LBrace, "to open the property body")?;
        let mut foralls = Vec::new();
        if self.eat_keyword("forall") {
            foralls.push(self.var_decl()?);
            while self.eat(&Token::Comma) {
                foralls.push(self.var_decl()?);
            }
            self.expect(Token::Semi, "after the forall declarations")?;
        }
        let mut defines = Vec::new();
        while self.eat_keyword("define") {
            let name = self.expect_ident("the alias name")?;
            self.expect(Token::Assign, "after the alias name")?;
            let cond = self.condition()?;
            self.expect(Token::Semi, "after the alias condition")?;
            defines.push(DefineDecl { name, cond });
        }
        let body = if self.eat_keyword("formula") {
            self.expect(Token::Colon, "after `formula`")?;
            let f = self.ltl()?;
            self.expect(Token::Semi, "after the formula")?;
            PropertyBody::Formula(f)
        } else if self.eat_keyword("template") {
            let (name, span) = self.expect_string("template name")?;
            let mut phi = None;
            let mut psi = None;
            if self.eat_keyword("with") {
                loop {
                    let slot = self.expect_ident("`phi` or `psi`")?;
                    self.expect(Token::Assign, "after the placeholder name")?;
                    let atom = self.ltl_atom()?;
                    match slot.name.as_str() {
                        "phi" if phi.is_none() => phi = Some(atom),
                        "psi" if psi.is_none() => psi = Some(atom),
                        "phi" | "psi" => {
                            return Err(SpecError::new(
                                slot.span,
                                format!("placeholder `{}` is bound twice", slot.name),
                            ))
                        }
                        other => {
                            return Err(SpecError::new(
                                slot.span,
                                format!(
                                "unknown template placeholder `{other}` (expected `phi` or `psi`)"
                            ),
                            ))
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(Token::Semi, "after the template instantiation")?;
            PropertyBody::Template {
                name,
                span,
                phi,
                psi,
            }
        } else {
            return Err(self.error(format!(
                "expected `formula` or `template` in the property body, found {}",
                self.peek().describe()
            )));
        };
        self.expect(Token::RBrace, "to close the property body")?;
        Ok(PropertyDecl {
            name,
            span,
            task,
            foralls,
            defines,
            body,
        })
    }

    // ----- conditions ----------------------------------------------------

    fn condition(&mut self) -> Result<CondExpr, SpecError> {
        let left = self.cond_or()?;
        if self.eat(&Token::Arrow) {
            let right = self.condition()?;
            Ok(CondExpr::Implies(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn cond_or(&mut self) -> Result<CondExpr, SpecError> {
        let first = self.cond_and()?;
        if *self.peek() != Token::OrOr {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&Token::OrOr) {
            parts.push(self.cond_and()?);
        }
        Ok(CondExpr::Or(parts))
    }

    fn cond_and(&mut self) -> Result<CondExpr, SpecError> {
        let first = self.cond_not()?;
        if *self.peek() != Token::AndAnd {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&Token::AndAnd) {
            parts.push(self.cond_not()?);
        }
        Ok(CondExpr::And(parts))
    }

    fn cond_not(&mut self) -> Result<CondExpr, SpecError> {
        if *self.peek() == Token::Bang {
            let span = self.bump().span;
            let inner = self.cond_not()?;
            Ok(CondExpr::Not(Box::new(inner), span))
        } else {
            self.cond_primary()
        }
    }

    fn cond_primary(&mut self) -> Result<CondExpr, SpecError> {
        match self.peek() {
            Token::LParen => {
                self.bump();
                let inner = self.condition()?;
                self.expect(Token::RParen, "to close the parenthesized condition")?;
                Ok(inner)
            }
            Token::Ident(name) if name == "true" => Ok(CondExpr::True(self.bump().span)),
            Token::Ident(name) if name == "false" => Ok(CondExpr::False(self.bump().span)),
            Token::Ident(_) if self.tokens[self.pos + 1].token == Token::LParen => {
                let rel = self.expect_ident("a relation name")?;
                self.bump(); // '('
                let mut args = vec![self.term()?];
                while self.eat(&Token::Comma) {
                    args.push(self.term()?);
                }
                self.expect(Token::RParen, "to close the relational atom")?;
                Ok(CondExpr::Rel { rel, args })
            }
            _ => {
                let left = self.term()?;
                let eq = match self.peek() {
                    Token::EqEq => true,
                    Token::NotEq => false,
                    other => {
                        return Err(self.error(format!(
                            "expected `==` or `!=` after the term, found {}",
                            other.describe()
                        )))
                    }
                };
                self.bump();
                let right = self.term()?;
                Ok(CondExpr::Cmp { left, eq, right })
            }
        }
    }

    fn term(&mut self) -> Result<TermExpr, SpecError> {
        match self.peek() {
            Token::Ident(name) if name == "null" => Ok(TermExpr::Null(self.bump().span)),
            Token::Ident(_) => {
                let ident = self.expect_ident("a variable")?;
                Ok(TermExpr::Var(ident))
            }
            Token::Str(_) => {
                let t = self.bump();
                let Token::Str(text) = t.token else {
                    unreachable!()
                };
                Ok(TermExpr::Str(text, t.span))
            }
            Token::Int(_) => {
                let t = self.bump();
                let Token::Int(value) = t.token else {
                    unreachable!()
                };
                Ok(TermExpr::Int(value, t.span))
            }
            other => Err(self.error(format!(
                "expected a term (variable, constant or `null`), found {}",
                other.describe()
            ))),
        }
    }

    // ----- LTL formulas --------------------------------------------------

    fn ltl(&mut self) -> Result<LtlExpr, SpecError> {
        let left = self.ltl_or()?;
        if self.eat(&Token::Arrow) {
            let right = self.ltl()?;
            Ok(LtlExpr::Implies(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn ltl_or(&mut self) -> Result<LtlExpr, SpecError> {
        let left = self.ltl_and()?;
        if self.eat(&Token::OrOr) {
            let right = self.ltl_or()?;
            Ok(LtlExpr::Or(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn ltl_and(&mut self) -> Result<LtlExpr, SpecError> {
        let left = self.ltl_until()?;
        if self.eat(&Token::AndAnd) {
            let right = self.ltl_and()?;
            Ok(LtlExpr::And(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn ltl_until(&mut self) -> Result<LtlExpr, SpecError> {
        let left = self.ltl_unary()?;
        if self.at_keyword("U") {
            self.bump();
            let right = self.ltl_until()?;
            Ok(LtlExpr::Until(Box::new(left), Box::new(right)))
        } else if self.at_keyword("R") {
            self.bump();
            let right = self.ltl_until()?;
            Ok(LtlExpr::Release(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn ltl_unary(&mut self) -> Result<LtlExpr, SpecError> {
        if *self.peek() == Token::Bang {
            let span = self.bump().span;
            return Ok(LtlExpr::Not(Box::new(self.ltl_unary()?), span));
        }
        for (word, build) in [
            (
                "G",
                LtlExpr::Globally as fn(Box<LtlExpr>, SourceSpan) -> LtlExpr,
            ),
            ("F", LtlExpr::Eventually),
            ("X", LtlExpr::Next),
        ] {
            if self.at_keyword(word) {
                let span = self.bump().span;
                return Ok(build(Box::new(self.ltl_unary()?), span));
            }
        }
        self.ltl_primary()
    }

    fn ltl_primary(&mut self) -> Result<LtlExpr, SpecError> {
        match self.peek() {
            Token::LParen => {
                self.bump();
                let inner = self.ltl()?;
                self.expect(Token::RParen, "to close the parenthesized formula")?;
                Ok(inner)
            }
            Token::Ident(name) if name == "true" => Ok(LtlExpr::True(self.bump().span)),
            Token::Ident(name) if name == "false" => Ok(LtlExpr::False(self.bump().span)),
            _ => Ok(LtlExpr::Atom(self.ltl_atom()?)),
        }
    }

    fn ltl_atom(&mut self) -> Result<AtomExpr, SpecError> {
        match self.peek() {
            Token::LBrace => {
                let span = self.bump().span;
                let cond = self.condition()?;
                self.expect(Token::RBrace, "to close the condition atom")?;
                Ok(AtomExpr::Cond(Box::new(cond), span))
            }
            Token::Ident(name) if name == "open" || name == "close" => {
                let open = name == "open";
                self.bump();
                self.expect(Token::LParen, "after `open`/`close`")?;
                let task = self.expect_ident("a task name")?;
                self.expect(Token::RParen, "to close the service atom")?;
                Ok(if open {
                    AtomExpr::Open(task)
                } else {
                    AtomExpr::Close(task)
                })
            }
            Token::Ident(name) if name == "did" => {
                self.bump();
                self.expect(Token::LParen, "after `did`")?;
                let task = self.expect_ident("a task name")?;
                self.expect(Token::Dot, "between task and service name")?;
                let service = self.expect_ident("a service name")?;
                self.expect(Token::RParen, "to close the service atom")?;
                Ok(AtomExpr::Did(task, service))
            }
            Token::Ident(_) => Ok(AtomExpr::Alias(self.expect_ident("an atom")?)),
            other => Err(self.error(format!(
                "expected an atom (`{{ condition }}`, `open(Task)`, `close(Task)`, \
                 `did(Task.Service)` or a defined alias), found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
spec "mini";
schema {
    relation R(a: data);
}
task Root {
    vars { x: data, r: id(R) }
    service Go {
        pre: x == null;
        post: x == "Done" && R(r, "v");
    }
}
init: x == null;
property "never-bad" on Root {
    formula: G !{ x == "Bad" };
}
"#;

    #[test]
    fn parses_a_minimal_specification() {
        let file = parse(MINI).unwrap();
        assert_eq!(file.name, "mini");
        assert_eq!(file.relations.len(), 1);
        assert_eq!(file.tasks.len(), 1);
        assert_eq!(file.tasks[0].vars.len(), 2);
        assert_eq!(file.tasks[0].services.len(), 1);
        assert!(file.init.is_some());
        assert_eq!(file.properties.len(), 1);
        let PropertyBody::Formula(f) = &file.properties[0].body else {
            panic!("expected a formula body");
        };
        assert!(matches!(f, LtlExpr::Globally(..)));
    }

    #[test]
    fn condition_chains_flatten_and_implies_nests_right() {
        let file = parse(
            r#"
spec "p";
schema { relation R(a: data); }
task T {
    vars { x: data }
    service S { pre: x == "a" && x != "b" && x != "c"; post: x == "a" -> x == "b" -> x == "c"; }
}
"#,
        )
        .unwrap();
        let svc = &file.tasks[0].services[0];
        match &svc.pre {
            CondExpr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected a flat conjunction, got {other:?}"),
        }
        match &svc.post {
            CondExpr::Implies(_, b) => assert!(matches!(**b, CondExpr::Implies(..))),
            other => panic!("expected a right-nested implication, got {other:?}"),
        }
    }

    #[test]
    fn ltl_precedence_binds_until_tighter_than_and() {
        let file = parse(
            r#"
spec "p";
schema { relation R(a: data); }
task T { vars { x: data } }
property "q" on T {
    define a := x == "a";
    define b := x == "b";
    formula: !a U b && F a;
}
"#,
        )
        .unwrap();
        let PropertyBody::Formula(f) = &file.properties[0].body else {
            panic!()
        };
        // (!a U b) && (F a)
        match f {
            LtlExpr::And(left, right) => {
                assert!(matches!(**left, LtlExpr::Until(..)));
                assert!(matches!(**right, LtlExpr::Eventually(..)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn errors_point_at_the_offending_token() {
        let err = parse("spec \"x\";\nschema { relation R(a data); }").unwrap_err();
        assert_eq!((err.span.line, err.span.column), (2, 23));
        assert!(err.message.contains("`:`"), "{}", err.message);
    }

    #[test]
    fn template_bodies_parse() {
        let file = parse(
            r#"
spec "p";
schema { relation R(a: data); }
task T { vars { x: data } }
property "q" on T {
    template "G phi" with phi := { x == "Bad" };
}
"#,
        )
        .unwrap();
        let PropertyBody::Template { name, phi, psi, .. } = &file.properties[0].body else {
            panic!()
        };
        assert_eq!(name, "G phi");
        assert!(phi.is_some());
        assert!(psi.is_none());
    }
}
