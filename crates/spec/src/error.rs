//! Spanned diagnostics of the `.has` frontend.

use std::fmt;
use verifas_core::{SourceSpan, VerifasError};

/// One diagnostic of the `.has` frontend: where in the source text the
/// problem was detected and what was wrong.  Converts into
/// [`VerifasError::Spec`] at the public API boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line/column of the offending construct.
    pub span: SourceSpan,
    /// What was wrong.
    pub message: String,
}

impl SpecError {
    /// A diagnostic at the given span.
    pub fn new(span: SourceSpan, message: impl Into<String>) -> Self {
        SpecError {
            span,
            message: message.into(),
        }
    }

    /// Render the diagnostic the way the `verifas` CLI prints it:
    /// `file:line:column: error: message`.
    pub fn render(&self, file: &str) -> String {
        format!(
            "{file}:{}:{}: error: {}",
            self.span.line, self.span.column, self.message
        )
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<SpecError> for VerifasError {
    fn from(e: SpecError) -> Self {
        VerifasError::Spec {
            span: e.span,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_a_compiler_diagnostic() {
        let e = SpecError::new(SourceSpan::new(7, 3), "unknown task `Shp`");
        assert_eq!(
            e.render("demo.has"),
            "demo.has:7:3: error: unknown task `Shp`"
        );
        assert_eq!(e.to_string(), "7:3: unknown task `Shp`");
    }

    #[test]
    fn converts_into_the_typed_engine_error() {
        let e = SpecError::new(SourceSpan::new(1, 2), "boom");
        match VerifasError::from(e) {
            VerifasError::Spec { span, message } => {
                assert_eq!(span, SourceSpan::new(1, 2));
                assert_eq!(message, "boom");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
