//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *tiny* subset of the `rand` API that VERIFAS uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over `Range<usize>` /
//! `Range<u32>` / `Range<u64>`, and [`Rng::gen_bool`].  The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a fixed seed,
//! which is all the benchmark generator relies on.  The random *streams*
//! differ from upstream `rand`'s `StdRng`, so workloads generated for a
//! given seed differ from ones generated with the real crate; nothing in
//! the repository depends on the specific streams.

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Lemire-style unbiased bounded sampling in `[0, bound)` (`bound > 0`).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0, "cannot sample from an empty range");
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i32);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform float in [0, 1).
        let bits = self.next_u64() >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&heads), "suspicious bias: {heads}");
    }
}
