//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmarking harness exposing the subset of
//! the criterion API the `verifas-bench` benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.  Each benchmark runs a warm-up iteration and
//! then `sample_size` timed samples; the mean, minimum and maximum sample
//! times are printed to stdout.  No statistics beyond that — if the real
//! criterion ever becomes installable, swapping the path dependency back to
//! the crates.io version requires no source changes.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to benchmark closures; runs and times the benchmarked routine.
pub struct Bencher {
    /// Accumulated time of the current sample.
    elapsed: Duration,
    /// Iterations per sample.
    iters: u64,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    // Warm-up (also primes lazy initialisation inside the routine).
    f(&mut bencher);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len().max(1) as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!("{label:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Finish the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
