//! Values of the HAS\* data domains.
//!
//! The paper assumes two infinite, disjoint domains: `DOM_id` of tuple
//! identifiers and `DOM_val` of data values, plus the special constant
//! `null` (Section 2).  Identifiers are further partitioned per relation:
//! `Dom(R.ID)` and `Dom(R'.ID)` are disjoint for distinct relations, so an
//! identifier value carries the relation it belongs to.

use crate::schema::RelId;
use std::fmt;

/// A data (non-identifier) value from the unbounded value domain `DOM_val`.
///
/// The verifier never interprets data values beyond equality, so strings
/// and integers are enough to write realistic workflows.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataValue {
    /// A string constant such as `"Good"` or `"OrderPlaced"`.
    Str(String),
    /// An integer constant.
    Int(i64),
}

impl DataValue {
    /// Build a string data value.
    pub fn str(s: impl Into<String>) -> Self {
        DataValue::Str(s.into())
    }

    /// Build an integer data value.
    pub fn int(i: i64) -> Self {
        DataValue::Int(i)
    }
}

impl fmt::Display for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataValue::Str(s) => write!(f, "{s:?}"),
            DataValue::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for DataValue {
    fn from(s: &str) -> Self {
        DataValue::Str(s.to_owned())
    }
}

impl From<String> for DataValue {
    fn from(s: String) -> Self {
        DataValue::Str(s)
    }
}

impl From<i64> for DataValue {
    fn from(i: i64) -> Self {
        DataValue::Int(i)
    }
}

/// A value of the combined domain `DOM_id ∪ DOM_val ∪ {null}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The special default/initialisation constant `null`.
    Null,
    /// An identifier in `Dom(R.ID)`: the relation `R` plus a numeric key.
    Id(RelId, u64),
    /// A data value in `DOM_val`.
    Data(DataValue),
}

impl Value {
    /// `true` iff this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` iff this value is an identifier of relation `rel`.
    pub fn is_id_of(&self, rel: RelId) -> bool {
        matches!(self, Value::Id(r, _) if *r == rel)
    }

    /// Convenience constructor for a string data value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Data(DataValue::Str(s.into()))
    }

    /// Convenience constructor for an integer data value.
    pub fn int(i: i64) -> Self {
        Value::Data(DataValue::Int(i))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Id(rel, id) => write!(f, "#{}:{}", rel.index(), id),
            Value::Data(d) => write!(f, "{d}"),
        }
    }
}

impl From<DataValue> for Value {
    fn from(d: DataValue) -> Self {
        Value::Data(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_value_constructors() {
        assert_eq!(DataValue::str("Good"), DataValue::Str("Good".into()));
        assert_eq!(DataValue::int(7), DataValue::Int(7));
        assert_eq!(DataValue::from("x"), DataValue::Str("x".into()));
        assert_eq!(DataValue::from(3i64), DataValue::Int(3));
    }

    #[test]
    fn value_predicates() {
        let r0 = RelId::new(0);
        let r1 = RelId::new(1);
        assert!(Value::Null.is_null());
        assert!(!Value::Id(r0, 1).is_null());
        assert!(Value::Id(r0, 1).is_id_of(r0));
        assert!(!Value::Id(r0, 1).is_id_of(r1));
        assert!(!Value::str("a").is_id_of(r0));
    }

    #[test]
    fn value_display_is_stable() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Id(RelId::new(2), 5).to_string(), "#2:5");
        assert_eq!(Value::str("Good").to_string(), "\"Good\"");
        assert_eq!(Value::int(10).to_string(), "10");
    }

    #[test]
    fn values_order_and_hash_consistently() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Null);
        set.insert(Value::Null);
        set.insert(Value::str("a"));
        set.insert(Value::str("a"));
        set.insert(Value::Id(RelId::new(0), 1));
        assert_eq!(set.len(), 3);
    }
}
