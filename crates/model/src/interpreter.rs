//! Concrete (sampling-based) interpreter for HAS\* specifications.
//!
//! The interpreter executes the operational semantics of Definition 27 /
//! Definition 28 on a fixed, concrete database instance.  It is *not* a
//! decision procedure — post-conditions are satisfied by sampling candidate
//! values from the active domain, the constants of the specification and
//! `null` — but it is deterministic for a fixed seed, which makes it a
//! convenient test oracle: concrete local runs it produces must never
//! violate a property that the symbolic verifier proves, and the examples
//! use it to animate workflows.

use crate::condition::{Condition, VarRef};
use crate::error::{ModelError, Result};
use crate::instance::{ArtifactInstance, DatabaseInstance, Stage};
use crate::service::{ServiceRef, Update};
use crate::spec::HasSpec;
use crate::task::{TaskId, VarId, VarType};
use crate::value::Value;
use std::collections::BTreeSet;

/// Configuration of a random run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// PRNG seed; runs are deterministic for a fixed seed, database and
    /// specification.
    pub seed: u64,
    /// Maximum number of transitions to execute.
    pub max_steps: usize,
    /// Number of random valuations sampled when trying to satisfy a
    /// post-condition before giving up on a service.
    pub max_post_attempts: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0xC0FFEE,
            max_steps: 200,
            max_post_attempts: 64,
        }
    }
}

/// Result of a single interpreter step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// A service was applied.
    Applied(ServiceRef),
    /// No service could be applied (the sampling found no valid successor).
    NoEnabledService,
}

/// One observable transition of a local run of the observed task: the
/// service applied and the resulting values of the task's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalEvent {
    /// The observable service that caused the transition.
    pub service: ServiceRef,
    /// Values of the observed task's variables *after* the transition.
    pub valuation: Vec<Value>,
}

/// A local run of a task induced by a global run (paper, Section 2 and
/// Appendix A): the subsequence of transitions caused by the task's
/// observable services, from an opening transition up to (and including)
/// the first closing transition, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRun {
    /// The observed task.
    pub task: TaskId,
    /// The observable transitions, starting with the opening service.
    pub events: Vec<LocalEvent>,
    /// Whether the run ended with the task's closing service (a *finite*
    /// local run in the sense of the paper).
    pub closed: bool,
}

/// Small deterministic PRNG (SplitMix64) so that the model crate does not
/// need an external randomness dependency.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// The sampling-based interpreter.
pub struct Interpreter<'a> {
    spec: &'a HasSpec,
    db: &'a DatabaseInstance,
    rng: SplitMix64,
    config: RunConfig,
    /// Current snapshot of the artifact system.
    pub instance: ArtifactInstance,
    /// Constants appearing anywhere in the specification (candidate values
    /// for data variables).
    constants: Vec<Value>,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter over a validated specification and database.
    ///
    /// The initial root valuation is sampled to satisfy the global
    /// pre-condition; an error is returned if no satisfying valuation is
    /// found within the sampling budget.
    pub fn new(spec: &'a HasSpec, db: &'a DatabaseInstance, config: RunConfig) -> Result<Self> {
        let mut constants: BTreeSet<Value> = BTreeSet::new();
        for task in &spec.tasks {
            for svc in &task.services {
                for c in svc.pre.constants().into_iter().chain(svc.post.constants()) {
                    constants.insert(Value::Data(c));
                }
            }
            for c in task
                .opening
                .pre
                .constants()
                .into_iter()
                .chain(task.closing.pre.constants())
            {
                constants.insert(Value::Data(c));
            }
        }
        for c in spec.global_pre.constants() {
            constants.insert(Value::Data(c));
        }
        let mut interp = Interpreter {
            spec,
            db,
            rng: SplitMix64::new(config.seed),
            config,
            instance: ArtifactInstance::initial(spec),
            constants: constants.into_iter().collect(),
        };
        // Choose an initial valuation of the root satisfying Π.
        let root = spec.root();
        let all_vars: Vec<VarId> = (0..spec.task(root).vars.len())
            .map(|i| VarId::new(i as u32))
            .collect();
        let found = interp.sample_valuation(root, &all_vars, &spec.global_pre, &[])?;
        if !found {
            return Err(ModelError::TransitionNotEnabled {
                service: "initial".into(),
                reason: "no initial valuation satisfying the global pre-condition was found".into(),
            });
        }
        Ok(interp)
    }

    /// The current artifact instance.
    pub fn snapshot(&self) -> &ArtifactInstance {
        &self.instance
    }

    /// Evaluate a condition over a task's current valuation.
    fn holds(&self, task: TaskId, cond: &Condition) -> bool {
        let valuation = &self.instance.tasks[task.index()].valuation;
        cond.eval_concrete(self.db, &|v| match v {
            VarRef::Task(id) => valuation[id.index()].clone(),
            VarRef::Global(_) => Value::Null,
        })
    }

    /// Candidate values for a variable of the given type.
    fn candidates(&self, typ: VarType) -> Vec<Value> {
        let mut out = vec![Value::Null];
        match typ {
            VarType::Data => {
                out.extend(self.constants.iter().cloned());
                out.extend(
                    self.db
                        .active_domain()
                        .into_iter()
                        .filter(|v| matches!(v, Value::Data(_))),
                );
            }
            VarType::Id(rel) => {
                out.extend(self.db.tuples(rel).map(|t| Value::Id(rel, t.id)));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Try to find values for `free_vars` of `task` such that `cond` holds;
    /// `fixed` pairs are assigned first.  On success the instance valuation
    /// is updated and `true` is returned; on failure the valuation is left
    /// unchanged.
    fn sample_valuation(
        &mut self,
        task: TaskId,
        free_vars: &[VarId],
        cond: &Condition,
        fixed: &[(VarId, Value)],
    ) -> Result<bool> {
        let saved = self.instance.tasks[task.index()].valuation.clone();
        let task_def = self.spec.task(task);
        let pools: Vec<Vec<Value>> = free_vars
            .iter()
            .map(|v| self.candidates(task_def.var(*v).typ))
            .collect();
        for attempt in 0..self.config.max_post_attempts.max(1) {
            {
                let valuation = &mut self.instance.tasks[task.index()].valuation;
                for (v, value) in fixed {
                    valuation[v.index()] = value.clone();
                }
            }
            for (i, v) in free_vars.iter().enumerate() {
                let value = if attempt == 0 {
                    // First attempt: keep the current (saved) value.
                    saved[v.index()].clone()
                } else if attempt == 1 {
                    Value::Null
                } else {
                    pools[i][self.rng.below(pools[i].len())].clone()
                };
                self.instance.tasks[task.index()].valuation[v.index()] = value;
            }
            if self.holds(task, cond) {
                return Ok(true);
            }
        }
        self.instance.tasks[task.index()].valuation = saved;
        Ok(false)
    }

    /// Services whose *control* prerequisites hold (stage, children, guard,
    /// non-empty retrieval source).  Whether a valid successor valuation
    /// exists is only determined when the service is applied.
    pub fn candidate_services(&self) -> Vec<ServiceRef> {
        let mut out = Vec::new();
        for (tid, task) in self.spec.iter_tasks() {
            let active = self.instance.stage(tid) == Stage::Active;
            let children_inactive = self
                .spec
                .children(tid)
                .iter()
                .all(|c| self.instance.stage(*c) == Stage::Inactive);
            if active && children_inactive {
                for (i, svc) in task.services.iter().enumerate() {
                    if !self.holds(tid, &svc.pre) {
                        continue;
                    }
                    if let Some(Update::Retrieve { rel, .. }) = &svc.update {
                        if self.instance.relation(tid, *rel).is_empty() {
                            continue;
                        }
                    }
                    out.push(ServiceRef::Internal {
                        task: tid,
                        index: i,
                    });
                }
                if tid != self.spec.root() && self.holds(tid, &task.closing.pre) {
                    out.push(ServiceRef::Closing(tid));
                }
            }
            if active {
                for &c in self.spec.children(tid) {
                    if self.instance.stage(c) == Stage::Inactive
                        && self.holds(tid, &self.spec.task(c).opening.pre)
                    {
                        out.push(ServiceRef::Opening(c));
                    }
                }
            }
        }
        out
    }

    /// Try to apply a service; returns `Ok(true)` on success, `Ok(false)`
    /// if the service turned out not to be applicable (e.g. no valuation
    /// satisfying the post-condition was found).
    pub fn try_apply(&mut self, service: ServiceRef) -> Result<bool> {
        match service {
            ServiceRef::Internal { task, index } => self.apply_internal(task, index),
            ServiceRef::Opening(task) => self.apply_opening(task),
            ServiceRef::Closing(task) => self.apply_closing(task),
        }
    }

    fn apply_internal(&mut self, tid: TaskId, index: usize) -> Result<bool> {
        let task = self.spec.task(tid).clone();
        let svc = task.services[index].clone();
        if self.instance.stage(tid) != Stage::Active
            || !self
                .spec
                .children(tid)
                .iter()
                .all(|c| self.instance.stage(*c) == Stage::Inactive)
            || !self.holds(tid, &svc.pre)
        {
            return Ok(false);
        }
        let propagated: BTreeSet<VarId> = svc.propagated.iter().copied().collect();
        // Pre-compute the update effect.
        let mut fixed: Vec<(VarId, Value)> = Vec::new();
        let mut insert_after: Option<(crate::task::ArtRelId, Vec<Value>)> = None;
        let mut removed: Option<(crate::task::ArtRelId, usize)> = None;
        match &svc.update {
            Some(Update::Insert { rel, vars }) => {
                let tuple: Vec<Value> = vars
                    .iter()
                    .map(|v| self.instance.value(tid, *v).clone())
                    .collect();
                insert_after = Some((*rel, tuple));
            }
            Some(Update::Retrieve { rel, vars }) => {
                let contents = self.instance.relation(tid, *rel);
                if contents.is_empty() {
                    return Ok(false);
                }
                let pick = self.rng.below(contents.len());
                let tuple = contents[pick].clone();
                removed = Some((*rel, pick));
                for (v, value) in vars.iter().zip(tuple) {
                    fixed.push((*v, value));
                }
            }
            None => {}
        }
        // Propagated variables keep their values.
        for v in &propagated {
            fixed.push((*v, self.instance.value(tid, *v).clone()));
        }
        // Free variables: everything not fixed above.
        let fixed_set: BTreeSet<VarId> = fixed.iter().map(|(v, _)| *v).collect();
        let free: Vec<VarId> = (0..task.vars.len())
            .map(|i| VarId::new(i as u32))
            .filter(|v| !fixed_set.contains(v))
            .collect();
        if !self.sample_valuation(tid, &free, &svc.post, &fixed)? {
            return Ok(false);
        }
        if let Some((rel, pick)) = removed {
            self.instance.relation_mut(tid, rel).remove(pick);
        }
        if let Some((rel, tuple)) = insert_after {
            let contents = self.instance.relation_mut(tid, rel);
            if !contents.contains(&tuple) {
                contents.push(tuple);
            }
        }
        Ok(true)
    }

    fn apply_opening(&mut self, child: TaskId) -> Result<bool> {
        let Some(parent) = self.spec.task(child).parent else {
            return Ok(false);
        };
        if self.instance.stage(child) != Stage::Inactive
            || self.instance.stage(parent) != Stage::Active
            || !self.holds(parent, &self.spec.task(child).opening.pre)
        {
            return Ok(false);
        }
        // Reset all child variables to null, then copy the inputs.
        let n = self.spec.task(child).vars.len();
        for i in 0..n {
            self.instance
                .set_value(child, VarId::new(i as u32), Value::Null);
        }
        let input_map = self.spec.task(child).opening.input_map.clone();
        for (cv, pv) in input_map {
            let value = self.instance.value(parent, pv).clone();
            self.instance.set_value(child, cv, value);
        }
        // Empty the child's artifact relations and activate it.
        for rel in &mut self.instance.tasks[child.index()].relations {
            rel.clear();
        }
        self.instance.set_stage(child, Stage::Active);
        Ok(true)
    }

    fn apply_closing(&mut self, tid: TaskId) -> Result<bool> {
        let Some(parent) = self.spec.task(tid).parent else {
            return Ok(false); // the root never closes
        };
        if self.instance.stage(tid) != Stage::Active
            || !self
                .spec
                .children(tid)
                .iter()
                .all(|c| self.instance.stage(*c) == Stage::Inactive)
            || !self.holds(tid, &self.spec.task(tid).closing.pre)
        {
            return Ok(false);
        }
        let output_map = self.spec.task(tid).closing.output_map.clone();
        for (cv, pv) in output_map {
            let value = self.instance.value(tid, cv).clone();
            self.instance.set_value(parent, pv, value);
        }
        for rel in &mut self.instance.tasks[tid.index()].relations {
            rel.clear();
        }
        self.instance.set_stage(tid, Stage::Inactive);
        Ok(true)
    }

    /// Perform one random step: shuffle the candidate services and apply
    /// the first one that succeeds.
    pub fn step(&mut self) -> StepOutcome {
        let mut candidates = self.candidate_services();
        // Fisher-Yates shuffle with the internal PRNG.
        for i in (1..candidates.len()).rev() {
            let j = self.rng.below(i + 1);
            candidates.swap(i, j);
        }
        for service in candidates {
            if self.try_apply(service).unwrap_or(false) {
                return StepOutcome::Applied(service);
            }
        }
        StepOutcome::NoEnabledService
    }

    /// Run for up to `max_steps` transitions, collecting the local runs of
    /// `observed` (paper: `Runs_T(ρ)`).  The trailing run is reported even
    /// if it has not closed by the time the budget is exhausted.
    pub fn run_collecting_local_runs(&mut self, observed: TaskId) -> Vec<LocalRun> {
        let observable: BTreeSet<ServiceRef> = self
            .spec
            .observable_services(observed)
            .into_iter()
            .collect();
        let mut runs: Vec<LocalRun> = Vec::new();
        let mut current: Option<LocalRun> = None;
        // The root task opens implicitly at the start of the global run.
        if observed == self.spec.root() {
            current = Some(LocalRun {
                task: observed,
                events: vec![LocalEvent {
                    service: ServiceRef::Opening(observed),
                    valuation: self.instance.tasks[observed.index()].valuation.clone(),
                }],
                closed: false,
            });
        }
        for _ in 0..self.config.max_steps {
            match self.step() {
                StepOutcome::NoEnabledService => break,
                StepOutcome::Applied(service) => {
                    if !observable.contains(&service) {
                        continue;
                    }
                    let event = LocalEvent {
                        service,
                        valuation: self.instance.tasks[observed.index()].valuation.clone(),
                    };
                    match (&mut current, service) {
                        (None, ServiceRef::Opening(t)) if t == observed => {
                            current = Some(LocalRun {
                                task: observed,
                                events: vec![event],
                                closed: false,
                            });
                        }
                        (Some(run), ServiceRef::Closing(t)) if t == observed => {
                            run.events.push(event);
                            run.closed = true;
                            runs.push(current.take().expect("current run exists"));
                        }
                        (Some(run), _) => run.events.push(event),
                        (None, _) => {
                            // Observable event outside a local run of the task
                            // (e.g. before it opens); ignored.
                        }
                    }
                }
            }
        }
        if let Some(run) = current.take() {
            runs.push(run);
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SpecBuilder, TaskBuilder};
    use crate::condition::Term;
    use crate::instance::Tuple;
    use crate::schema::attr::data;
    use crate::schema::DatabaseSchema;

    /// A tiny one-task spec: a counter-ish status machine over one data
    /// variable with an artifact relation used as a pool.
    fn tiny_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        let pool = root.art_relation_like("POOL", &[status]);
        root.service_parts(
            "start",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "stash",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            Some(Update::Insert {
                rel: pool,
                vars: vec![status],
            }),
        );
        root.service_parts(
            "unstash",
            Condition::eq(Term::var(status), Term::Null),
            Condition::True,
            vec![],
            Some(Update::Retrieve {
                rel: pool,
                vars: vec![status],
            }),
        );
        SpecBuilder::new("tiny", db, root.build()).build().unwrap()
    }

    #[test]
    fn interpreter_runs_deterministically_for_a_seed() {
        let spec = tiny_spec();
        let db = DatabaseInstance::empty(spec.db.len());
        let config = RunConfig {
            seed: 42,
            max_steps: 50,
            ..RunConfig::default()
        };
        let trace1: Vec<ServiceRef> = {
            let mut i = Interpreter::new(&spec, &db, config).unwrap();
            (0..20)
                .filter_map(|_| match i.step() {
                    StepOutcome::Applied(s) => Some(s),
                    StepOutcome::NoEnabledService => None,
                })
                .collect()
        };
        let trace2: Vec<ServiceRef> = {
            let mut i = Interpreter::new(&spec, &db, config).unwrap();
            (0..20)
                .filter_map(|_| match i.step() {
                    StepOutcome::Applied(s) => Some(s),
                    StepOutcome::NoEnabledService => None,
                })
                .collect()
        };
        assert_eq!(trace1, trace2);
        assert!(!trace1.is_empty());
    }

    #[test]
    fn insert_then_retrieve_round_trips() {
        let spec = tiny_spec();
        let db = DatabaseInstance::empty(spec.db.len());
        let mut interp = Interpreter::new(&spec, &db, RunConfig::default()).unwrap();
        let root = spec.root();
        // start: status becomes "Working"
        assert!(interp
            .try_apply(ServiceRef::Internal {
                task: root,
                index: 0
            })
            .unwrap());
        assert_eq!(
            *interp.instance.value(root, VarId::new(0)),
            Value::str("Working")
        );
        // stash: tuple stored, status reset to null
        assert!(interp
            .try_apply(ServiceRef::Internal {
                task: root,
                index: 1
            })
            .unwrap());
        assert_eq!(interp.instance.stored_tuples(), 1);
        assert_eq!(*interp.instance.value(root, VarId::new(0)), Value::Null);
        // unstash: tuple comes back
        assert!(interp
            .try_apply(ServiceRef::Internal {
                task: root,
                index: 2
            })
            .unwrap());
        assert_eq!(interp.instance.stored_tuples(), 0);
        assert_eq!(
            *interp.instance.value(root, VarId::new(0)),
            Value::str("Working")
        );
    }

    #[test]
    fn retrieve_from_empty_pool_is_not_applicable() {
        let spec = tiny_spec();
        let db = DatabaseInstance::empty(spec.db.len());
        let mut interp = Interpreter::new(&spec, &db, RunConfig::default()).unwrap();
        let root = spec.root();
        assert!(!interp
            .try_apply(ServiceRef::Internal {
                task: root,
                index: 2
            })
            .unwrap());
    }

    #[test]
    fn unsatisfiable_global_pre_is_reported() {
        let mut spec = tiny_spec();
        spec.global_pre = Condition::False;
        let db = DatabaseInstance::empty(spec.db.len());
        assert!(Interpreter::new(&spec, &db, RunConfig::default()).is_err());
    }

    #[test]
    fn parent_child_open_close_cycle() {
        // Root with one child that sets an output and closes.
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let result = root.data_var("result");
        root.service_parts(
            "reset",
            Condition::neq(Term::var(result), Term::Null),
            Condition::eq(Term::var(result), Term::Null),
            vec![],
            None,
        );
        let mut builder = SpecBuilder::new("pc", db, root.build());
        let mut child = TaskBuilder::new("Child");
        let r = child.data_var("result");
        child.outputs([r]);
        child.opening_pre(Condition::True);
        child.closing_pre(Condition::neq(Term::var(r), Term::Null));
        child.service_parts(
            "work",
            Condition::True,
            Condition::eq(Term::var(r), Term::str("Done")),
            vec![],
            None,
        );
        let child_id = builder.add_child("Root", child.build()).unwrap();
        let spec = builder.build().unwrap();
        let dbi = DatabaseInstance::empty(spec.db.len());
        let mut interp = Interpreter::new(&spec, &dbi, RunConfig::default()).unwrap();

        assert!(interp.try_apply(ServiceRef::Opening(child_id)).unwrap());
        assert_eq!(interp.instance.stage(child_id), Stage::Active);
        // Closing requires result != null, so run the child's service first.
        assert!(!interp.try_apply(ServiceRef::Closing(child_id)).unwrap());
        assert!(interp
            .try_apply(ServiceRef::Internal {
                task: child_id,
                index: 0
            })
            .unwrap());
        assert!(interp.try_apply(ServiceRef::Closing(child_id)).unwrap());
        assert_eq!(interp.instance.stage(child_id), Stage::Inactive);
        // Output copied to the parent's same-named variable.
        assert_eq!(
            *interp.instance.value(spec.root(), VarId::new(0)),
            Value::str("Done")
        );
    }

    #[test]
    fn local_runs_of_root_are_collected() {
        let spec = tiny_spec();
        let db = DatabaseInstance::empty(spec.db.len());
        let config = RunConfig {
            seed: 7,
            max_steps: 30,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::new(&spec, &db, config).unwrap();
        let runs = interp.run_collecting_local_runs(spec.root());
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert!(!run.closed); // the root never closes
        assert!(run.events.len() > 1);
        assert_eq!(run.events[0].service, ServiceRef::Opening(spec.root()));
    }

    #[test]
    fn database_tuples_feed_id_variables() {
        // A service that requires looking up a database tuple.
        let mut db_schema = DatabaseSchema::new();
        let r = db_schema.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let x = root.id_var("x", r);
        let a = root.data_var("a");
        root.service_parts(
            "lookup",
            Condition::eq(Term::var(x), Term::Null),
            Condition::Rel {
                rel: r,
                id: Term::var(x),
                args: vec![Term::var(a)],
            },
            vec![],
            None,
        );
        let spec = SpecBuilder::new("db", db_schema, root.build())
            .build()
            .unwrap();
        let mut dbi = DatabaseInstance::empty(spec.db.len());
        dbi.insert(
            r,
            Tuple {
                id: 3,
                attrs: vec![Value::str("hello")],
            },
        );
        let mut interp = Interpreter::new(&spec, &dbi, RunConfig::default()).unwrap();
        assert!(interp
            .try_apply(ServiceRef::Internal {
                task: spec.root(),
                index: 0
            })
            .unwrap());
        assert_eq!(
            *interp.instance.value(spec.root(), VarId::new(0)),
            Value::Id(r, 3)
        );
        assert_eq!(
            *interp.instance.value(spec.root(), VarId::new(1)),
            Value::str("hello")
        );
    }
}
