//! Fluent builders for HAS\* specifications.
//!
//! Writing a specification directly against the raw structs requires
//! manual index bookkeeping.  [`TaskBuilder`] and [`SpecBuilder`] resolve
//! names to ids and wire up the hierarchy, following the paper's
//! convention that a child's input/output variables map to the parent
//! variables *of the same name* (Example 12, footnote 2) unless an explicit
//! mapping is given.

use crate::condition::{Condition, Term};
use crate::error::{ModelError, Result};
use crate::schema::{DatabaseSchema, RelId};
use crate::service::{InternalService, Update};
use crate::spec::HasSpec;
use crate::task::{ArtRelId, ArtRelation, Task, TaskId, VarId, VarType, Variable};

/// Builder for a single task.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    task: Task,
}

impl TaskBuilder {
    /// Start building a task with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskBuilder {
            task: Task::new(name),
        }
    }

    /// Declare a data-typed artifact variable and return its id.
    pub fn data_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId::new(self.task.vars.len() as u32);
        self.task.vars.push(Variable {
            name: name.into(),
            typ: VarType::Data,
        });
        id
    }

    /// Declare an ID-typed artifact variable referencing relation `rel`.
    pub fn id_var(&mut self, name: impl Into<String>, rel: RelId) -> VarId {
        let id = VarId::new(self.task.vars.len() as u32);
        self.task.vars.push(Variable {
            name: name.into(),
            typ: VarType::Id(rel),
        });
        id
    }

    /// Mark variables as input variables of the task.
    pub fn inputs(&mut self, vars: impl IntoIterator<Item = VarId>) -> &mut Self {
        self.task.input_vars.extend(vars);
        self
    }

    /// Mark variables as output variables of the task.
    pub fn outputs(&mut self, vars: impl IntoIterator<Item = VarId>) -> &mut Self {
        self.task.output_vars.extend(vars);
        self
    }

    /// Declare an artifact relation whose columns mirror the given task
    /// variables (same names and types), the common case in the paper's
    /// examples (e.g. `ORDERS(cust_id, item_id, status, instock)`).
    pub fn art_relation_like(&mut self, name: impl Into<String>, vars: &[VarId]) -> ArtRelId {
        let id = ArtRelId::new(self.task.art_relations.len() as u32);
        let columns = vars.iter().map(|v| self.task.var(*v).clone()).collect();
        self.task.art_relations.push(ArtRelation {
            name: name.into(),
            columns,
        });
        id
    }

    /// Declare an artifact relation with explicit columns.
    pub fn art_relation(
        &mut self,
        name: impl Into<String>,
        columns: Vec<(String, VarType)>,
    ) -> ArtRelId {
        let id = ArtRelId::new(self.task.art_relations.len() as u32);
        self.task.art_relations.push(ArtRelation {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(name, typ)| Variable { name, typ })
                .collect(),
        });
        id
    }

    /// Add an internal service.
    pub fn service(&mut self, svc: InternalService) -> &mut Self {
        self.task.services.push(svc);
        self
    }

    /// Add an internal service described by its parts.
    pub fn service_parts(
        &mut self,
        name: impl Into<String>,
        pre: Condition,
        post: Condition,
        propagated: Vec<VarId>,
        update: Option<Update>,
    ) -> &mut Self {
        self.task.services.push(InternalService {
            name: name.into(),
            pre,
            post,
            propagated,
            update,
        });
        self
    }

    /// Set the opening condition (over the parent's variables).
    pub fn opening_pre(&mut self, pre: Condition) -> &mut Self {
        self.task.opening.pre = pre;
        self
    }

    /// Set the closing condition (over this task's variables).
    pub fn closing_pre(&mut self, pre: Condition) -> &mut Self {
        self.task.closing.pre = pre;
        self
    }

    /// A term referring to the variable with the given name.
    ///
    /// # Panics
    /// Panics if the variable has not been declared; builders are used in
    /// test and benchmark code where an early panic is the useful
    /// behaviour.
    pub fn term(&self, name: &str) -> Term {
        Term::var(self.var(name))
    }

    /// The id of the variable with the given name.
    ///
    /// # Panics
    /// Panics if the variable has not been declared.
    pub fn var(&self, name: &str) -> VarId {
        self.task
            .var_by_name(name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("task {}: unknown variable {name:?}", self.task.name))
    }

    /// Finish building and return the task.
    pub fn build(self) -> Task {
        self.task
    }

    /// Access the task under construction.
    pub fn as_task(&self) -> &Task {
        &self.task
    }
}

/// Builder for a complete specification.
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    db: DatabaseSchema,
    tasks: Vec<Task>,
    global_pre: Condition,
}

impl SpecBuilder {
    /// Start a specification with the given name, database schema and root
    /// task.
    pub fn new(name: impl Into<String>, db: DatabaseSchema, root: Task) -> Self {
        SpecBuilder {
            name: name.into(),
            db,
            tasks: vec![root],
            global_pre: Condition::True,
        }
    }

    /// Set the global pre-condition `Π` (over the root task's variables).
    pub fn global_pre(&mut self, pre: Condition) -> &mut Self {
        self.global_pre = pre;
        self
    }

    /// Add `task` as a child of the task named `parent`, wiring its
    /// input/output variables to the parent variables with the same names.
    pub fn add_child(&mut self, parent: &str, task: Task) -> Result<TaskId> {
        self.add_child_with_maps(parent, task, None, None)
    }

    /// Add `task` as a child of `parent` with explicit input/output
    /// variable mappings given as `(child variable name, parent variable
    /// name)` pairs.  `None` falls back to the same-name convention.
    pub fn add_child_with_maps(
        &mut self,
        parent: &str,
        mut task: Task,
        input_map: Option<Vec<(String, String)>>,
        output_map: Option<Vec<(String, String)>>,
    ) -> Result<TaskId> {
        let (parent_id, _) = self
            .tasks
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == parent)
            .map(|(i, t)| (TaskId::new(i as u32), t))
            .ok_or_else(|| ModelError::UnknownName {
                kind: "task",
                name: parent.to_owned(),
            })?;
        let child_id = TaskId::new(self.tasks.len() as u32);
        task.parent = Some(parent_id);
        task.opening.input_map = self.resolve_map(&task, parent_id, &task.input_vars, input_map)?;
        task.closing.output_map =
            self.resolve_map(&task, parent_id, &task.output_vars, output_map)?;
        self.tasks[parent_id.index()].children.push(child_id);
        self.tasks.push(task);
        Ok(child_id)
    }

    fn resolve_map(
        &self,
        child: &Task,
        parent_id: TaskId,
        child_vars: &[VarId],
        explicit: Option<Vec<(String, String)>>,
    ) -> Result<Vec<(VarId, VarId)>> {
        let parent = &self.tasks[parent_id.index()];
        match explicit {
            Some(pairs) => pairs
                .into_iter()
                .map(|(cname, pname)| {
                    let (cv, _) =
                        child
                            .var_by_name(&cname)
                            .ok_or_else(|| ModelError::UnknownName {
                                kind: "variable",
                                name: format!("{}.{}", child.name, cname),
                            })?;
                    let (pv, _) =
                        parent
                            .var_by_name(&pname)
                            .ok_or_else(|| ModelError::UnknownName {
                                kind: "variable",
                                name: format!("{}.{}", parent.name, pname),
                            })?;
                    Ok((cv, pv))
                })
                .collect(),
            None => child_vars
                .iter()
                .map(|&cv| {
                    let cname = &child.var(cv).name;
                    let (pv, _) =
                        parent
                            .var_by_name(cname)
                            .ok_or_else(|| ModelError::UnknownName {
                                kind: "variable (same-name mapping)",
                                name: format!("{}.{}", parent.name, cname),
                            })?;
                    Ok((cv, pv))
                })
                .collect(),
        }
    }

    /// Finish building: validate and return the specification.
    pub fn build(self) -> Result<HasSpec> {
        let spec = HasSpec {
            name: self.name,
            db: self.db,
            tasks: self.tasks,
            global_pre: self.global_pre,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Finish building without validating (used by the synthetic generator,
    /// which validates separately and discards unsatisfiable specs).
    pub fn build_unchecked(self) -> HasSpec {
        HasSpec {
            name: self.name,
            db: self.db,
            tasks: self.tasks,
            global_pre: self.global_pre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::data;

    #[test]
    fn build_parent_child_with_same_name_wiring() {
        let mut db = DatabaseSchema::new();
        let r = db.add_relation("R", vec![data("a")]).unwrap();

        let mut root = TaskBuilder::new("Root");
        let x = root.id_var("x", r);
        let status = root.data_var("status");
        root.service_parts(
            "init",
            Condition::True,
            Condition::eq(Term::var(status), Term::str("Init")),
            vec![],
            None,
        );
        let _ = x;
        let mut builder = SpecBuilder::new("demo", db, root.build());

        let mut child = TaskBuilder::new("Child");
        let cx = child.id_var("x", r);
        child.inputs([cx]).outputs([cx]);
        child.opening_pre(Condition::True);
        child.closing_pre(Condition::neq(Term::var(cx), Term::Null));
        // Child declares x as input and output; wiring by name should hit
        // the parent's x.
        builder.add_child("Root", child.build()).unwrap();

        let spec = builder.build().unwrap();
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(
            spec.tasks[1].opening.input_map,
            vec![(VarId::new(0), VarId::new(0))]
        );
        assert_eq!(
            spec.tasks[1].closing.output_map,
            vec![(VarId::new(0), VarId::new(0))]
        );
        assert_eq!(spec.children(TaskId::new(0)), &[TaskId::new(1)]);
    }

    #[test]
    fn add_child_to_unknown_parent_fails() {
        let db = DatabaseSchema::new();
        let root = TaskBuilder::new("Root").build();
        let mut builder = SpecBuilder::new("demo", db, root);
        let child = TaskBuilder::new("Child").build();
        assert!(builder.add_child("Nope", child).is_err());
    }

    #[test]
    fn same_name_wiring_fails_when_parent_lacks_variable() {
        let db = DatabaseSchema::new();
        let root = TaskBuilder::new("Root").build();
        let mut builder = SpecBuilder::new("demo", db, root);
        let mut child = TaskBuilder::new("Child");
        let v = child.data_var("only_in_child");
        child.inputs([v]);
        assert!(builder.add_child("Root", child.build()).is_err());
    }

    #[test]
    fn explicit_mapping_overrides_names() {
        let db = DatabaseSchema::new();
        let mut root = TaskBuilder::new("Root");
        root.data_var("p");
        let mut builder = SpecBuilder::new("demo", db, root.build());
        let mut child = TaskBuilder::new("Child");
        let c = child.data_var("c");
        child.inputs([c]);
        builder
            .add_child_with_maps(
                "Root",
                child.build(),
                Some(vec![("c".into(), "p".into())]),
                None,
            )
            .unwrap();
        let spec = builder.build().unwrap();
        assert_eq!(
            spec.tasks[1].opening.input_map,
            vec![(VarId::new(0), VarId::new(0))]
        );
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn term_for_unknown_variable_panics() {
        let b = TaskBuilder::new("T");
        let _ = b.term("missing");
    }

    #[test]
    fn art_relation_like_copies_types() {
        let mut db = DatabaseSchema::new();
        let r = db.add_relation("R", vec![data("a")]).unwrap();
        let mut t = TaskBuilder::new("T");
        let a = t.id_var("a", r);
        let b = t.data_var("b");
        let rel = t.art_relation_like("POOL", &[a, b]);
        let task = t.build();
        assert_eq!(task.art_rel(rel).arity(), 2);
        assert_eq!(task.art_rel(rel).columns[0].typ, VarType::Id(r));
        assert_eq!(task.art_rel(rel).columns[1].typ, VarType::Data);
    }
}
