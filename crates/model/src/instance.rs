//! Concrete instances of database schemas and artifact schemas
//! (paper Definitions 7 and 14).

use crate::error::{ModelError, Result};
use crate::schema::{AttrKind, DatabaseSchema, RelId};
use crate::spec::HasSpec;
use crate::task::{ArtRelId, TaskId, VarId};
use crate::value::Value;

/// A tuple of a database relation: the key value plus the remaining
/// attribute values in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Key (`ID`) value of the tuple.
    pub id: u64,
    /// Values of the non-`ID` attributes, in declaration order.
    pub attrs: Vec<Value>,
}

/// A concrete instance of a database schema: a finite set of tuples per
/// relation, satisfying the key and foreign-key dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseInstance {
    relations: Vec<Vec<Tuple>>,
}

impl DatabaseInstance {
    /// An empty instance of a schema with `n` relations.
    pub fn empty(n: usize) -> Self {
        DatabaseInstance {
            relations: vec![Vec::new(); n],
        }
    }

    /// Insert a tuple into `rel`.  The caller is responsible for key
    /// uniqueness; [`DatabaseInstance::validate`] checks it after the fact.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) {
        if self.relations.len() <= rel.index() {
            self.relations.resize(rel.index() + 1, Vec::new());
        }
        self.relations[rel.index()].push(tuple);
    }

    /// Iterate over the tuples of `rel` (empty if the relation has no
    /// tuples or is unknown).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Tuple> {
        self.relations.get(rel.index()).into_iter().flatten()
    }

    /// Find the tuple of `rel` with the given key.
    pub fn get(&self, rel: RelId, id: u64) -> Option<&Tuple> {
        self.tuples(rel).find(|t| t.id == id)
    }

    /// Total number of tuples across relations.
    pub fn len(&self) -> usize {
        self.relations.iter().map(Vec::len).sum()
    }

    /// `true` iff the instance contains no tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All values of the active domain that have the given ID type, plus
    /// all data values appearing anywhere (used by the interpreter to draw
    /// candidate values).
    pub fn active_domain(&self) -> Vec<Value> {
        let mut out = Vec::new();
        for (rel_idx, tuples) in self.relations.iter().enumerate() {
            for t in tuples {
                out.push(Value::Id(RelId::new(rel_idx as u32), t.id));
                out.extend(t.attrs.iter().cloned());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Check the instance against a schema: attribute arity and types, key
    /// uniqueness and foreign-key (inclusion) dependencies.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        for (rel_id, rel) in schema.iter() {
            let mut keys = std::collections::HashSet::new();
            for tuple in self.tuples(rel_id) {
                if !keys.insert(tuple.id) {
                    return Err(ModelError::InvalidDatabase {
                        reason: format!("duplicate key {} in relation {}", tuple.id, rel.name),
                    });
                }
                if tuple.attrs.len() != rel.arity() {
                    return Err(ModelError::InvalidDatabase {
                        reason: format!(
                            "tuple of {} has {} attributes, expected {}",
                            rel.name,
                            tuple.attrs.len(),
                            rel.arity()
                        ),
                    });
                }
                for (attr, value) in rel.attrs.iter().zip(&tuple.attrs) {
                    match (&attr.kind, value) {
                        (_, Value::Null) => {
                            return Err(ModelError::InvalidDatabase {
                                reason: format!(
                                    "null value for {}.{} (nulls never occur in the database)",
                                    rel.name, attr.name
                                ),
                            })
                        }
                        (AttrKind::NonKey, Value::Data(_)) => {}
                        (AttrKind::ForeignKey(target), Value::Id(r, key)) if r == target => {
                            if self.get(*target, *key).is_none() {
                                return Err(ModelError::InvalidDatabase {
                                    reason: format!(
                                        "dangling foreign key {}.{} -> {}",
                                        rel.name,
                                        attr.name,
                                        schema.relation(*target).name
                                    ),
                                });
                            }
                        }
                        _ => {
                            return Err(ModelError::InvalidDatabase {
                                reason: format!(
                                    "value {value} has the wrong type for {}.{}",
                                    rel.name, attr.name
                                ),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Activation stage of a task within an artifact instance (Definition 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The task has been called and has not yet returned.
    Active,
    /// The task is not running.
    Inactive,
}

/// Per-task component of an artifact instance: the valuation of its
/// variables, its stage, and the contents of its artifact relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskState {
    /// Current values of the task's artifact variables, indexed by
    /// [`VarId`].
    pub valuation: Vec<Value>,
    /// Whether the task is currently active.
    pub stage: Stage,
    /// Contents of the task's artifact relations (sets of tuples), indexed
    /// by [`ArtRelId`].
    pub relations: Vec<Vec<Vec<Value>>>,
}

/// A concrete instance (snapshot) of an artifact schema: one [`TaskState`]
/// per task, sharing a fixed read-only database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInstance {
    /// Per-task state, indexed by [`TaskId`].
    pub tasks: Vec<TaskState>,
}

impl ArtifactInstance {
    /// The initial instance of a specification: every variable `null`,
    /// every artifact relation empty, the root task active and every other
    /// task inactive (Definition 14 — the interpreter subsequently adjusts
    /// the root valuation to satisfy the global pre-condition).
    pub fn initial(spec: &HasSpec) -> Self {
        ArtifactInstance {
            tasks: spec
                .iter_tasks()
                .map(|(tid, task)| TaskState {
                    valuation: vec![Value::Null; task.vars.len()],
                    stage: if tid == spec.root() {
                        Stage::Active
                    } else {
                        Stage::Inactive
                    },
                    relations: vec![Vec::new(); task.art_relations.len()],
                })
                .collect(),
        }
    }

    /// Value of a task variable.
    pub fn value(&self, task: TaskId, var: VarId) -> &Value {
        &self.tasks[task.index()].valuation[var.index()]
    }

    /// Set the value of a task variable.
    pub fn set_value(&mut self, task: TaskId, var: VarId, value: Value) {
        self.tasks[task.index()].valuation[var.index()] = value;
    }

    /// Stage of a task.
    pub fn stage(&self, task: TaskId) -> Stage {
        self.tasks[task.index()].stage
    }

    /// Set the stage of a task.
    pub fn set_stage(&mut self, task: TaskId, stage: Stage) {
        self.tasks[task.index()].stage = stage;
    }

    /// Contents of an artifact relation.
    pub fn relation(&self, task: TaskId, rel: ArtRelId) -> &[Vec<Value>] {
        &self.tasks[task.index()].relations[rel.index()]
    }

    /// Mutable contents of an artifact relation.
    pub fn relation_mut(&mut self, task: TaskId, rel: ArtRelId) -> &mut Vec<Vec<Value>> {
        &mut self.tasks[task.index()].relations[rel.index()]
    }

    /// Total number of tuples stored across all artifact relations.
    pub fn stored_tuples(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|t| t.relations.iter())
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::{data, fk};
    use crate::task::{Task, VarType, Variable};
    use crate::value::DataValue;

    fn schema() -> (DatabaseSchema, RelId, RelId) {
        let mut db = DatabaseSchema::new();
        let credit = db.add_relation("CREDIT", vec![data("status")]).unwrap();
        let cust = db
            .add_relation("CUSTOMERS", vec![data("name"), fk("record", credit)])
            .unwrap();
        (db, credit, cust)
    }

    #[test]
    fn database_instance_validation_accepts_consistent_data() {
        let (db, credit, cust) = schema();
        let mut inst = DatabaseInstance::empty(db.len());
        inst.insert(
            credit,
            Tuple {
                id: 1,
                attrs: vec![Value::str("Good")],
            },
        );
        inst.insert(
            cust,
            Tuple {
                id: 1,
                attrs: vec![Value::str("John"), Value::Id(credit, 1)],
            },
        );
        inst.validate(&db).unwrap();
        assert_eq!(inst.len(), 2);
        assert!(inst.get(cust, 1).is_some());
        assert!(inst.get(cust, 2).is_none());
        let adom = inst.active_domain();
        assert!(adom.contains(&Value::str("Good")));
        assert!(adom.contains(&Value::Id(credit, 1)));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let (db, credit, _) = schema();
        let mut inst = DatabaseInstance::empty(db.len());
        for _ in 0..2 {
            inst.insert(
                credit,
                Tuple {
                    id: 7,
                    attrs: vec![Value::str("Good")],
                },
            );
        }
        assert!(matches!(
            inst.validate(&db).unwrap_err(),
            ModelError::InvalidDatabase { .. }
        ));
    }

    #[test]
    fn dangling_foreign_keys_are_rejected() {
        let (db, credit, cust) = schema();
        let mut inst = DatabaseInstance::empty(db.len());
        inst.insert(
            cust,
            Tuple {
                id: 1,
                attrs: vec![Value::str("John"), Value::Id(credit, 99)],
            },
        );
        assert!(inst.validate(&db).is_err());
    }

    #[test]
    fn null_in_database_is_rejected() {
        let (db, credit, _) = schema();
        let mut inst = DatabaseInstance::empty(db.len());
        inst.insert(
            credit,
            Tuple {
                id: 1,
                attrs: vec![Value::Null],
            },
        );
        assert!(inst.validate(&db).is_err());
    }

    #[test]
    fn wrong_attribute_type_is_rejected() {
        let (db, credit, cust) = schema();
        let mut inst = DatabaseInstance::empty(db.len());
        inst.insert(
            credit,
            Tuple {
                id: 1,
                attrs: vec![Value::Data(DataValue::str("Good"))],
            },
        );
        inst.insert(
            cust,
            Tuple {
                id: 1,
                // name should be a data value, not an id.
                attrs: vec![Value::Id(credit, 1), Value::Id(credit, 1)],
            },
        );
        assert!(inst.validate(&db).is_err());
    }

    #[test]
    fn initial_artifact_instance_shape() {
        let (db, _, cust) = schema();
        let mut root = Task::new("Root");
        root.vars.push(Variable {
            name: "c".into(),
            typ: VarType::Id(cust),
        });
        let spec = HasSpec::new("s", db, root);
        let inst = ArtifactInstance::initial(&spec);
        assert_eq!(inst.stage(TaskId::new(0)), Stage::Active);
        assert_eq!(*inst.value(TaskId::new(0), VarId::new(0)), Value::Null);
        assert_eq!(inst.stored_tuples(), 0);
    }
}
