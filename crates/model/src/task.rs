//! Task schemas and artifact relations (paper Definitions 3–6).
//!
//! A *task* carries a tuple of artifact variables (ID-typed or data-typed),
//! distinguished subsequences of *input* and *output* variables, a set of
//! updatable *artifact relations*, a set of internal services and one
//! opening/closing service pair.  Tasks are organised in a rooted tree (the
//! hierarchy), encoded here by parent/children links; the root task has
//! index 0 in the specification.

use crate::schema::RelId;
use crate::service::{ClosingService, InternalService, OpeningService};
use std::fmt;

/// Index of an artifact variable within its task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Create a variable id from a raw index.
    pub fn new(index: u32) -> Self {
        VarId(index)
    }

    /// The raw index of this variable within its task.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The type of an artifact variable or artifact-relation column: either a
/// data value from `DOM_val` or an identifier of a specific relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarType {
    /// Data-valued (`DOM_val ∪ {null}`).
    Data,
    /// ID-valued for the given database relation (`Dom(R.ID) ∪ {null}`).
    Id(RelId),
}

/// An artifact variable (or artifact-relation column) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Variable name, unique within its task.
    pub name: String,
    /// The variable's type.
    pub typ: VarType,
}

/// Index of an artifact relation within its task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtRelId(u32);

impl ArtRelId {
    /// Create an artifact-relation id from a raw index.
    pub fn new(index: u32) -> Self {
        ArtRelId(index)
    }

    /// The raw index of this artifact relation within its task.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An updatable artifact relation of a task (the `S^T` of Definition 3).
///
/// Unlike database relations, artifact relations have no key; they are sets
/// of tuples inserted and retrieved by internal services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtRelation {
    /// Artifact-relation name, unique within its task.
    pub name: String,
    /// Column declarations (name + type) in positional order.
    pub columns: Vec<Variable>,
}

impl ArtRelation {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// Index of a task within a specification; the root task is always index 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u32);

impl TaskId {
    /// Create a task id from a raw index.
    pub fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// The id of the root task.
    pub const ROOT: TaskId = TaskId(0);

    /// The raw index of this task within its specification.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// A task schema (Definition 3) together with its services and its position
/// in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name, unique within the specification.
    pub name: String,
    /// Artifact variables of the task, in declaration order.
    pub vars: Vec<Variable>,
    /// Input variables (`x̄ᵀ_in`), initialised by the parent when the task
    /// opens.
    pub input_vars: Vec<VarId>,
    /// Output variables (`x̄ᵀ_out`), copied back to the parent when the
    /// task closes.
    pub output_vars: Vec<VarId>,
    /// Updatable artifact relations of the task.
    pub art_relations: Vec<ArtRelation>,
    /// Internal services of the task.
    pub services: Vec<InternalService>,
    /// The opening service (`σᵒ_T`); for the root task the pre-condition is
    /// `true` and the input map is empty.
    pub opening: OpeningService,
    /// The closing service (`σᶜ_T`); for the root task the pre-condition is
    /// `false` so it never fires.
    pub closing: ClosingService,
    /// Parent task, `None` for the root.
    pub parent: Option<TaskId>,
    /// Children tasks (subtasks).
    pub children: Vec<TaskId>,
}

impl Task {
    /// Create an empty task with the given name, a `true` opening
    /// condition and a `false` closing condition (root-task defaults).
    pub fn new(name: impl Into<String>) -> Self {
        Task {
            name: name.into(),
            vars: Vec::new(),
            input_vars: Vec::new(),
            output_vars: Vec::new(),
            art_relations: Vec::new(),
            services: Vec::new(),
            opening: OpeningService::default(),
            closing: ClosingService::default(),
            parent: None,
            children: Vec::new(),
        }
    }

    /// Number of artifact variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Iterate over `(VarId, &Variable)` pairs.
    pub fn iter_vars(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::new(i as u32), v))
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<(VarId, &Variable)> {
        self.iter_vars().find(|(_, v)| v.name == name)
    }

    /// Get a variable declaration by id.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// Look up an artifact relation by name.
    pub fn art_rel_by_name(&self, name: &str) -> Option<(ArtRelId, &ArtRelation)> {
        self.art_relations
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
            .map(|(i, r)| (ArtRelId::new(i as u32), r))
    }

    /// Get an artifact relation by id.
    pub fn art_rel(&self, id: ArtRelId) -> &ArtRelation {
        &self.art_relations[id.index()]
    }

    /// ID-typed variables of the task (`x̄ᵀ_id`).
    pub fn id_vars(&self) -> Vec<VarId> {
        self.iter_vars()
            .filter(|(_, v)| matches!(v.typ, VarType::Id(_)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Data-typed variables of the task (`x̄ᵀ_val`).
    pub fn data_vars(&self) -> Vec<VarId> {
        self.iter_vars()
            .filter(|(_, v)| v.typ == VarType::Data)
            .map(|(id, _)| id)
            .collect()
    }

    /// `true` iff the task declares `v` as an input variable.
    pub fn is_input(&self, v: VarId) -> bool {
        self.input_vars.contains(&v)
    }

    /// `true` iff the task declares `v` as an output variable.
    pub fn is_output(&self, v: VarId) -> bool {
        self.output_vars.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_variable_lookup() {
        let mut t = Task::new("ProcessOrders");
        t.vars.push(Variable {
            name: "cust_id".into(),
            typ: VarType::Id(RelId::new(0)),
        });
        t.vars.push(Variable {
            name: "status".into(),
            typ: VarType::Data,
        });
        assert_eq!(t.var_count(), 2);
        let (id, v) = t.var_by_name("status").unwrap();
        assert_eq!(id.index(), 1);
        assert_eq!(v.typ, VarType::Data);
        assert!(t.var_by_name("missing").is_none());
        assert_eq!(t.id_vars(), vec![VarId::new(0)]);
        assert_eq!(t.data_vars(), vec![VarId::new(1)]);
        assert_eq!(t.var(VarId::new(0)).name, "cust_id");
    }

    #[test]
    fn art_relation_lookup() {
        let mut t = Task::new("T");
        t.art_relations.push(ArtRelation {
            name: "ORDERS".into(),
            columns: vec![
                Variable {
                    name: "cust_id".into(),
                    typ: VarType::Id(RelId::new(0)),
                },
                Variable {
                    name: "status".into(),
                    typ: VarType::Data,
                },
            ],
        });
        let (id, r) = t.art_rel_by_name("ORDERS").unwrap();
        assert_eq!(id.index(), 0);
        assert_eq!(r.arity(), 2);
        assert_eq!(t.art_rel(id).name, "ORDERS");
        assert!(t.art_rel_by_name("POOL").is_none());
    }

    #[test]
    fn input_output_flags() {
        let mut t = Task::new("T");
        t.vars.push(Variable {
            name: "a".into(),
            typ: VarType::Data,
        });
        t.vars.push(Variable {
            name: "b".into(),
            typ: VarType::Data,
        });
        t.input_vars.push(VarId::new(0));
        t.output_vars.push(VarId::new(1));
        assert!(t.is_input(VarId::new(0)));
        assert!(!t.is_input(VarId::new(1)));
        assert!(t.is_output(VarId::new(1)));
    }

    #[test]
    fn ids_display() {
        assert_eq!(TaskId::new(0).to_string(), "T1");
        assert_eq!(VarId::new(3).to_string(), "x3");
        assert_eq!(TaskId::ROOT, TaskId::new(0));
    }
}
