//! Quantifier-free first-order conditions over a database schema
//! (paper Section 2, "conditions").
//!
//! A condition is a Boolean combination of
//!
//! * (in)equality atoms between terms (`x = y`, `x ≠ "Good"`, `x = null`),
//! * relational atoms `R(x, t₁, …, tₙ)` whose first argument is the key and
//!   whose remaining arguments follow the declared attribute order of `R`.
//!
//! Terms are artifact variables, constants from `DOM_val`, or `null`.
//! Conditions appear as pre/post conditions of services, as the global
//! pre-condition of a specification and as interpretations of the
//! propositions of LTL-FO properties; in the latter case terms may also
//! refer to the *global* (universally quantified) variables of the
//! property, which is why variable references carry a [`VarRef`] rather
//! than a bare [`VarId`].
//!
//! Following the paper, the semantics of relational atoms over `null` is
//! strict: if any argument is `null` the atom is false (`null` never occurs
//! in database relations).

use crate::error::{ModelError, Result};
use crate::instance::DatabaseInstance;
use crate::schema::{AttrKind, DatabaseSchema, RelId};
use crate::task::{Task, VarId, VarType};
use crate::value::{DataValue, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A reference to a variable usable in a condition: either an artifact
/// variable of the task the condition is attached to, or a global variable
/// of an LTL-FO property (Definition 29).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarRef {
    /// An artifact variable of the enclosing task.
    Task(VarId),
    /// A global (property-level, universally quantified) variable.
    Global(u32),
}

/// A term of a condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable reference.
    Var(VarRef),
    /// A constant data value.
    Const(DataValue),
    /// The special constant `null`.
    Null,
}

impl Term {
    /// A term referring to task variable `v`.
    pub fn var(v: VarId) -> Self {
        Term::Var(VarRef::Task(v))
    }

    /// A term referring to global property variable `g`.
    pub fn global(g: u32) -> Self {
        Term::Var(VarRef::Global(g))
    }

    /// A string-constant term.
    pub fn str(s: impl Into<String>) -> Self {
        Term::Const(DataValue::Str(s.into()))
    }

    /// An integer-constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(DataValue::Int(i))
    }
}

/// Comparison operator of an (in)equality atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality `=`.
    Eq,
    /// Disequality `≠`.
    Neq,
}

impl CmpOp {
    /// The opposite operator.
    pub fn negate(self) -> Self {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
        }
    }
}

/// A quantifier-free condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// The always-true condition.
    True,
    /// The always-false condition.
    False,
    /// Comparison atom `left op right`.
    Cmp(Term, CmpOp, Term),
    /// Relational atom `R(id, args…)`; `args` follow the attribute order of
    /// the relation (non-key and foreign-key attributes interleaved exactly
    /// as declared).
    Rel {
        /// The database relation.
        rel: RelId,
        /// Term bound to the key attribute `ID`.
        id: Term,
        /// Terms bound to the remaining attributes, in declaration order.
        args: Vec<Term>,
    },
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction of zero or more conditions (empty = true).
    And(Vec<Condition>),
    /// Disjunction of zero or more conditions (empty = false).
    Or(Vec<Condition>),
}

/// A literal: an atom or a negated relational atom, produced by
/// [`Condition::nnf`]/[`Condition::dnf`].  Negated comparisons are
/// normalised into the opposite operator, so only relational atoms carry an
/// explicit sign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// `left op right`.
    Cmp(Term, CmpOp, Term),
    /// `R(id, args…)` or its negation (when `positive` is false).
    Rel {
        /// The database relation.
        rel: RelId,
        /// Term bound to the key attribute.
        id: Term,
        /// Terms bound to the remaining attributes.
        args: Vec<Term>,
        /// Sign of the atom.
        positive: bool,
    },
}

impl Condition {
    /// Conjunction helper that flattens nested `And`s and drops `True`.
    pub fn and(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut out = Vec::new();
        for c in conds {
            match c {
                Condition::True => {}
                Condition::And(inner) => out.extend(inner),
                Condition::False => return Condition::False,
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Condition::True,
            1 => out.into_iter().next().expect("len checked"),
            _ => Condition::And(out),
        }
    }

    /// Disjunction helper that flattens nested `Or`s and drops `False`.
    pub fn or(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut out = Vec::new();
        for c in conds {
            match c {
                Condition::False => {}
                Condition::Or(inner) => out.extend(inner),
                Condition::True => return Condition::True,
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Condition::False,
            1 => out.into_iter().next().expect("len checked"),
            _ => Condition::Or(out),
        }
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Condition) -> Condition {
        match c {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner) => *inner,
            other => Condition::Not(Box::new(other)),
        }
    }

    /// Equality atom between two task variables.
    pub fn eq(a: Term, b: Term) -> Condition {
        Condition::Cmp(a, CmpOp::Eq, b)
    }

    /// Disequality atom between two terms.
    pub fn neq(a: Term, b: Term) -> Condition {
        Condition::Cmp(a, CmpOp::Neq, b)
    }

    /// Implication `a → b`, encoded as `¬a ∨ b`.
    pub fn implies(a: Condition, b: Condition) -> Condition {
        Condition::or([Condition::not(a), b])
    }

    /// Negation normal form: negations pushed to the atoms.  Negated
    /// comparisons flip the operator; negated relational atoms stay as
    /// negated atoms; `¬True = False` and vice versa.
    pub fn nnf(&self) -> Condition {
        fn go(c: &Condition, neg: bool) -> Condition {
            match c {
                Condition::True => {
                    if neg {
                        Condition::False
                    } else {
                        Condition::True
                    }
                }
                Condition::False => {
                    if neg {
                        Condition::True
                    } else {
                        Condition::False
                    }
                }
                Condition::Cmp(l, op, r) => {
                    let op = if neg { op.negate() } else { *op };
                    Condition::Cmp(l.clone(), op, r.clone())
                }
                Condition::Rel { rel, id, args } => {
                    let atom = Condition::Rel {
                        rel: *rel,
                        id: id.clone(),
                        args: args.clone(),
                    };
                    if neg {
                        Condition::Not(Box::new(atom))
                    } else {
                        atom
                    }
                }
                Condition::Not(inner) => go(inner, !neg),
                Condition::And(cs) => {
                    let parts: Vec<_> = cs.iter().map(|c| go(c, neg)).collect();
                    if neg {
                        Condition::or(parts)
                    } else {
                        Condition::and(parts)
                    }
                }
                Condition::Or(cs) => {
                    let parts: Vec<_> = cs.iter().map(|c| go(c, neg)).collect();
                    if neg {
                        Condition::and(parts)
                    } else {
                        Condition::or(parts)
                    }
                }
            }
        }
        go(self, false)
    }

    /// Disjunctive normal form as a set of conjuncts of literals
    /// (`conj(ϕ)` in Appendix A, without the relational-atom flattening
    /// which is performed by the symbolic layer).
    ///
    /// An empty outer vector means the condition is unsatisfiable
    /// (equivalent to `False`); a conjunct that is an empty vector is the
    /// trivially true conjunct.
    pub fn dnf(&self) -> Vec<Vec<Literal>> {
        fn go(c: &Condition) -> Vec<Vec<Literal>> {
            match c {
                Condition::True => vec![vec![]],
                Condition::False => vec![],
                Condition::Cmp(l, op, r) => vec![vec![Literal::Cmp(l.clone(), *op, r.clone())]],
                Condition::Rel { rel, id, args } => vec![vec![Literal::Rel {
                    rel: *rel,
                    id: id.clone(),
                    args: args.clone(),
                    positive: true,
                }]],
                Condition::Not(inner) => match inner.as_ref() {
                    Condition::Rel { rel, id, args } => vec![vec![Literal::Rel {
                        rel: *rel,
                        id: id.clone(),
                        args: args.clone(),
                        positive: false,
                    }]],
                    // nnf() guarantees negation only wraps relational atoms,
                    // but be defensive for hand-built conditions.
                    other => go(&Condition::not(other.clone()).nnf()),
                },
                Condition::And(cs) => {
                    let mut acc: Vec<Vec<Literal>> = vec![vec![]];
                    for part in cs {
                        let sub = go(part);
                        let mut next = Vec::with_capacity(acc.len() * sub.len());
                        for a in &acc {
                            for s in &sub {
                                let mut merged = a.clone();
                                merged.extend(s.iter().cloned());
                                next.push(merged);
                            }
                        }
                        acc = next;
                        if acc.is_empty() {
                            return acc;
                        }
                    }
                    acc
                }
                Condition::Or(cs) => cs.iter().flat_map(go).collect(),
            }
        }
        go(&self.nnf())
    }

    /// All variables referenced by the condition.
    pub fn variables(&self) -> BTreeSet<VarRef> {
        let mut out = BTreeSet::new();
        self.visit_terms(&mut |t| {
            if let Term::Var(v) = t {
                out.insert(*v);
            }
        });
        out
    }

    /// All task variables referenced by the condition.
    pub fn task_variables(&self) -> BTreeSet<VarId> {
        self.variables()
            .into_iter()
            .filter_map(|v| match v {
                VarRef::Task(id) => Some(id),
                VarRef::Global(_) => None,
            })
            .collect()
    }

    /// All constants appearing in the condition.
    pub fn constants(&self) -> BTreeSet<DataValue> {
        let mut out = BTreeSet::new();
        self.visit_terms(&mut |t| {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        });
        out
    }

    /// Visit every term of the condition.
    pub fn visit_terms(&self, f: &mut impl FnMut(&Term)) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Cmp(l, _, r) => {
                f(l);
                f(r);
            }
            Condition::Rel { id, args, .. } => {
                f(id);
                args.iter().for_each(&mut *f);
            }
            Condition::Not(c) => c.visit_terms(f),
            Condition::And(cs) | Condition::Or(cs) => cs.iter().for_each(|c| c.visit_terms(f)),
        }
    }

    /// All atomic sub-conditions (comparison and relational atoms),
    /// used by the benchmark property generator which draws FO
    /// interpretations from the sub-formulas of a specification.
    pub fn atoms(&self) -> Vec<Condition> {
        let mut out = Vec::new();
        fn go(c: &Condition, out: &mut Vec<Condition>) {
            match c {
                Condition::True | Condition::False => {}
                Condition::Cmp(..) | Condition::Rel { .. } => out.push(c.clone()),
                Condition::Not(inner) => go(inner, out),
                Condition::And(cs) | Condition::Or(cs) => cs.iter().for_each(|c| go(c, out)),
            }
        }
        go(self, &mut out);
        out
    }

    /// Number of atoms in the condition (size measure used by statistics).
    pub fn atom_count(&self) -> usize {
        match self {
            Condition::True | Condition::False => 0,
            Condition::Cmp(..) | Condition::Rel { .. } => 1,
            Condition::Not(c) => c.atom_count(),
            Condition::And(cs) | Condition::Or(cs) => cs.iter().map(|c| c.atom_count()).sum(),
        }
    }

    /// Type-check the condition against the variables of `task` and the
    /// (optional) types of the property's global variables.
    ///
    /// Rules (paper Section 2): in a relational atom
    /// `R(x, y₁…yₘ, z₁…zₙ)` the key position and foreign-key positions
    /// take ID-typed terms of the right relation, non-key positions take
    /// data-typed terms; constants are data values, so they cannot occur in
    /// ID positions; comparisons must compare terms of compatible types
    /// (`null` is compatible with everything).
    pub fn typecheck(
        &self,
        schema: &DatabaseSchema,
        task: &Task,
        global_types: &[VarType],
    ) -> Result<()> {
        let term_type = |t: &Term| -> Result<Option<VarType>> {
            match t {
                Term::Null => Ok(None),
                Term::Const(_) => Ok(Some(VarType::Data)),
                Term::Var(VarRef::Task(v)) => {
                    let idx = v.index();
                    if idx >= task.vars.len() {
                        return Err(ModelError::UnknownName {
                            kind: "variable",
                            name: format!("var#{idx} in task {}", task.name),
                        });
                    }
                    Ok(Some(task.vars[idx].typ))
                }
                Term::Var(VarRef::Global(g)) => {
                    let idx = *g as usize;
                    if idx >= global_types.len() {
                        return Err(ModelError::UnknownName {
                            kind: "global variable",
                            name: format!("global#{idx}"),
                        });
                    }
                    Ok(Some(global_types[idx]))
                }
            }
        };
        let compatible = |a: Option<VarType>, b: Option<VarType>| match (a, b) {
            (None, _) | (_, None) => true,
            (Some(x), Some(y)) => x == y,
        };
        match self {
            Condition::True | Condition::False => Ok(()),
            Condition::Cmp(l, _, r) => {
                let (tl, tr) = (term_type(l)?, term_type(r)?);
                if compatible(tl, tr) {
                    Ok(())
                } else {
                    Err(ModelError::TypeMismatch {
                        context: format!("comparison between {l:?} and {r:?}"),
                    })
                }
            }
            Condition::Rel { rel, id, args } => {
                let relation = schema.relation(*rel);
                if args.len() != relation.arity() {
                    return Err(ModelError::TypeMismatch {
                        context: format!(
                            "relation {} has arity {}, got {} arguments",
                            relation.name,
                            relation.arity(),
                            args.len()
                        ),
                    });
                }
                if !compatible(term_type(id)?, Some(VarType::Id(*rel))) {
                    return Err(ModelError::TypeMismatch {
                        context: format!("key position of {} bound to {id:?}", relation.name),
                    });
                }
                for (attr, arg) in relation.attrs.iter().zip(args) {
                    let expected = match attr.kind {
                        AttrKind::NonKey => VarType::Data,
                        AttrKind::ForeignKey(target) => VarType::Id(target),
                    };
                    if !compatible(term_type(arg)?, Some(expected)) {
                        return Err(ModelError::TypeMismatch {
                            context: format!(
                                "attribute {}.{} bound to {arg:?}",
                                relation.name, attr.name
                            ),
                        });
                    }
                }
                Ok(())
            }
            Condition::Not(c) => c.typecheck(schema, task, global_types),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.typecheck(schema, task, global_types)?;
                }
                Ok(())
            }
        }
    }

    /// Evaluate the condition on a concrete database instance under a
    /// valuation of the variables (used by the concrete interpreter and as
    /// a test oracle).
    ///
    /// Relational atoms with any `null` argument are false, as in the
    /// paper.
    pub fn eval_concrete(
        &self,
        db: &DatabaseInstance,
        valuation: &impl Fn(VarRef) -> Value,
    ) -> bool {
        let term_value = |t: &Term| -> Value {
            match t {
                Term::Null => Value::Null,
                Term::Const(c) => Value::Data(c.clone()),
                Term::Var(v) => valuation(*v),
            }
        };
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Cmp(l, op, r) => {
                let (lv, rv) = (term_value(l), term_value(r));
                match op {
                    CmpOp::Eq => lv == rv,
                    CmpOp::Neq => lv != rv,
                }
            }
            Condition::Rel { rel, id, args } => {
                let idv = term_value(id);
                let argvs: Vec<Value> = args.iter().map(term_value).collect();
                if idv.is_null() || argvs.iter().any(Value::is_null) {
                    return false;
                }
                db.tuples(*rel)
                    .any(|t| Value::Id(*rel, t.id) == idv && t.attrs == argvs)
            }
            Condition::Not(c) => !c.eval_concrete(db, valuation),
            Condition::And(cs) => cs.iter().all(|c| c.eval_concrete(db, valuation)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval_concrete(db, valuation)),
        }
    }

    /// Render the condition with task-variable names resolved through
    /// `task` (best effort; falls back to indices).
    pub fn display<'a>(&'a self, task: &'a Task) -> ConditionDisplay<'a> {
        ConditionDisplay { cond: self, task }
    }
}

/// Helper returned by [`Condition::display`].
pub struct ConditionDisplay<'a> {
    cond: &'a Condition,
    task: &'a Task,
}

impl fmt::Display for ConditionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn term(t: &Term, task: &Task, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Term::Null => write!(f, "null"),
                Term::Const(c) => write!(f, "{c}"),
                Term::Var(VarRef::Task(v)) => {
                    if v.index() < task.vars.len() {
                        write!(f, "{}", task.vars[v.index()].name)
                    } else {
                        write!(f, "var#{}", v.index())
                    }
                }
                Term::Var(VarRef::Global(g)) => write!(f, "$g{g}"),
            }
        }
        fn go(c: &Condition, task: &Task, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Condition::True => write!(f, "true"),
                Condition::False => write!(f, "false"),
                Condition::Cmp(l, op, r) => {
                    term(l, task, f)?;
                    write!(f, " {} ", if *op == CmpOp::Eq { "=" } else { "≠" })?;
                    term(r, task, f)
                }
                Condition::Rel { rel, id, args } => {
                    write!(f, "R{}(", rel.index())?;
                    term(id, task, f)?;
                    for a in args {
                        write!(f, ", ")?;
                        term(a, task, f)?;
                    }
                    write!(f, ")")
                }
                Condition::Not(c) => {
                    write!(f, "¬(")?;
                    go(c, task, f)?;
                    write!(f, ")")
                }
                Condition::And(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        go(c, task, f)?;
                    }
                    write!(f, ")")
                }
                Condition::Or(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        go(c, task, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(self.cond, self.task, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Task, VarId, Variable};

    fn var(i: u32) -> Term {
        Term::var(VarId::new(i))
    }

    fn dummy_task(n: usize) -> Task {
        let mut t = Task::new("T");
        for i in 0..n {
            t.vars.push(Variable {
                name: format!("x{i}"),
                typ: VarType::Data,
            });
        }
        t
    }

    #[test]
    fn and_or_flatten_and_short_circuit() {
        let a = Condition::eq(var(0), Term::str("a"));
        let b = Condition::neq(var(1), Term::Null);
        assert_eq!(Condition::and([]), Condition::True);
        assert_eq!(Condition::or([]), Condition::False);
        assert_eq!(Condition::and([Condition::True, a.clone()]), a);
        assert_eq!(Condition::or([Condition::False, b.clone()]), b);
        assert_eq!(
            Condition::and([a.clone(), Condition::False, b.clone()]),
            Condition::False
        );
        assert_eq!(Condition::or([a.clone(), Condition::True]), Condition::True);
        // Nested And flattening.
        let nested = Condition::and([Condition::and([a.clone(), b.clone()]), a.clone()]);
        assert_eq!(nested.atom_count(), 3);
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let a = Condition::eq(var(0), var(1));
        let b = Condition::Rel {
            rel: RelId::new(0),
            id: var(0),
            args: vec![var(1)],
        };
        let c = Condition::not(Condition::and([a.clone(), b.clone()]));
        let nnf = c.nnf();
        // ¬(a ∧ b) = ¬a ∨ ¬b; ¬(x=y) becomes x≠y, ¬R stays wrapped.
        match nnf {
            Condition::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0], Condition::neq(var(0), var(1)));
                assert!(matches!(parts[1], Condition::Not(_)));
            }
            other => panic!("unexpected NNF: {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let a = Condition::eq(var(0), Term::str("a"));
        let c = Condition::not(Condition::not(a.clone()));
        assert_eq!(c.nnf(), a);
    }

    #[test]
    fn dnf_of_conjunction_of_disjunctions() {
        let a = Condition::eq(var(0), Term::str("a"));
        let b = Condition::eq(var(1), Term::str("b"));
        let c = Condition::eq(var(2), Term::str("c"));
        let d = Condition::eq(var(3), Term::str("d"));
        // (a ∨ b) ∧ (c ∨ d) -> 4 conjuncts of 2 literals each
        let cond = Condition::and([Condition::or([a, b]), Condition::or([c, d])]);
        let dnf = cond.dnf();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|conj| conj.len() == 2));
    }

    #[test]
    fn dnf_of_true_false() {
        assert_eq!(Condition::True.dnf(), vec![vec![]]);
        assert!(Condition::False.dnf().is_empty());
        let a = Condition::eq(var(0), Term::Null);
        assert!(Condition::and([a.clone(), Condition::False])
            .dnf()
            .is_empty());
    }

    #[test]
    fn dnf_negated_relational_atom_keeps_sign() {
        let r = Condition::Rel {
            rel: RelId::new(1),
            id: var(0),
            args: vec![var(1), var(2)],
        };
        let dnf = Condition::not(r).dnf();
        assert_eq!(dnf.len(), 1);
        match &dnf[0][0] {
            Literal::Rel { positive, .. } => assert!(!positive),
            other => panic!("unexpected literal: {other:?}"),
        }
    }

    #[test]
    fn implication_encoding() {
        let a = Condition::eq(var(0), Term::str("a"));
        let b = Condition::eq(var(1), Term::str("b"));
        let imp = Condition::implies(a, b);
        // ¬a ∨ b has two DNF conjuncts.
        assert_eq!(imp.dnf().len(), 2);
    }

    #[test]
    fn variables_and_constants_are_collected() {
        let c = Condition::and([
            Condition::eq(var(0), Term::str("Good")),
            Condition::Rel {
                rel: RelId::new(0),
                id: var(1),
                args: vec![Term::global(0), Term::int(5)],
            },
        ]);
        let vars = c.variables();
        assert!(vars.contains(&VarRef::Task(VarId::new(0))));
        assert!(vars.contains(&VarRef::Task(VarId::new(1))));
        assert!(vars.contains(&VarRef::Global(0)));
        assert_eq!(c.task_variables().len(), 2);
        let consts = c.constants();
        assert!(consts.contains(&DataValue::str("Good")));
        assert!(consts.contains(&DataValue::int(5)));
        assert_eq!(c.atoms().len(), 2);
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn eval_concrete_comparisons() {
        let db = DatabaseInstance::default();
        let values = [Value::str("Good"), Value::Null];
        let lookup = |v: VarRef| match v {
            VarRef::Task(id) => values[id.index()].clone(),
            VarRef::Global(_) => Value::Null,
        };
        assert!(Condition::eq(var(0), Term::str("Good")).eval_concrete(&db, &lookup));
        assert!(Condition::neq(var(0), Term::str("Bad")).eval_concrete(&db, &lookup));
        assert!(Condition::eq(var(1), Term::Null).eval_concrete(&db, &lookup));
        assert!(!Condition::eq(var(0), var(1)).eval_concrete(&db, &lookup));
        assert!(Condition::not(Condition::eq(var(0), var(1))).eval_concrete(&db, &lookup));
    }

    #[test]
    fn display_uses_variable_names() {
        let task = dummy_task(2);
        let c = Condition::and([
            Condition::eq(var(0), Term::str("a")),
            Condition::neq(var(1), Term::Null),
        ]);
        let s = format!("{}", c.display(&task));
        assert!(s.contains("x0"));
        assert!(s.contains("x1"));
        assert!(s.contains('∧'));
    }
}
