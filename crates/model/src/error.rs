//! Error type shared by the model crate.

use std::fmt;

/// Errors raised while building or validating a HAS\* specification, or
/// while executing its concrete semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The foreign-key graph of the database schema contains a cycle.
    CyclicForeignKeys { cycle: Vec<String> },
    /// A name (relation, attribute, task, variable, service…) was not found.
    UnknownName { kind: &'static str, name: String },
    /// A name is declared twice in the same scope.
    DuplicateName { kind: &'static str, name: String },
    /// A term or variable is used at a type it does not have.
    TypeMismatch { context: String },
    /// The task hierarchy is not a rooted tree.
    MalformedHierarchy { reason: String },
    /// A service definition violates a structural restriction of HAS\*
    /// (e.g. an update combined with propagation of non-input variables).
    InvalidService {
        task: String,
        service: String,
        reason: String,
    },
    /// A specification-level well-formedness violation.
    InvalidSpec { reason: String },
    /// A concrete transition was requested that is not enabled.
    TransitionNotEnabled { service: String, reason: String },
    /// A database instance violates a key or foreign-key dependency.
    InvalidDatabase { reason: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicForeignKeys { cycle } => {
                write!(f, "cyclic foreign keys: {}", cycle.join(" -> "))
            }
            ModelError::UnknownName { kind, name } => write!(f, "unknown {kind}: {name:?}"),
            ModelError::DuplicateName { kind, name } => write!(f, "duplicate {kind}: {name:?}"),
            ModelError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            ModelError::MalformedHierarchy { reason } => {
                write!(f, "malformed task hierarchy: {reason}")
            }
            ModelError::InvalidService {
                task,
                service,
                reason,
            } => write!(f, "invalid service {service:?} of task {task:?}: {reason}"),
            ModelError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
            ModelError::TransitionNotEnabled { service, reason } => {
                write!(f, "service {service:?} is not enabled: {reason}")
            }
            ModelError::InvalidDatabase { reason } => write!(f, "invalid database: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used across the model crate.
pub type Result<T> = std::result::Result<T, ModelError>;
