//! Well-formedness validation of HAS\* specifications.
//!
//! The checks implement the structural restrictions of Definitions 1–13 and
//! Appendix A Definition 26 of the paper:
//!
//! * the database schema is acyclic,
//! * the tasks form a rooted tree with consistent parent/children links,
//! * names are unique in their scope and all conditions type-check,
//! * internal services propagate at least their task's input variables and,
//!   when they carry an artifact-relation update, propagate *exactly* the
//!   input variables (Definition 10),
//! * update tuples match the column types of their artifact relation,
//! * opening/closing services use 1-1, type-correct variable mappings and
//!   returned variables do not overlap the parent's input variables,
//! * the root task's opening condition is `true` and its closing condition
//!   is `false` (so the root never returns).

use crate::condition::{Condition, VarRef};
use crate::error::{ModelError, Result};
use crate::spec::HasSpec;
use crate::task::{Task, TaskId, VarId, VarType};
use std::collections::{BTreeSet, HashSet};

/// Validate a full specification.  Returns the first violation found.
pub fn validate_spec(spec: &HasSpec) -> Result<()> {
    spec.db.validate()?;
    validate_hierarchy(spec)?;
    let mut task_names = HashSet::new();
    for (tid, task) in spec.iter_tasks() {
        if !task_names.insert(task.name.clone()) {
            return Err(ModelError::DuplicateName {
                kind: "task",
                name: task.name.clone(),
            });
        }
        validate_task(spec, tid, task)?;
    }
    // Global pre-condition ranges over the root task's variables only.
    let root = spec.task(spec.root());
    spec.global_pre.typecheck(&spec.db, root, &[])?;
    ensure_no_globals(&spec.global_pre, "global pre-condition")?;
    Ok(())
}

fn validate_hierarchy(spec: &HasSpec) -> Result<()> {
    if spec.tasks.is_empty() {
        return Err(ModelError::MalformedHierarchy {
            reason: "specification has no task".into(),
        });
    }
    if spec.tasks[0].parent.is_some() {
        return Err(ModelError::MalformedHierarchy {
            reason: "root task must have no parent".into(),
        });
    }
    for (tid, task) in spec.iter_tasks() {
        if tid != spec.root() && task.parent.is_none() {
            return Err(ModelError::MalformedHierarchy {
                reason: format!("task {} has no parent", task.name),
            });
        }
        for &child in &task.children {
            if child.index() >= spec.tasks.len() {
                return Err(ModelError::MalformedHierarchy {
                    reason: format!("task {} lists an unknown child", task.name),
                });
            }
            if spec.task(child).parent != Some(tid) {
                return Err(ModelError::MalformedHierarchy {
                    reason: format!(
                        "task {} lists child {} whose parent pointer disagrees",
                        task.name,
                        spec.task(child).name
                    ),
                });
            }
        }
        if let Some(parent) = task.parent {
            if parent.index() >= spec.tasks.len() || !spec.task(parent).children.contains(&tid) {
                return Err(ModelError::MalformedHierarchy {
                    reason: format!(
                        "task {} has parent {} which does not list it as a child",
                        task.name,
                        parent.index()
                    ),
                });
            }
        }
    }
    // Every task must be reachable from the root (tree, not forest), and
    // the parent links must be acyclic.
    let mut seen = vec![false; spec.tasks.len()];
    let mut stack = vec![spec.root()];
    seen[0] = true;
    while let Some(t) = stack.pop() {
        for &c in spec.children(t) {
            if seen[c.index()] {
                return Err(ModelError::MalformedHierarchy {
                    reason: format!("task {} is reachable twice", spec.task(c).name),
                });
            }
            seen[c.index()] = true;
            stack.push(c);
        }
    }
    if let Some(pos) = seen.iter().position(|s| !s) {
        return Err(ModelError::MalformedHierarchy {
            reason: format!(
                "task {} is not reachable from the root",
                spec.tasks[pos].name
            ),
        });
    }
    Ok(())
}

fn validate_task(spec: &HasSpec, tid: TaskId, task: &Task) -> Result<()> {
    // Unique variable and artifact-relation names.
    let mut names = HashSet::new();
    for v in &task.vars {
        if !names.insert(v.name.clone()) {
            return Err(ModelError::DuplicateName {
                kind: "variable",
                name: format!("{}.{}", task.name, v.name),
            });
        }
        if let VarType::Id(rel) = v.typ {
            if rel.index() >= spec.db.len() {
                return Err(ModelError::UnknownName {
                    kind: "relation (variable type)",
                    name: format!("{}.{}", task.name, v.name),
                });
            }
        }
    }
    let mut rel_names = HashSet::new();
    for r in &task.art_relations {
        if !rel_names.insert(r.name.clone()) {
            return Err(ModelError::DuplicateName {
                kind: "artifact relation",
                name: format!("{}.{}", task.name, r.name),
            });
        }
    }
    // Input/output variables exist and are distinct.
    for list in [&task.input_vars, &task.output_vars] {
        let mut seen = BTreeSet::new();
        for &v in list {
            if v.index() >= task.vars.len() {
                return Err(ModelError::UnknownName {
                    kind: "variable",
                    name: format!("{}.var#{}", task.name, v.index()),
                });
            }
            if !seen.insert(v) {
                return Err(ModelError::InvalidSpec {
                    reason: format!(
                        "task {}: variable {} listed twice as input/output",
                        task.name,
                        task.var(v).name
                    ),
                });
            }
        }
    }
    // Root task conventions.
    if tid == spec.root() {
        if task.opening.pre != Condition::True {
            return Err(ModelError::InvalidSpec {
                reason: "the root task's opening condition must be true".into(),
            });
        }
        if task.closing.pre != Condition::False {
            return Err(ModelError::InvalidSpec {
                reason: "the root task's closing condition must be false".into(),
            });
        }
        if !task.input_vars.is_empty() || !task.output_vars.is_empty() {
            return Err(ModelError::InvalidSpec {
                reason: "the root task cannot have input or output variables".into(),
            });
        }
    }
    // Internal services.
    let mut svc_names = HashSet::new();
    for svc in &task.services {
        if !svc_names.insert(svc.name.clone()) {
            return Err(ModelError::DuplicateName {
                kind: "service",
                name: format!("{}.{}", task.name, svc.name),
            });
        }
        let invalid = |reason: String| ModelError::InvalidService {
            task: task.name.clone(),
            service: svc.name.clone(),
            reason,
        };
        svc.pre.typecheck(&spec.db, task, &[])?;
        svc.post.typecheck(&spec.db, task, &[])?;
        ensure_no_globals(&svc.pre, "service pre-condition")?;
        ensure_no_globals(&svc.post, "service post-condition")?;
        // Propagated variables exist and include the input variables.
        for &v in &svc.propagated {
            if v.index() >= task.vars.len() {
                return Err(invalid(format!(
                    "propagated variable #{} unknown",
                    v.index()
                )));
            }
        }
        let propagated: BTreeSet<VarId> = svc.propagated.iter().copied().collect();
        let inputs: BTreeSet<VarId> = task.input_vars.iter().copied().collect();
        if !inputs.is_subset(&propagated) && !task.input_vars.is_empty() {
            return Err(invalid(
                "propagated variables must include the task's input variables".into(),
            ));
        }
        if let Some(update) = &svc.update {
            // Definition 10: with an update, exactly the input variables propagate.
            if propagated != inputs {
                return Err(invalid(
                    "a service with an artifact-relation update must propagate exactly the input variables"
                        .into(),
                ));
            }
            let rel_id = update.relation();
            if rel_id.index() >= task.art_relations.len() {
                return Err(invalid(format!(
                    "unknown artifact relation #{}",
                    rel_id.index()
                )));
            }
            let rel = task.art_rel(rel_id);
            if update.vars().len() != rel.arity() {
                return Err(invalid(format!(
                    "update tuple has {} variables, artifact relation {} has arity {}",
                    update.vars().len(),
                    rel.name,
                    rel.arity()
                )));
            }
            for (v, col) in update.vars().iter().zip(&rel.columns) {
                if v.index() >= task.vars.len() {
                    return Err(invalid(format!("update variable #{} unknown", v.index())));
                }
                if task.var(*v).typ != col.typ {
                    return Err(invalid(format!(
                        "update variable {} has a different type than column {} of {}",
                        task.var(*v).name,
                        col.name,
                        rel.name
                    )));
                }
            }
        }
    }
    // Opening / closing services of non-root tasks.
    if let Some(parent_id) = task.parent {
        let parent = spec.task(parent_id);
        task.opening.pre.typecheck(&spec.db, parent, &[])?;
        ensure_no_globals(&task.opening.pre, "opening condition")?;
        task.closing.pre.typecheck(&spec.db, task, &[])?;
        ensure_no_globals(&task.closing.pre, "closing condition")?;
        validate_mapping(
            spec,
            task,
            parent,
            &task.opening.input_map,
            &task.input_vars,
            true,
        )?;
        validate_mapping(
            spec,
            task,
            parent,
            &task.closing.output_map,
            &task.output_vars,
            false,
        )?;
        // Returned parent variables must not overlap the parent's input variables.
        let parent_inputs: BTreeSet<VarId> = parent.input_vars.iter().copied().collect();
        for (_, pv) in &task.closing.output_map {
            if parent_inputs.contains(pv) {
                return Err(ModelError::InvalidSpec {
                    reason: format!(
                        "task {}: output variable returned into {}'s input variable {}",
                        task.name,
                        parent.name,
                        parent.var(*pv).name
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Check that `map` is a 1-1, type-correct mapping covering exactly
/// `expected_child_vars` on the child side.
fn validate_mapping(
    _spec: &HasSpec,
    child: &Task,
    parent: &Task,
    map: &[(VarId, VarId)],
    expected_child_vars: &[VarId],
    is_input: bool,
) -> Result<()> {
    let kind = if is_input { "input" } else { "output" };
    let mut child_side = BTreeSet::new();
    let mut parent_side = BTreeSet::new();
    for (cv, pv) in map {
        if cv.index() >= child.vars.len() {
            return Err(ModelError::UnknownName {
                kind: "variable",
                name: format!("{}.var#{} ({kind} map)", child.name, cv.index()),
            });
        }
        if pv.index() >= parent.vars.len() {
            return Err(ModelError::UnknownName {
                kind: "variable",
                name: format!("{}.var#{} ({kind} map)", parent.name, pv.index()),
            });
        }
        if !child_side.insert(*cv) || !parent_side.insert(*pv) {
            return Err(ModelError::InvalidSpec {
                reason: format!(
                    "task {}: {kind} variable mapping is not one-to-one",
                    child.name
                ),
            });
        }
        if child.var(*cv).typ != parent.var(*pv).typ {
            return Err(ModelError::TypeMismatch {
                context: format!(
                    "{kind} mapping {}.{} ↦ {}.{}",
                    child.name,
                    child.var(*cv).name,
                    parent.name,
                    parent.var(*pv).name
                ),
            });
        }
    }
    let expected: BTreeSet<VarId> = expected_child_vars.iter().copied().collect();
    if child_side != expected {
        return Err(ModelError::InvalidSpec {
            reason: format!(
                "task {}: the {kind} mapping must cover exactly the declared {kind} variables",
                child.name
            ),
        });
    }
    Ok(())
}

fn ensure_no_globals(cond: &Condition, what: &str) -> Result<()> {
    if cond
        .variables()
        .iter()
        .any(|v| matches!(v, VarRef::Global(_)))
    {
        return Err(ModelError::InvalidSpec {
            reason: format!("{what} may not mention property-global variables"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Term;
    use crate::schema::attr::data;
    use crate::schema::DatabaseSchema;
    use crate::service::{InternalService, Update};
    use crate::task::{ArtRelId, ArtRelation, Variable};

    fn base_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = Task::new("Root");
        root.vars.push(Variable {
            name: "x".into(),
            typ: VarType::Data,
        });
        root.vars.push(Variable {
            name: "y".into(),
            typ: VarType::Data,
        });
        root.services.push(InternalService::new("s"));
        HasSpec::new("spec", db, root)
    }

    #[test]
    fn valid_single_task_spec() {
        base_spec().validate().unwrap();
    }

    #[test]
    fn duplicate_variable_name_rejected() {
        let mut spec = base_spec();
        spec.tasks[0].vars.push(Variable {
            name: "x".into(),
            typ: VarType::Data,
        });
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::DuplicateName {
                kind: "variable",
                ..
            }
        ));
    }

    #[test]
    fn root_closing_must_be_false() {
        let mut spec = base_spec();
        spec.tasks[0].closing.pre = Condition::True;
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn update_requires_exact_input_propagation() {
        let mut spec = base_spec();
        spec.tasks[0].art_relations.push(ArtRelation {
            name: "S".into(),
            columns: vec![Variable {
                name: "x".into(),
                typ: VarType::Data,
            }],
        });
        let mut svc = InternalService::new("store");
        svc.update = Some(Update::Insert {
            rel: ArtRelId::new(0),
            vars: vec![VarId::new(0)],
        });
        // Propagating a non-input variable together with an update violates Def. 10.
        svc.propagated = vec![VarId::new(1)];
        spec.tasks[0].services.push(svc);
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::InvalidService { .. }
        ));
    }

    #[test]
    fn update_arity_mismatch_rejected() {
        let mut spec = base_spec();
        spec.tasks[0].art_relations.push(ArtRelation {
            name: "S".into(),
            columns: vec![
                Variable {
                    name: "c0".into(),
                    typ: VarType::Data,
                },
                Variable {
                    name: "c1".into(),
                    typ: VarType::Data,
                },
            ],
        });
        let mut svc = InternalService::new("store");
        svc.update = Some(Update::Insert {
            rel: ArtRelId::new(0),
            vars: vec![VarId::new(0)],
        });
        spec.tasks[0].services.push(svc);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn child_mapping_must_cover_inputs() {
        let mut spec = base_spec();
        let mut child = Task::new("Child");
        child.vars.push(Variable {
            name: "in".into(),
            typ: VarType::Data,
        });
        child.input_vars.push(VarId::new(0));
        child.parent = Some(TaskId::new(0));
        // Empty input map although an input variable is declared.
        spec.tasks.push(child);
        spec.tasks[0].children.push(TaskId::new(1));
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn child_output_cannot_target_parent_input() {
        let mut spec = base_spec();
        // Give the root an "input" variable: not allowed for root, so use a
        // deeper hierarchy: Root -> Mid -> Leaf, where Leaf returns into
        // Mid's input variable.
        let mut mid = Task::new("Mid");
        mid.vars.push(Variable {
            name: "m".into(),
            typ: VarType::Data,
        });
        mid.input_vars.push(VarId::new(0));
        mid.parent = Some(TaskId::new(0));
        mid.opening.input_map = vec![(VarId::new(0), VarId::new(0))];
        spec.tasks.push(mid);
        spec.tasks[0].children.push(TaskId::new(1));

        let mut leaf = Task::new("Leaf");
        leaf.vars.push(Variable {
            name: "l".into(),
            typ: VarType::Data,
        });
        leaf.output_vars.push(VarId::new(0));
        leaf.parent = Some(TaskId::new(1));
        leaf.closing.output_map = vec![(VarId::new(0), VarId::new(0))]; // Mid's input var!
        spec.tasks.push(leaf);
        spec.tasks[1].children.push(TaskId::new(2));

        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn inconsistent_parent_pointer_rejected() {
        let mut spec = base_spec();
        let mut child = Task::new("Child");
        child.parent = None; // missing parent pointer
        spec.tasks.push(child);
        spec.tasks[0].children.push(TaskId::new(1));
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::MalformedHierarchy { .. }
        ));
    }

    #[test]
    fn condition_type_errors_are_caught() {
        let mut spec = base_spec();
        // x is data-typed; compare it against an ID position of R.
        spec.tasks[0].services[0].pre = Condition::Rel {
            rel: crate::schema::RelId::new(0),
            id: Term::var(VarId::new(0)),
            args: vec![Term::str("v")],
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ModelError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn global_vars_forbidden_in_spec_conditions() {
        let mut spec = base_spec();
        spec.tasks[0].services[0].pre = Condition::eq(Term::global(0), Term::str("a"));
        assert!(spec.validate().is_err());
    }
}
