//! Services: internal, opening and closing (paper Definition 10 and
//! Appendix A Definition 26).
//!
//! * An **internal service** of a task is guarded by a pre-condition over
//!   the task's variables, constrains the *next* values of the variables by
//!   a post-condition, propagates (keeps unchanged) a declared subset of
//!   variables, and may perform at most one artifact-relation update: an
//!   insertion `+S(z̄)` or a retrieval `−S(z̄)`.  When an update is present
//!   the propagated set must be exactly the task's input variables
//!   (Definition 10).
//! * The **opening service** of a (non-root) task is guarded by a condition
//!   over the *parent's* variables and passes parameters to the child's
//!   input variables.
//! * The **closing service** of a task is guarded by a condition over the
//!   task's own variables and copies its output variables back into
//!   variables of the parent.

use crate::condition::Condition;
use crate::task::{ArtRelId, TaskId, VarId};
use std::fmt;

/// The artifact-relation update of an internal service (`δ` in
/// Definition 10): at most one insertion or retrieval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Update {
    /// `+S(z̄)`: insert the current values of `vars` into artifact relation
    /// `rel`.
    Insert {
        /// Target artifact relation.
        rel: ArtRelId,
        /// Task variables providing the inserted tuple, in column order.
        vars: Vec<VarId>,
    },
    /// `−S(z̄)`: nondeterministically choose and remove a tuple from `rel`,
    /// assigning it to `vars`.
    Retrieve {
        /// Source artifact relation.
        rel: ArtRelId,
        /// Task variables receiving the retrieved tuple, in column order.
        vars: Vec<VarId>,
    },
}

impl Update {
    /// The artifact relation touched by the update.
    pub fn relation(&self) -> ArtRelId {
        match self {
            Update::Insert { rel, .. } | Update::Retrieve { rel, .. } => *rel,
        }
    }

    /// The task variables involved in the update, in column order.
    pub fn vars(&self) -> &[VarId] {
        match self {
            Update::Insert { vars, .. } | Update::Retrieve { vars, .. } => vars,
        }
    }

    /// `true` for an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert { .. })
    }
}

/// An internal service of a task (Definition 10).
#[derive(Debug, Clone, PartialEq)]
pub struct InternalService {
    /// Service name, unique within its task.
    pub name: String,
    /// Pre-condition `π` over the task's variables.
    pub pre: Condition,
    /// Post-condition `ψ` constraining the next variable values.
    pub post: Condition,
    /// Propagated variables `ȳ` whose values are preserved by the
    /// transition; always a superset of the task's input variables.
    pub propagated: Vec<VarId>,
    /// Optional artifact-relation update.
    pub update: Option<Update>,
}

impl InternalService {
    /// Create a service with `true` pre/post conditions, no propagation and
    /// no update.
    pub fn new(name: impl Into<String>) -> Self {
        InternalService {
            name: name.into(),
            pre: Condition::True,
            post: Condition::True,
            propagated: Vec::new(),
            update: None,
        }
    }
}

/// The opening service `σᵒ_T` of a task (Appendix A Definition 26 (i)).
#[derive(Debug, Clone, PartialEq)]
pub struct OpeningService {
    /// Pre-condition over the *parent's* variables (for the root task:
    /// `true`).
    pub pre: Condition,
    /// Input-variable mapping `f_in`: pairs `(child input variable, parent
    /// variable)`; a 1-1 mapping from the child's input variables.
    pub input_map: Vec<(VarId, VarId)>,
}

impl Default for OpeningService {
    fn default() -> Self {
        OpeningService {
            pre: Condition::True,
            input_map: Vec::new(),
        }
    }
}

/// The closing service `σᶜ_T` of a task (Appendix A Definition 26 (ii)).
#[derive(Debug, Clone, PartialEq)]
pub struct ClosingService {
    /// Pre-condition over the task's *own* variables (for the root task:
    /// `false`).
    pub pre: Condition,
    /// Output-variable mapping `f_out`: pairs `(child output variable,
    /// parent variable)`; a 1-1 mapping from the child's output variables.
    pub output_map: Vec<(VarId, VarId)>,
}

impl Default for ClosingService {
    fn default() -> Self {
        ClosingService {
            pre: Condition::False,
            output_map: Vec::new(),
        }
    }
}

/// A reference to a service observable in runs of some task: one of its
/// internal services, its own opening/closing service, or the
/// opening/closing service of one of its children (the set `Σ^obs_T` of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceRef {
    /// The `index`-th internal service of `task`.
    Internal {
        /// Owning task.
        task: TaskId,
        /// Index into the task's internal-service list.
        index: usize,
    },
    /// The opening service of `task`.
    Opening(TaskId),
    /// The closing service of `task`.
    Closing(TaskId),
}

impl ServiceRef {
    /// The task the referenced service belongs to.
    pub fn task(&self) -> TaskId {
        match self {
            ServiceRef::Internal { task, .. }
            | ServiceRef::Opening(task)
            | ServiceRef::Closing(task) => *task,
        }
    }
}

impl fmt::Display for ServiceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceRef::Internal { task, index } => write!(f, "{task}.svc{index}"),
            ServiceRef::Opening(task) => write!(f, "open({task})"),
            ServiceRef::Closing(task) => write!(f, "close({task})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_accessors() {
        let ins = Update::Insert {
            rel: ArtRelId::new(0),
            vars: vec![VarId::new(0), VarId::new(1)],
        };
        let ret = Update::Retrieve {
            rel: ArtRelId::new(1),
            vars: vec![VarId::new(2)],
        };
        assert!(ins.is_insert());
        assert!(!ret.is_insert());
        assert_eq!(ins.relation(), ArtRelId::new(0));
        assert_eq!(ret.relation(), ArtRelId::new(1));
        assert_eq!(ins.vars().len(), 2);
    }

    #[test]
    fn default_opening_closing_conditions() {
        assert_eq!(OpeningService::default().pre, Condition::True);
        assert_eq!(ClosingService::default().pre, Condition::False);
    }

    #[test]
    fn service_ref_task_and_display() {
        let s = ServiceRef::Internal {
            task: TaskId::new(2),
            index: 1,
        };
        assert_eq!(s.task(), TaskId::new(2));
        assert_eq!(s.to_string(), "T3.svc1");
        assert_eq!(ServiceRef::Opening(TaskId::new(0)).to_string(), "open(T1)");
        assert_eq!(ServiceRef::Closing(TaskId::new(1)).to_string(), "close(T2)");
    }

    #[test]
    fn internal_service_defaults() {
        let s = InternalService::new("Init");
        assert_eq!(s.pre, Condition::True);
        assert_eq!(s.post, Condition::True);
        assert!(s.propagated.is_empty());
        assert!(s.update.is_none());
    }
}
