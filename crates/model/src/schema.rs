//! Database schemas with keys and acyclic foreign keys (paper Definition 1).
//!
//! Every relation has an implicit key attribute `ID`, a set of non-key
//! (data-valued) attributes and a set of foreign-key attributes, each
//! referencing the `ID` of another relation.  The schema must be *acyclic*:
//! the graph whose nodes are relations and whose edges follow foreign keys
//! has no cycle (Definition 2).  Acyclicity is what makes the set of
//! foreign-key navigation expressions finite, which the symbolic
//! representation of `verifas-core` relies on.

use crate::error::{ModelError, Result};
use std::fmt;

/// Index of a relation within a [`DatabaseSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// Create a relation id from a raw index.
    pub fn new(index: u32) -> Self {
        RelId(index)
    }

    /// The raw index of this relation within its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of an attribute within a relation (excluding the implicit `ID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(u32);

impl AttrId {
    /// Create an attribute id from a raw index.
    pub fn new(index: u32) -> Self {
        AttrId(index)
    }

    /// The raw index of this attribute within its relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a (non-`ID`) attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// A non-key attribute holding a data value from `DOM_val`.
    NonKey,
    /// A foreign-key attribute referencing the `ID` of another relation.
    ForeignKey(RelId),
}

/// A non-`ID` attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within the relation.
    pub name: String,
    /// Whether the attribute is a plain data attribute or a foreign key.
    pub kind: AttrKind,
}

/// A relation of the read-only database (Definition 1).
///
/// The key attribute `ID` is implicit and always present; `attrs` lists the
/// remaining attributes in declaration order.  Relational atoms in
/// conditions refer to attributes positionally in this order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name, unique within the schema.
    pub name: String,
    /// Non-`ID` attributes in declaration order.
    pub attrs: Vec<Attribute>,
}

impl Relation {
    /// Number of non-`ID` attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Find an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<(AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .map(|(i, a)| (AttrId::new(i as u32), a))
    }

    /// Get an attribute by id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }
}

/// A read-only database schema: a set of relations with acyclic foreign
/// keys (Definitions 1 and 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: Vec<Relation>,
}

impl DatabaseSchema {
    /// Create an empty schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Add a relation to the schema.
    ///
    /// `attrs` pairs each attribute name with its kind.  Returns the id of
    /// the new relation.  Duplicate relation or attribute names are
    /// rejected; acyclicity is checked by [`DatabaseSchema::validate`] (and
    /// by the spec-level validation) because forward references may be
    /// needed while building.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attrs: Vec<(String, AttrKind)>,
    ) -> Result<RelId> {
        let name = name.into();
        if self.relation_by_name(&name).is_some() {
            return Err(ModelError::DuplicateName {
                kind: "relation",
                name,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for (attr_name, _) in &attrs {
            if !seen.insert(attr_name.clone()) {
                return Err(ModelError::DuplicateName {
                    kind: "attribute",
                    name: attr_name.clone(),
                });
            }
            if attr_name == "ID" {
                return Err(ModelError::InvalidSpec {
                    reason: format!("relation {name:?}: the key attribute ID is implicit"),
                });
            }
        }
        let id = RelId::new(self.relations.len() as u32);
        self.relations.push(Relation {
            name,
            attrs: attrs
                .into_iter()
                .map(|(name, kind)| Attribute { name, kind })
                .collect(),
        });
        Ok(id)
    }

    /// Number of relations in the schema.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` iff the schema has no relation.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over `(RelId, &Relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId::new(i as u32), r))
    }

    /// Get a relation by id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Look up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<(RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
            .map(|(i, r)| (RelId::new(i as u32), r))
    }

    /// Check that every foreign key references an existing relation and
    /// that the foreign-key graph is acyclic (Definition 2).
    pub fn validate(&self) -> Result<()> {
        // Referenced relations exist (indices are always in range because
        // RelIds can only be minted by add_relation, but a schema might be
        // deserialized, so check anyway).
        for (_, rel) in self.iter() {
            for attr in &rel.attrs {
                if let AttrKind::ForeignKey(target) = attr.kind {
                    if target.index() >= self.relations.len() {
                        return Err(ModelError::UnknownName {
                            kind: "relation (foreign key target)",
                            name: format!("{}.{}", rel.name, attr.name),
                        });
                    }
                }
            }
        }
        // Acyclicity by depth-first search with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.relations.len();
        let mut color = vec![Color::White; n];
        let mut stack_names = Vec::new();
        fn dfs(
            schema: &DatabaseSchema,
            node: usize,
            color: &mut [Color],
            stack_names: &mut Vec<String>,
        ) -> Result<()> {
            color[node] = Color::Gray;
            stack_names.push(schema.relations[node].name.clone());
            for attr in &schema.relations[node].attrs {
                if let AttrKind::ForeignKey(target) = attr.kind {
                    match color[target.index()] {
                        Color::Gray => {
                            let mut cycle = stack_names.clone();
                            cycle.push(schema.relations[target.index()].name.clone());
                            return Err(ModelError::CyclicForeignKeys { cycle });
                        }
                        Color::White => dfs(schema, target.index(), color, stack_names)?,
                        Color::Black => {}
                    }
                }
            }
            stack_names.pop();
            color[node] = Color::Black;
            Ok(())
        }
        for i in 0..n {
            if color[i] == Color::White {
                dfs(self, i, &mut color, &mut stack_names)?;
            }
        }
        Ok(())
    }

    /// The relations reachable from `rel` by following foreign keys
    /// (excluding `rel` itself unless it is reachable through a longer
    /// path, which acyclicity forbids).
    pub fn reachable_from(&self, rel: RelId) -> Vec<RelId> {
        let mut seen = vec![false; self.relations.len()];
        let mut order = Vec::new();
        let mut stack = vec![rel];
        while let Some(r) = stack.pop() {
            for attr in &self.relation(r).attrs {
                if let AttrKind::ForeignKey(t) = attr.kind {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        order.push(t);
                        stack.push(t);
                    }
                }
            }
        }
        order
    }

    /// The maximum length of a foreign-key navigation path in the schema.
    ///
    /// Useful as a sanity bound for the expression universe of the
    /// symbolic representation.
    pub fn max_navigation_depth(&self) -> usize {
        fn depth(schema: &DatabaseSchema, rel: RelId, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(d) = memo[rel.index()] {
                return d;
            }
            let mut best = 0usize;
            for attr in &schema.relation(rel).attrs {
                if let AttrKind::ForeignKey(t) = attr.kind {
                    best = best.max(1 + depth(schema, t, memo));
                }
            }
            memo[rel.index()] = Some(best);
            best
        }
        let mut memo = vec![None; self.relations.len()];
        (0..self.relations.len())
            .map(|i| depth(self, RelId::new(i as u32), &mut memo))
            .max()
            .unwrap_or(0)
    }
}

/// Convenience helpers for describing attributes when building schemas.
pub mod attr {
    use super::{AttrKind, RelId};

    /// A non-key (data) attribute.
    pub fn data(name: &str) -> (String, AttrKind) {
        (name.to_owned(), AttrKind::NonKey)
    }

    /// A foreign-key attribute referencing `target`.
    pub fn fk(name: &str, target: RelId) -> (String, AttrKind) {
        (name.to_owned(), AttrKind::ForeignKey(target))
    }
}

#[cfg(test)]
mod tests {
    use super::attr::{data, fk};
    use super::*;

    /// The order-fulfillment schema from Example 2 of the paper.
    fn order_fulfillment_schema() -> (DatabaseSchema, RelId, RelId, RelId) {
        let mut db = DatabaseSchema::new();
        let credit = db
            .add_relation("CREDIT_RECORD", vec![data("status")])
            .unwrap();
        let customers = db
            .add_relation(
                "CUSTOMERS",
                vec![data("name"), data("address"), fk("record", credit)],
            )
            .unwrap();
        let items = db
            .add_relation("ITEMS", vec![data("item_name"), data("price")])
            .unwrap();
        (db, credit, customers, items)
    }

    #[test]
    fn example_schema_is_valid_and_acyclic() {
        let (db, credit, customers, items) = order_fulfillment_schema();
        db.validate().unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.relation(customers).arity(), 3);
        assert_eq!(db.relation(items).name, "ITEMS");
        assert_eq!(db.reachable_from(customers), vec![credit]);
        assert!(db.reachable_from(credit).is_empty());
        assert_eq!(db.max_navigation_depth(), 1);
    }

    #[test]
    fn duplicate_relation_names_are_rejected() {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let err = db.add_relation("R", vec![data("b")]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::DuplicateName {
                kind: "relation",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_attribute_names_are_rejected() {
        let mut db = DatabaseSchema::new();
        let err = db
            .add_relation("R", vec![data("a"), data("a")])
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::DuplicateName {
                kind: "attribute",
                ..
            }
        ));
    }

    #[test]
    fn explicit_id_attribute_is_rejected() {
        let mut db = DatabaseSchema::new();
        let err = db.add_relation("R", vec![data("ID")]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidSpec { .. }));
    }

    #[test]
    fn cyclic_foreign_keys_are_rejected() {
        // Build a 2-cycle R -> S -> R by forging RelIds (the builder cannot
        // produce forward references, so construct relations directly).
        let db = DatabaseSchema {
            relations: vec![
                Relation {
                    name: "R".into(),
                    attrs: vec![Attribute {
                        name: "s".into(),
                        kind: AttrKind::ForeignKey(RelId::new(1)),
                    }],
                },
                Relation {
                    name: "S".into(),
                    attrs: vec![Attribute {
                        name: "r".into(),
                        kind: AttrKind::ForeignKey(RelId::new(0)),
                    }],
                },
            ],
        };
        let err = db.validate().unwrap_err();
        assert!(matches!(err, ModelError::CyclicForeignKeys { .. }));
    }

    #[test]
    fn self_loop_is_rejected() {
        let db = DatabaseSchema {
            relations: vec![Relation {
                name: "R".into(),
                attrs: vec![Attribute {
                    name: "self_ref".into(),
                    kind: AttrKind::ForeignKey(RelId::new(0)),
                }],
            }],
        };
        assert!(db.validate().is_err());
    }

    #[test]
    fn dangling_foreign_key_is_rejected() {
        let db = DatabaseSchema {
            relations: vec![Relation {
                name: "R".into(),
                attrs: vec![Attribute {
                    name: "x".into(),
                    kind: AttrKind::ForeignKey(RelId::new(7)),
                }],
            }],
        };
        assert!(matches!(
            db.validate().unwrap_err(),
            ModelError::UnknownName { .. }
        ));
    }

    #[test]
    fn navigation_depth_of_chain() {
        let mut db = DatabaseSchema::new();
        let a = db.add_relation("A", vec![data("v")]).unwrap();
        let b = db.add_relation("B", vec![fk("a", a)]).unwrap();
        let c = db.add_relation("C", vec![fk("b", b), data("w")]).unwrap();
        db.validate().unwrap();
        assert_eq!(db.max_navigation_depth(), 2);
        assert_eq!(db.reachable_from(c).len(), 2);
    }

    #[test]
    fn attr_lookup_by_name() {
        let (db, _, customers, _) = order_fulfillment_schema();
        let rel = db.relation(customers);
        let (aid, a) = rel.attr_by_name("record").unwrap();
        assert_eq!(aid.index(), 2);
        assert!(matches!(a.kind, AttrKind::ForeignKey(_)));
        assert!(rel.attr_by_name("missing").is_none());
        assert_eq!(rel.attr(aid).name, "record");
    }
}
