//! # verifas-model — the HAS\* (Hierarchical Artifact System) model
//!
//! This crate implements the specification language verified by VERIFAS
//! (Li, Deutsch, Vianu — VLDB 2017): *Hierarchical Artifact Systems*
//! (HAS\*).  A HAS\* specification consists of
//!
//! * a read-only **database schema** with key and acyclic foreign-key
//!   constraints ([`schema::DatabaseSchema`]),
//! * a rooted tree (**hierarchy**) of **tasks** ([`task::Task`]), each
//!   carrying a tuple of *artifact variables* and a set of updatable
//!   *artifact relations*,
//! * **services** attached to each task ([`service`]): *internal* services
//!   guarded by pre-conditions and constrained by post-conditions which may
//!   insert into / retrieve from the artifact relations, plus an *opening*
//!   and a *closing* service per task used for parent/child interaction,
//! * a **global pre-condition** constraining the initial artifact tuple of
//!   the root task.
//!
//! Conditions are quantifier-free first-order formulas over the database
//! schema with equality ([`condition::Condition`]); existential quantifiers
//! can be simulated by adding scratch variables to a task (see the paper,
//! Section 2).
//!
//! Besides the specification language this crate implements the *concrete*
//! operational semantics of HAS\* (instances, transitions and runs —
//! [`instance`], [`interpreter`]), used by the examples and as a test oracle
//! for the symbolic verifier in `verifas-core`.
//!
//! The design follows Section 2 and Appendix A of the paper; the
//! module-level documentation of each module points at the relevant
//! definitions.

pub mod builder;
pub mod condition;
pub mod error;
pub mod instance;
pub mod interpreter;
pub mod schema;
pub mod service;
pub mod spec;
pub mod task;
pub mod validate;
pub mod value;

pub use builder::{SpecBuilder, TaskBuilder};
pub use condition::{CmpOp, Condition, Literal, Term, VarRef};
pub use error::ModelError;
pub use instance::{ArtifactInstance, DatabaseInstance, Stage, Tuple};
pub use interpreter::{Interpreter, LocalEvent, LocalRun, RunConfig, StepOutcome};
pub use schema::{AttrId, AttrKind, Attribute, DatabaseSchema, RelId, Relation};
pub use service::{ClosingService, InternalService, OpeningService, ServiceRef, Update};
pub use spec::HasSpec;
pub use task::{ArtRelId, ArtRelation, Task, TaskId, VarId, VarType, Variable};
pub use value::{DataValue, Value};
