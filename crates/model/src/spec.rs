//! HAS\* specifications (paper Definition 13) and navigation helpers.

use crate::condition::Condition;
use crate::error::Result;
use crate::schema::DatabaseSchema;
use crate::service::ServiceRef;
use crate::task::{Task, TaskId};
use crate::validate;

/// A Hierarchical Artifact System\* specification `Γ = ⟨A, Σ, Π⟩`:
/// an artifact schema (database schema + task hierarchy), the services of
/// every task, and a global pre-condition over the root task's variables.
#[derive(Debug, Clone, PartialEq)]
pub struct HasSpec {
    /// Human-readable name of the specification (used by the benchmark
    /// harness).
    pub name: String,
    /// The read-only database schema.
    pub db: DatabaseSchema,
    /// The tasks; index 0 is the root of the hierarchy.
    pub tasks: Vec<Task>,
    /// Global pre-condition `Π` over the root task's variables.
    pub global_pre: Condition,
}

impl HasSpec {
    /// Create an empty specification with a single (root) task.
    pub fn new(name: impl Into<String>, db: DatabaseSchema, root: Task) -> Self {
        HasSpec {
            name: name.into(),
            db,
            tasks: vec![root],
            global_pre: Condition::True,
        }
    }

    /// The root task id.
    pub fn root(&self) -> TaskId {
        TaskId::ROOT
    }

    /// Get a task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Get a mutable task by id.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Look up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<(TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
            .map(|(i, t)| (TaskId::new(i as u32), t))
    }

    /// Iterate over `(TaskId, &Task)` pairs.
    pub fn iter_tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i as u32), t))
    }

    /// The children of a task.
    pub fn children(&self, id: TaskId) -> &[TaskId] {
        &self.task(id).children
    }

    /// The descendants of a task, excluding the task itself (`desc(T)`).
    pub fn descendants(&self, id: TaskId) -> Vec<TaskId> {
        let mut out = Vec::new();
        let mut stack: Vec<TaskId> = self.children(id).to_vec();
        while let Some(t) = stack.pop() {
            out.push(t);
            stack.extend_from_slice(self.children(t));
        }
        out
    }

    /// The services observable in local runs of `task` (`Σ^obs_T`): the
    /// task's internal services, its own opening and closing services, and
    /// the opening/closing services of its children.
    pub fn observable_services(&self, task: TaskId) -> Vec<ServiceRef> {
        let mut out = Vec::new();
        for i in 0..self.task(task).services.len() {
            out.push(ServiceRef::Internal { task, index: i });
        }
        out.push(ServiceRef::Opening(task));
        out.push(ServiceRef::Closing(task));
        for &c in self.children(task) {
            out.push(ServiceRef::Opening(c));
            out.push(ServiceRef::Closing(c));
        }
        out
    }

    /// A human-readable name for a service reference.
    pub fn service_name(&self, s: ServiceRef) -> String {
        match s {
            ServiceRef::Internal { task, index } => {
                format!(
                    "{}.{}",
                    self.task(task).name,
                    self.task(task).services[index].name
                )
            }
            ServiceRef::Opening(task) => format!("open({})", self.task(task).name),
            ServiceRef::Closing(task) => format!("close({})", self.task(task).name),
        }
    }

    /// Validate the specification (schema acyclicity, hierarchy shape,
    /// typing of all conditions, structural restrictions on services).
    pub fn validate(&self) -> Result<()> {
        validate::validate_spec(self)
    }

    /// Structural statistics used by Table 1 of the paper.
    pub fn stats(&self) -> SpecStats {
        SpecStats {
            relations: self.db.len(),
            tasks: self.tasks.len(),
            variables: self.tasks.iter().map(|t| t.vars.len()).sum(),
            services: self.tasks.iter().map(|t| t.services.len()).sum(),
            artifact_relations: self.tasks.iter().map(|t| t.art_relations.len()).sum(),
        }
    }

    /// Drop all artifact relations and the services' updates, producing the
    /// restricted specification used by the `VERIFAS-NoSet` configuration
    /// and by the baseline verifier (which, like the Spin-based verifier of
    /// the paper, cannot handle updatable artifact relations).
    pub fn without_artifact_relations(&self) -> HasSpec {
        let mut spec = self.clone();
        for task in &mut spec.tasks {
            task.art_relations.clear();
            for svc in &mut task.services {
                svc.update = None;
            }
        }
        spec
    }
}

/// Structural statistics of a specification (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecStats {
    /// Number of database relations.
    pub relations: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Total number of artifact variables across tasks.
    pub variables: usize,
    /// Total number of internal services across tasks.
    pub services: usize,
    /// Total number of artifact relations across tasks.
    pub artifact_relations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::data;
    use crate::service::InternalService;
    use crate::task::{Task, Variable};

    fn two_level_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = Task::new("Root");
        root.vars.push(Variable {
            name: "x".into(),
            typ: crate::task::VarType::Data,
        });
        root.services.push(InternalService::new("s0"));
        let mut spec = HasSpec::new("test", db, root);
        let mut child = Task::new("Child");
        child.parent = Some(TaskId::new(0));
        child.services.push(InternalService::new("c0"));
        spec.tasks.push(child);
        spec.tasks[0].children.push(TaskId::new(1));
        let mut grandchild = Task::new("Grandchild");
        grandchild.parent = Some(TaskId::new(1));
        spec.tasks.push(grandchild);
        spec.tasks[1].children.push(TaskId::new(2));
        spec
    }

    #[test]
    fn navigation_helpers() {
        let spec = two_level_spec();
        assert_eq!(spec.root(), TaskId::new(0));
        assert_eq!(spec.task_by_name("Child").unwrap().0, TaskId::new(1));
        assert!(spec.task_by_name("Nope").is_none());
        assert_eq!(spec.children(TaskId::new(0)), &[TaskId::new(1)]);
        let mut desc = spec.descendants(TaskId::new(0));
        desc.sort();
        assert_eq!(desc, vec![TaskId::new(1), TaskId::new(2)]);
        assert!(spec.descendants(TaskId::new(2)).is_empty());
    }

    #[test]
    fn observable_services_of_root() {
        let spec = two_level_spec();
        let obs = spec.observable_services(TaskId::new(0));
        // 1 internal + own open/close + child open/close = 5
        assert_eq!(obs.len(), 5);
        assert!(obs.contains(&ServiceRef::Opening(TaskId::new(1))));
        assert!(obs.contains(&ServiceRef::Closing(TaskId::new(1))));
        assert!(!obs.contains(&ServiceRef::Opening(TaskId::new(2))));
    }

    #[test]
    fn service_names_resolve() {
        let spec = two_level_spec();
        assert_eq!(
            spec.service_name(ServiceRef::Internal {
                task: TaskId::new(0),
                index: 0
            }),
            "Root.s0"
        );
        assert_eq!(
            spec.service_name(ServiceRef::Opening(TaskId::new(1))),
            "open(Child)"
        );
    }

    #[test]
    fn stats_count_everything() {
        let spec = two_level_spec();
        let stats = spec.stats();
        assert_eq!(stats.relations, 1);
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.variables, 1);
        assert_eq!(stats.services, 2);
        assert_eq!(stats.artifact_relations, 0);
    }

    #[test]
    fn without_artifact_relations_strips_updates() {
        use crate::service::Update;
        use crate::task::{ArtRelId, ArtRelation};
        let mut spec = two_level_spec();
        spec.tasks[0].art_relations.push(ArtRelation {
            name: "POOL".into(),
            columns: vec![],
        });
        spec.tasks[0].services[0].update = Some(Update::Insert {
            rel: ArtRelId::new(0),
            vars: vec![],
        });
        let stripped = spec.without_artifact_relations();
        assert!(stripped.tasks[0].art_relations.is_empty());
        assert!(stripped.tasks[0].services[0].update.is_none());
        // Original untouched.
        assert!(!spec.tasks[0].art_relations.is_empty());
    }
}
