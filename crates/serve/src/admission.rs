//! Priority classes and admission limits.
//!
//! A multi-tenant verifier serves two very different request shapes: an
//! editor plugin checking one property on keystroke wants an answer in
//! milliseconds, while a nightly compliance sweep submits hundreds of
//! properties and cares only about throughput.  Each request declares
//! which it is — [`PriorityClass::Interactive`] or
//! [`PriorityClass::Batch`] — and the server treats the classes
//! differently at *both* gates:
//!
//! * **admission**: each class has its own in-flight limit
//!   ([`AdmissionLimits`]); an over-limit request is rejected immediately
//!   with a typed `overloaded` error instead of queueing behind work of
//!   unknown length, and one class filling up never blocks the other,
//! * **core allocation**: while any interactive request is running, every
//!   batch request is squeezed to a floor of one core (see
//!   [`crate::arbiter::Arbiter`]) — reclaimed at the next search round
//!   boundary, not at the next request boundary.

use crate::error::ServeError;

/// The scheduling class a request declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityClass {
    /// Latency-sensitive: admitted generously, takes cores from running
    /// batch work immediately.
    #[default]
    Interactive,
    /// Throughput-oriented: admitted up to a small in-flight limit, uses
    /// whatever cores interactive work leaves free.
    Batch,
}

impl PriorityClass {
    /// The class's wire name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
        }
    }

    /// Parse a wire name produced by [`PriorityClass::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "interactive" => Some(PriorityClass::Interactive),
            "batch" => Some(PriorityClass::Batch),
            _ => None,
        }
    }

    /// Both classes, in metrics/display order.
    pub const ALL: [PriorityClass; 2] = [PriorityClass::Interactive, PriorityClass::Batch];

    /// Dense index for per-class counter arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
        }
    }
}

/// Per-class in-flight request limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum interactive requests in flight.
    pub max_interactive: usize,
    /// Maximum batch requests in flight.
    pub max_batch: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_interactive: 8,
            max_batch: 2,
        }
    }
}

impl AdmissionLimits {
    /// The limit of one class (clamped to ≥ 1: a server that can admit
    /// nothing is misconfigured, not protected).
    pub fn limit(&self, class: PriorityClass) -> usize {
        match class {
            PriorityClass::Interactive => self.max_interactive.max(1),
            PriorityClass::Batch => self.max_batch.max(1),
        }
    }

    /// Check one class's in-flight count against its limit.
    pub fn admit(&self, class: PriorityClass, in_flight: usize) -> Result<(), ServeError> {
        let limit = self.limit(class);
        if in_flight >= limit {
            Err(ServeError::Overloaded { class, limit })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for class in PriorityClass::ALL {
            assert_eq!(PriorityClass::from_name(class.name()), Some(class));
        }
        assert_eq!(PriorityClass::from_name("background"), None);
    }

    #[test]
    fn limits_are_per_class() {
        let limits = AdmissionLimits {
            max_interactive: 3,
            max_batch: 1,
        };
        assert!(limits.admit(PriorityClass::Batch, 0).is_ok());
        assert_eq!(
            limits.admit(PriorityClass::Batch, 1),
            Err(ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 1
            })
        );
        // The batch class being full never affects interactive admission.
        assert!(limits.admit(PriorityClass::Interactive, 2).is_ok());
    }

    #[test]
    fn zero_limits_clamp_to_one() {
        let limits = AdmissionLimits {
            max_interactive: 0,
            max_batch: 0,
        };
        assert_eq!(limits.limit(PriorityClass::Interactive), 1);
        assert!(limits.admit(PriorityClass::Batch, 0).is_ok());
    }
}
