//! Priority classes, admission limits, and the bounded admission queue.
//!
//! A multi-tenant verifier serves two very different request shapes: an
//! editor plugin checking one property on keystroke wants an answer in
//! milliseconds, while a nightly compliance sweep submits hundreds of
//! properties and cares only about throughput.  Each request declares
//! which it is — [`PriorityClass::Interactive`] or
//! [`PriorityClass::Batch`] — and the server treats the classes
//! differently at *both* gates:
//!
//! * **admission**: each class has its own in-flight limit
//!   ([`AdmissionLimits`]) and its own bounded FIFO queue
//!   ([`AdmissionQueue`]).  An over-limit request *queues* — the client
//!   gets an immediate `queued` frame with its position and a retry
//!   hint, and its deadline keeps ticking while it waits.  Only queue
//!   *overflow* is refused with a typed `overloaded` error, and one
//!   class filling up never blocks the other,
//! * **core allocation**: while any interactive request is running, every
//!   batch request is squeezed to a floor of one core (see
//!   [`crate::arbiter::Arbiter`]) — reclaimed at the next search round
//!   boundary, not at the next request boundary.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::error::ServeError;

/// The scheduling class a request declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityClass {
    /// Latency-sensitive: admitted generously, takes cores from running
    /// batch work immediately.
    #[default]
    Interactive,
    /// Throughput-oriented: admitted up to a small in-flight limit, uses
    /// whatever cores interactive work leaves free.
    Batch,
}

impl PriorityClass {
    /// The class's wire name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
        }
    }

    /// Parse a wire name produced by [`PriorityClass::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "interactive" => Some(PriorityClass::Interactive),
            "batch" => Some(PriorityClass::Batch),
            _ => None,
        }
    }

    /// Both classes, in metrics/display order.
    pub const ALL: [PriorityClass; 2] = [PriorityClass::Interactive, PriorityClass::Batch];

    /// Dense index for per-class counter arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
        }
    }
}

/// Per-class in-flight request limits plus the shared queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum interactive requests in flight.
    pub max_interactive: usize,
    /// Maximum batch requests in flight.
    pub max_batch: usize,
    /// Maximum requests *waiting* per class; an arrival that would
    /// overflow this is the only request the server still refuses.
    pub queue_depth: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_interactive: 8,
            max_batch: 2,
            queue_depth: 8,
        }
    }
}

impl AdmissionLimits {
    /// The in-flight limit of one class (clamped to ≥ 1: a server that
    /// can admit nothing is misconfigured, not protected).
    pub fn limit(&self, class: PriorityClass) -> usize {
        match class {
            PriorityClass::Interactive => self.max_interactive.max(1),
            PriorityClass::Batch => self.max_batch.max(1),
        }
    }

    /// Check one class's in-flight count against its limit.
    pub fn admit(&self, class: PriorityClass, in_flight: usize) -> Result<(), ServeError> {
        let limit = self.limit(class);
        if in_flight >= limit {
            Err(ServeError::Overloaded { class, limit })
        } else {
            Ok(())
        }
    }
}

/// What [`AdmissionQueue::enqueue`] decided about an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// A slot was free: the request is in flight immediately.
    Admitted,
    /// The class is at its limit: the request holds a FIFO ticket.
    Queued {
        /// Hand this to [`AdmissionQueue::await_turn`].
        ticket: u64,
        /// 1-based position in the class's queue at arrival time.
        position: usize,
    },
}

/// How a queued wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOutcome {
    /// The ticket reached the head and a slot freed: now in flight.
    Admitted,
    /// The caller's `give_up` predicate fired (deadline or cancel)
    /// before a slot freed; the ticket has been removed.
    GaveUp,
}

#[derive(Default)]
struct QueueState {
    in_flight: [usize; 2],
    waiting: [VecDeque<u64>; 2],
    next_ticket: u64,
}

/// The bounded FIFO admission queue (one lane per [`PriorityClass`]).
///
/// Replaces refuse-at-limit admission: a request past its class's
/// in-flight limit waits its turn instead of bouncing, and every slot
/// release ([`AdmissionQueue::release`]) wakes the waiters so the head
/// of the lane claims the slot.  Fairness within a class is strict
/// arrival order; between classes the lanes are independent.
pub struct AdmissionQueue {
    limits: AdmissionLimits,
    state: Mutex<QueueState>,
    freed: Condvar,
}

impl AdmissionQueue {
    /// An empty queue enforcing `limits`.
    pub fn new(limits: AdmissionLimits) -> Self {
        AdmissionQueue {
            limits,
            state: Mutex::new(QueueState::default()),
            freed: Condvar::new(),
        }
    }

    /// The limits this queue enforces.
    pub fn limits(&self) -> &AdmissionLimits {
        &self.limits
    }

    /// Admit immediately if a slot is free and nobody is waiting, queue
    /// a ticket otherwise, refuse only when the class's lane is full.
    pub fn enqueue(&self, class: PriorityClass) -> Result<Enqueued, ServeError> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        let lane = class.index();
        if state.waiting[lane].is_empty() && state.in_flight[lane] < self.limits.limit(class) {
            state.in_flight[lane] += 1;
            return Ok(Enqueued::Admitted);
        }
        let depth = self.limits.queue_depth;
        if state.waiting[lane].len() >= depth {
            return Err(ServeError::Overloaded {
                class,
                limit: self.limits.limit(class),
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiting[lane].push_back(ticket);
        Ok(Enqueued::Queued {
            ticket,
            position: state.waiting[lane].len(),
        })
    }

    /// Block until `ticket` reaches the head of its lane and a slot
    /// frees, or until `give_up` returns true (checked every poll tick,
    /// so deadlines keep ticking while queued).
    pub fn await_turn(
        &self,
        class: PriorityClass,
        ticket: u64,
        mut give_up: impl FnMut() -> bool,
    ) -> QueueOutcome {
        let lane = class.index();
        let mut state = self.state.lock().expect("admission queue poisoned");
        loop {
            let at_head = state.waiting[lane].front() == Some(&ticket);
            if at_head && state.in_flight[lane] < self.limits.limit(class) {
                state.waiting[lane].pop_front();
                state.in_flight[lane] += 1;
                // The next waiter may also have a free slot (e.g. after
                // a limit of 2 drained to 0): pass the wake-up on.
                self.freed.notify_all();
                return QueueOutcome::Admitted;
            }
            if give_up() {
                state.waiting[lane].retain(|&t| t != ticket);
                self.freed.notify_all();
                return QueueOutcome::GaveUp;
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, Duration::from_millis(25))
                .expect("admission queue poisoned");
            state = next;
        }
    }

    /// Release one in-flight slot of `class` and wake the waiters.
    pub fn release(&self, class: PriorityClass) {
        let mut state = self.state.lock().expect("admission queue poisoned");
        let lane = class.index();
        state.in_flight[lane] = state.in_flight[lane].saturating_sub(1);
        drop(state);
        self.freed.notify_all();
    }

    /// Requests currently waiting in `class`'s lane.
    pub fn queued_len(&self, class: PriorityClass) -> usize {
        let state = self.state.lock().expect("admission queue poisoned");
        state.waiting[class.index()].len()
    }

    /// Requests of `class` currently holding an in-flight slot.
    pub fn in_flight(&self, class: PriorityClass) -> usize {
        let state = self.state.lock().expect("admission queue poisoned");
        state.in_flight[class.index()]
    }

    /// A Retry-After-style hint (milliseconds) for a request queued at
    /// 1-based `position`: a coarse, monotone-in-position estimate, not
    /// a promise.  Clients should retry *the stream they already hold*
    /// — the hint exists for clients that would rather disconnect and
    /// come back.
    pub fn retry_hint_ms(position: usize) -> u64 {
        (position as u64 * 100).max(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn class_names_round_trip() {
        for class in PriorityClass::ALL {
            assert_eq!(PriorityClass::from_name(class.name()), Some(class));
        }
        assert_eq!(PriorityClass::from_name("background"), None);
    }

    #[test]
    fn limits_are_per_class() {
        let limits = AdmissionLimits {
            max_interactive: 3,
            max_batch: 1,
            queue_depth: 4,
        };
        assert!(limits.admit(PriorityClass::Batch, 0).is_ok());
        assert_eq!(
            limits.admit(PriorityClass::Batch, 1),
            Err(ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 1
            })
        );
        // The batch class being full never affects interactive admission.
        assert!(limits.admit(PriorityClass::Interactive, 2).is_ok());
    }

    #[test]
    fn zero_limits_clamp_to_one() {
        let limits = AdmissionLimits {
            max_interactive: 0,
            max_batch: 0,
            queue_depth: 4,
        };
        assert_eq!(limits.limit(PriorityClass::Interactive), 1);
        assert!(limits.admit(PriorityClass::Batch, 0).is_ok());
    }

    #[test]
    fn over_limit_requests_queue_and_only_overflow_refuses() {
        let queue = AdmissionQueue::new(AdmissionLimits {
            max_interactive: 8,
            max_batch: 1,
            queue_depth: 2,
        });
        assert_eq!(queue.enqueue(PriorityClass::Batch), Ok(Enqueued::Admitted));
        let first = queue.enqueue(PriorityClass::Batch).unwrap();
        let second = queue.enqueue(PriorityClass::Batch).unwrap();
        assert!(matches!(first, Enqueued::Queued { position: 1, .. }));
        assert!(matches!(second, Enqueued::Queued { position: 2, .. }));
        // Lane full: the third waiter is the only refusal left.
        assert_eq!(
            queue.enqueue(PriorityClass::Batch),
            Err(ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 1
            })
        );
        // A full batch lane never blocks interactive arrivals.
        assert_eq!(
            queue.enqueue(PriorityClass::Interactive),
            Ok(Enqueued::Admitted)
        );
    }

    #[test]
    fn released_slots_admit_waiters_in_fifo_order() {
        let queue = Arc::new(AdmissionQueue::new(AdmissionLimits {
            max_interactive: 8,
            max_batch: 1,
            queue_depth: 4,
        }));
        assert_eq!(queue.enqueue(PriorityClass::Batch), Ok(Enqueued::Admitted));
        let Ok(Enqueued::Queued { ticket: a, .. }) = queue.enqueue(PriorityClass::Batch) else {
            panic!("second batch request must queue");
        };
        let Ok(Enqueued::Queued { ticket: b, .. }) = queue.enqueue(PriorityClass::Batch) else {
            panic!("third batch request must queue");
        };
        let order = Arc::new(Mutex::new(Vec::new()));
        let waiters: Vec<_> = [a, b]
            .into_iter()
            .map(|ticket| {
                let queue = Arc::clone(&queue);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let outcome = queue.await_turn(PriorityClass::Batch, ticket, || false);
                    assert_eq!(outcome, QueueOutcome::Admitted);
                    order.lock().unwrap().push(ticket);
                    queue.release(PriorityClass::Batch);
                })
            })
            .collect();
        queue.release(PriorityClass::Batch);
        for waiter in waiters {
            waiter.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![a, b], "strict arrival order");
        assert_eq!(queue.in_flight(PriorityClass::Batch), 0);
        assert_eq!(queue.queued_len(PriorityClass::Batch), 0);
    }

    #[test]
    fn giving_up_removes_the_ticket_and_unblocks_the_lane() {
        let queue = AdmissionQueue::new(AdmissionLimits {
            max_interactive: 8,
            max_batch: 1,
            queue_depth: 4,
        });
        assert_eq!(queue.enqueue(PriorityClass::Batch), Ok(Enqueued::Admitted));
        let Ok(Enqueued::Queued { ticket, .. }) = queue.enqueue(PriorityClass::Batch) else {
            panic!("second batch request must queue");
        };
        // An expired deadline surfaces on the first poll tick.
        let outcome = queue.await_turn(PriorityClass::Batch, ticket, || true);
        assert_eq!(outcome, QueueOutcome::GaveUp);
        assert_eq!(queue.queued_len(PriorityClass::Batch), 0);
        // The abandoned ticket freed its lane slot for new arrivals.
        let next = queue.enqueue(PriorityClass::Batch).unwrap();
        assert!(matches!(next, Enqueued::Queued { position: 1, .. }));
    }

    #[test]
    fn retry_hints_grow_with_position() {
        assert_eq!(AdmissionQueue::retry_hint_ms(1), 100);
        assert!(AdmissionQueue::retry_hint_ms(5) > AdmissionQueue::retry_hint_ms(1));
    }
}
