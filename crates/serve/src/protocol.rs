//! The request/response wire protocol (see `docs/PROTOCOL.md`).
//!
//! Requests are single JSON documents; verification responses are
//! *newline-delimited JSON frames* so per-property reports stream out as
//! each search finishes instead of buffering until the batch ends.
//! Every frame is a one-line JSON object whose `frame` member names its
//! shape: `queued`, `admitted`, `report`, `done`, `error`, `cancelled`,
//! `hash`.
//! The `done` frame is terminal and carries the batch summary, so a
//! client can always distinguish "stream finished" from "connection
//! died" from "stream aborted by cancellation".
//!
//! Everything here is pure data transformation over
//! [`verifas_core::Json`] — no I/O — which keeps it equally usable from
//! the HTTP layer and from in-process tests.

use crate::admission::PriorityClass;
use crate::arbiter::RequestId;
use crate::error::ServeError;
use crate::session::SessionReuse;
use verifas_core::{BatchSummary, Json, VerificationReport};

/// A parsed `/v1/verify` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// The `.has` specification source text.
    pub spec: String,
    /// Requested priority class (defaults to interactive).
    pub class: PriorityClass,
    /// Property names to check; `None` means all properties of the spec.
    pub properties: Option<Vec<String>>,
    /// Soft deadline for the whole batch, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-search state budget (`SearchLimits::max_states`); `None`
    /// keeps the engine default.  Unlike `deadline_ms` this bound is
    /// deterministic: two requests with the same spec and the same
    /// `max_states` produce bit-identical reports, which is what the
    /// fuzz harness's served oracle arm compares against a direct
    /// `check_all`.
    pub max_states: Option<usize>,
    /// Per-search wall-clock budget in milliseconds
    /// (`SearchLimits::max_millis`); `None` keeps the engine default.
    pub max_millis: Option<u64>,
}

impl VerifyRequest {
    /// Parse a request body, with precise [`ServeError::BadRequest`]
    /// diagnostics for every way the envelope can be malformed.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let value = parse(text)?;
        let spec = value
            .require("spec")
            .map_err(bad)?
            .as_str()
            .ok_or_else(|| bad_request("member \"spec\" must be a string"))?
            .to_owned();
        let class = match value.get("class") {
            None | Some(Json::Null) => PriorityClass::Interactive,
            Some(json) => {
                let name = json
                    .as_str()
                    .ok_or_else(|| bad_request("member \"class\" must be a string"))?;
                PriorityClass::from_name(name).ok_or_else(|| {
                    bad_request(format!(
                        "unknown class {name:?} (expected \"interactive\" or \"batch\")"
                    ))
                })?
            }
        };
        let properties = match value.get("properties") {
            None | Some(Json::Null) => None,
            Some(json) => {
                let items = json
                    .as_array()
                    .ok_or_else(|| bad_request("member \"properties\" must be an array"))?;
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    names.push(
                        item.as_str()
                            .ok_or_else(|| {
                                bad_request("member \"properties\" must contain strings")
                            })?
                            .to_owned(),
                    );
                }
                Some(names)
            }
        };
        let deadline_ms = match value.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(json) => Some(
                json.as_u64()
                    .ok_or_else(|| bad_request("member \"deadline_ms\" must be an integer"))?,
            ),
        };
        let max_states = match value.get("max_states") {
            None | Some(Json::Null) => None,
            Some(json) => Some(
                json.as_u64()
                    .ok_or_else(|| bad_request("member \"max_states\" must be an integer"))?
                    as usize,
            ),
        };
        let max_millis = match value.get("max_millis") {
            None | Some(Json::Null) => None,
            Some(json) => Some(
                json.as_u64()
                    .ok_or_else(|| bad_request("member \"max_millis\" must be an integer"))?,
            ),
        };
        Ok(VerifyRequest {
            spec,
            class,
            properties,
            deadline_ms,
            max_states,
            max_millis,
        })
    }
}

/// Parse a `/v1/cancel` body: `{"request": <id>}`.
pub fn parse_cancel(text: &str) -> Result<RequestId, ServeError> {
    let value = parse(text)?;
    value
        .require("request")
        .map_err(bad)?
        .as_u64()
        .ok_or_else(|| bad_request("member \"request\" must be an integer"))
}

/// Parse a `/v1/hash` body: `{"spec": "<source>"}`.
pub fn parse_hash_request(text: &str) -> Result<String, ServeError> {
    let value = parse(text)?;
    Ok(value
        .require("spec")
        .map_err(bad)?
        .as_str()
        .ok_or_else(|| bad_request("member \"spec\" must be a string"))?
        .to_owned())
}

/// The first frame of a stream whose request arrived over its class's
/// in-flight limit: the request is waiting in the admission queue.
///
/// `position` is the 1-based queue position at arrival; `retry_ms` is a
/// Retry-After-style hint for clients that would rather disconnect and
/// come back than hold the stream open.  Clients that keep the stream
/// open need to do nothing: an `admitted` frame follows when a slot
/// frees (or a `done` frame with `aborted: true` if the request's
/// deadline expires while it waits — deadlines keep ticking in the
/// queue).
pub fn queued_frame(id: RequestId, class: PriorityClass, position: usize, retry_ms: u64) -> String {
    Json::Obj(vec![
        frame_tag("queued"),
        ("request".to_owned(), Json::Num(id as f64)),
        ("class".to_owned(), Json::Str(class.name().to_owned())),
        ("position".to_owned(), Json::Num(position as f64)),
        ("retry_ms".to_owned(), Json::Num(retry_ms as f64)),
    ])
    .to_string()
}

/// The first frame of a verification stream: the request was admitted.
///
/// `session` reports the cache lookup (`hit` / `miss`); `reuse` refines
/// it with the delta-reuse kind — `session` (exact hit), `cold` (fresh
/// load), or `preproc` / `replay` (a delta-compatible session was
/// upgraded in that [`verifas_core::ReuseMode`]).
pub fn admitted_frame(
    id: RequestId,
    spec_hash: &str,
    reuse: SessionReuse,
    class: PriorityClass,
    cores: usize,
    properties: usize,
) -> String {
    Json::Obj(vec![
        frame_tag("admitted"),
        ("request".to_owned(), Json::Num(id as f64)),
        ("spec_hash".to_owned(), Json::Str(spec_hash.to_owned())),
        (
            "session".to_owned(),
            Json::Str(if reuse.is_hit() { "hit" } else { "miss" }.to_owned()),
        ),
        ("reuse".to_owned(), Json::Str(reuse.wire_name().to_owned())),
        ("class".to_owned(), Json::Str(class.name().to_owned())),
        ("cores".to_owned(), Json::Num(cores as f64)),
        ("properties".to_owned(), Json::Num(properties as f64)),
    ])
    .to_string()
}

/// One per-property report, emitted in completion order.
pub fn report_frame(id: RequestId, index: usize, report: &VerificationReport) -> String {
    Json::Obj(vec![
        frame_tag("report"),
        ("request".to_owned(), Json::Num(id as f64)),
        ("index".to_owned(), Json::Num(index as f64)),
        ("report".to_owned(), report.to_json_value()),
    ])
    .to_string()
}

/// A per-property *failure* report: the property's search ended in a
/// typed error instead of a verdict.  Streams in completion order like
/// any other report, with an `error` member instead of `report`.
pub fn report_error_frame(id: RequestId, index: usize, message: &str) -> String {
    Json::Obj(vec![
        frame_tag("report"),
        ("request".to_owned(), Json::Num(id as f64)),
        ("index".to_owned(), Json::Num(index as f64)),
        ("error".to_owned(), Json::Str(message.to_owned())),
    ])
    .to_string()
}

/// The terminal frame: the batch's typed summary.
pub fn done_frame(id: RequestId, summary: &BatchSummary) -> String {
    Json::Obj(vec![
        frame_tag("done"),
        ("request".to_owned(), Json::Num(id as f64)),
        (
            "summary".to_owned(),
            Json::Obj(vec![
                (
                    "properties".to_owned(),
                    Json::Num(summary.properties as f64),
                ),
                ("completed".to_owned(), Json::Num(summary.completed as f64)),
                ("cancelled".to_owned(), Json::Num(summary.cancelled as f64)),
                ("errors".to_owned(), Json::Num(summary.errors as f64)),
                ("aborted".to_owned(), Json::Bool(summary.aborted)),
            ]),
        ),
    ])
    .to_string()
}

/// An error frame (the only frame of a refused request).
pub fn error_frame(error: &ServeError) -> String {
    Json::Obj(vec![
        frame_tag("error"),
        ("kind".to_owned(), Json::Str(error.kind().to_owned())),
        ("message".to_owned(), Json::Str(error.to_string())),
    ])
    .to_string()
}

/// Response to `/v1/cancel`.
pub fn cancelled_frame(id: RequestId, found: bool) -> String {
    Json::Obj(vec![
        frame_tag("cancelled"),
        ("request".to_owned(), Json::Num(id as f64)),
        ("found".to_owned(), Json::Bool(found)),
    ])
    .to_string()
}

/// Response to `/v1/hash`.
pub fn hash_frame(spec_name: &str, spec_hash: &str) -> String {
    Json::Obj(vec![
        frame_tag("hash"),
        ("name".to_owned(), Json::Str(spec_name.to_owned())),
        ("spec_hash".to_owned(), Json::Str(spec_hash.to_owned())),
    ])
    .to_string()
}

fn frame_tag(name: &str) -> (String, Json) {
    ("frame".to_owned(), Json::Str(name.to_owned()))
}

fn parse(text: &str) -> Result<Json, ServeError> {
    Json::parse(text).map_err(|e| bad_request(format!("invalid JSON: {e}")))
}

fn bad(e: verifas_core::JsonError) -> ServeError {
    bad_request(e.message)
}

fn bad_request(reason: impl Into<String>) -> ServeError {
    ServeError::BadRequest {
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_request_defaults_and_full_form() {
        let minimal = VerifyRequest::from_json(r#"{"spec": "spec S {}"}"#).unwrap();
        assert_eq!(
            minimal,
            VerifyRequest {
                spec: "spec S {}".to_owned(),
                class: PriorityClass::Interactive,
                properties: None,
                deadline_ms: None,
                max_states: None,
                max_millis: None,
            }
        );
        let full = VerifyRequest::from_json(
            r#"{"spec": "s", "class": "batch", "properties": ["p", "q"], "deadline_ms": 250,
                "max_states": 4000, "max_millis": 60000}"#,
        )
        .unwrap();
        assert_eq!(full.class, PriorityClass::Batch);
        assert_eq!(
            full.properties.as_deref(),
            Some(&["p".to_owned(), "q".to_owned()][..])
        );
        assert_eq!(full.deadline_ms, Some(250));
        assert_eq!(full.max_states, Some(4000));
        assert_eq!(full.max_millis, Some(60000));
    }

    #[test]
    fn malformed_requests_get_precise_diagnostics() {
        let cases = [
            ("{", "invalid JSON"),
            ("{}", "missing object member \"spec\""),
            (r#"{"spec": 3}"#, "must be a string"),
            (
                r#"{"spec": "s", "class": "urgent"}"#,
                "unknown class \"urgent\"",
            ),
            (r#"{"spec": "s", "properties": "p"}"#, "must be an array"),
            (r#"{"spec": "s", "deadline_ms": -1}"#, "must be an integer"),
            (
                r#"{"spec": "s", "max_states": "many"}"#,
                "member \"max_states\" must be an integer",
            ),
            (
                r#"{"spec": "s", "max_millis": 1.5}"#,
                "member \"max_millis\" must be an integer",
            ),
        ];
        for (body, needle) in cases {
            let error = VerifyRequest::from_json(body).unwrap_err();
            assert_eq!(error.kind(), "bad_request", "case {body:?}");
            assert!(
                error.to_string().contains(needle),
                "case {body:?}: {error} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn frames_are_single_line_json_with_a_frame_tag() {
        let summary = BatchSummary {
            properties: 2,
            completed: 1,
            cancelled: 1,
            errors: 0,
            aborted: true,
        };
        let frames = [
            queued_frame(3, PriorityClass::Batch, 2, 200),
            admitted_frame(3, "00ff", SessionReuse::Cold, PriorityClass::Batch, 4, 2),
            done_frame(3, &summary),
            error_frame(&ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 2,
            }),
            cancelled_frame(3, true),
            hash_frame("Orders", "00ff"),
        ];
        for frame in &frames {
            assert!(!frame.contains('\n'));
            let parsed = Json::parse(frame).unwrap();
            assert!(parsed.get("frame").and_then(Json::as_str).is_some());
        }
        let done = Json::parse(&frames[2]).unwrap();
        let summary_json = done.get("summary").unwrap();
        assert_eq!(summary_json.get("aborted"), Some(&Json::Bool(true)));
        assert_eq!(
            summary_json.get("cancelled").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn cancel_and_hash_bodies_parse() {
        assert_eq!(parse_cancel(r#"{"request": 7}"#).unwrap(), 7);
        assert!(parse_cancel(r#"{"request": "7"}"#).is_err());
        assert_eq!(parse_hash_request(r#"{"spec": "s"}"#).unwrap(), "s");
    }
}
