//! Server counters and their Prometheus-style text exposition.
//!
//! The verifier core already narrates its work through
//! [`ProgressEvent`]s; the server funnels every event of every running
//! batch into one [`Metrics`] registry (via the engine's
//! `BatchEventSink`), adds request-lifecycle counters of its own, and
//! renders the lot in the Prometheus text exposition format on
//! `/metrics`.  Everything is a monotone counter on relaxed atomics —
//! scraping never takes a lock and never perturbs a running search.
//!
//! Gauges that belong to other components (session-cache occupancy,
//! in-flight requests, the core budget) are rendered by the gateway,
//! which owns those components; [`write_metric`] is public so all lines
//! share one formatter.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use verifas_core::{Phase, ProgressEvent};

use crate::admission::PriorityClass;

/// How an admitted request ended, for the lifecycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Every property ran to a verdict.
    Completed,
    /// The request was cancelled (client cancel, deadline, or shutdown).
    Cancelled,
    /// The request failed before or during verification.
    Failed,
}

impl RequestOutcome {
    fn name(self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Cancelled => "cancelled",
            RequestOutcome::Failed => "failed",
        }
    }
}

fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Reachability => 0,
        Phase::RepeatedReachability => 1,
    }
}

const PHASE_NAMES: [&str; 2] = ["reachability", "repeated_reachability"];

#[derive(Default)]
struct PerClass {
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

/// The server's counter registry (see module docs).
#[derive(Default)]
pub struct Metrics {
    classes: [PerClass; 2],
    reports: AtomicU64,
    resource_exhausted: AtomicU64,
    faults_injected: AtomicU64,
    worker_panics: AtomicU64,
    phases_started: [AtomicU64; 2],
    phases_finished: [AtomicU64; 2],
    progress_events: AtomicU64,
    cycle_progress_events: AtomicU64,
}

impl Metrics {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A request of `class` passed admission.
    pub fn admitted(&self, class: PriorityClass) {
        bump(&self.classes[class.index()].admitted);
    }

    /// A request of `class` arrived over its in-flight limit and is
    /// waiting in the admission queue.
    pub fn queued(&self, class: PriorityClass) {
        bump(&self.classes[class.index()].queued);
    }

    /// A request of `class` was refused by admission control (queue
    /// overflow — the only refusal left).
    pub fn rejected(&self, class: PriorityClass) {
        bump(&self.classes[class.index()].rejected);
    }

    /// A property's search hit its memory budget and degraded to a typed
    /// `ResourceExhausted` report error.
    pub fn resource_exhausted(&self) {
        bump(&self.resource_exhausted);
    }

    /// An injected fault fired at one of the serve path's fault sites
    /// (chaos testing only; always 0 in production).
    pub fn fault_injected(&self) {
        bump(&self.faults_injected);
    }

    /// A worker thread panicked and the panic was contained (the
    /// connection or request it served got an error; the server lives).
    pub fn worker_panicked(&self) {
        bump(&self.worker_panics);
    }

    /// A request of `class` that entered the pipeline (admitted, or
    /// queued and later given up) ended with `outcome`.
    pub fn finished(&self, class: PriorityClass, outcome: RequestOutcome) {
        let counters = &self.classes[class.index()];
        match outcome {
            RequestOutcome::Completed => bump(&counters.completed),
            RequestOutcome::Cancelled => bump(&counters.cancelled),
            RequestOutcome::Failed => bump(&counters.failed),
        }
    }

    /// One per-property report left the server (streamed or collected).
    pub fn report_streamed(&self) {
        bump(&self.reports);
    }

    /// Fold one engine progress event into the counters.  This is the
    /// function behind the server's `BatchEventSink`.
    pub fn observe_event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::PhaseStarted { phase } => {
                bump(&self.phases_started[phase_index(*phase)]);
            }
            ProgressEvent::PhaseFinished { phase, .. } => {
                bump(&self.phases_finished[phase_index(*phase)]);
            }
            ProgressEvent::Progress { .. } => bump(&self.progress_events),
            ProgressEvent::CycleProgress { .. } => bump(&self.cycle_progress_events),
        }
    }

    /// Render every counter in Prometheus text exposition format.
    pub fn render_into(&self, out: &mut String) {
        type_line(out, "verifas_requests_admitted_total", "counter");
        for class in PriorityClass::ALL {
            write_metric(
                out,
                "verifas_requests_admitted_total",
                &[("class", class.name())],
                load(&self.classes[class.index()].admitted),
            );
        }
        type_line(out, "verifas_requests_queued_total", "counter");
        for class in PriorityClass::ALL {
            write_metric(
                out,
                "verifas_requests_queued_total",
                &[("class", class.name())],
                load(&self.classes[class.index()].queued),
            );
        }
        type_line(out, "verifas_requests_rejected_total", "counter");
        for class in PriorityClass::ALL {
            write_metric(
                out,
                "verifas_requests_rejected_total",
                &[("class", class.name())],
                load(&self.classes[class.index()].rejected),
            );
        }
        type_line(out, "verifas_requests_finished_total", "counter");
        for class in PriorityClass::ALL {
            let counters = &self.classes[class.index()];
            for (outcome, counter) in [
                (RequestOutcome::Completed, &counters.completed),
                (RequestOutcome::Cancelled, &counters.cancelled),
                (RequestOutcome::Failed, &counters.failed),
            ] {
                write_metric(
                    out,
                    "verifas_requests_finished_total",
                    &[("class", class.name()), ("outcome", outcome.name())],
                    load(counter),
                );
            }
        }
        type_line(out, "verifas_property_reports_total", "counter");
        write_metric(
            out,
            "verifas_property_reports_total",
            &[],
            load(&self.reports),
        );
        type_line(out, "verifas_resource_exhausted_total", "counter");
        write_metric(
            out,
            "verifas_resource_exhausted_total",
            &[],
            load(&self.resource_exhausted),
        );
        type_line(out, "verifas_faults_injected_total", "counter");
        write_metric(
            out,
            "verifas_faults_injected_total",
            &[],
            load(&self.faults_injected),
        );
        type_line(out, "verifas_worker_panics_total", "counter");
        write_metric(
            out,
            "verifas_worker_panics_total",
            &[],
            load(&self.worker_panics),
        );
        type_line(out, "verifas_search_phases_started_total", "counter");
        for (index, name) in PHASE_NAMES.iter().enumerate() {
            write_metric(
                out,
                "verifas_search_phases_started_total",
                &[("phase", name)],
                load(&self.phases_started[index]),
            );
        }
        type_line(out, "verifas_search_phases_finished_total", "counter");
        for (index, name) in PHASE_NAMES.iter().enumerate() {
            write_metric(
                out,
                "verifas_search_phases_finished_total",
                &[("phase", name)],
                load(&self.phases_finished[index]),
            );
        }
        type_line(out, "verifas_search_progress_events_total", "counter");
        write_metric(
            out,
            "verifas_search_progress_events_total",
            &[("kind", "search")],
            load(&self.progress_events),
        );
        write_metric(
            out,
            "verifas_search_progress_events_total",
            &[("kind", "cycle")],
            load(&self.cycle_progress_events),
        );
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn load(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// Write one `# TYPE` header line.
pub fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Write one exposition line: `name{label="value",...} value`.
pub fn write_metric(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    let _ = write!(out, "{name}");
    if !labels.is_empty() {
        let _ = write!(out, "{{");
        for (position, (key, label)) in labels.iter().enumerate() {
            if position > 0 {
                let _ = write!(out, ",");
            }
            let _ = write!(out, "{key}=\"{label}\"");
        }
        let _ = write!(out, "}}");
    }
    let _ = writeln!(out, " {value}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_core::SearchStats;

    #[test]
    fn lifecycle_counters_render_per_class_and_outcome() {
        let metrics = Metrics::new();
        metrics.admitted(PriorityClass::Interactive);
        metrics.admitted(PriorityClass::Batch);
        metrics.rejected(PriorityClass::Batch);
        metrics.queued(PriorityClass::Batch);
        metrics.finished(PriorityClass::Interactive, RequestOutcome::Completed);
        metrics.finished(PriorityClass::Batch, RequestOutcome::Cancelled);
        metrics.report_streamed();
        metrics.resource_exhausted();
        metrics.fault_injected();
        metrics.worker_panicked();
        let mut out = String::new();
        metrics.render_into(&mut out);
        assert!(out.contains("verifas_requests_admitted_total{class=\"interactive\"} 1"));
        assert!(out.contains("verifas_requests_rejected_total{class=\"batch\"} 1"));
        assert!(out.contains("verifas_requests_queued_total{class=\"batch\"} 1"));
        assert!(out.contains("verifas_resource_exhausted_total 1"));
        assert!(out.contains("verifas_faults_injected_total 1"));
        assert!(out.contains("verifas_worker_panics_total 1"));
        assert!(out.contains(
            "verifas_requests_finished_total{class=\"interactive\",outcome=\"completed\"} 1"
        ));
        assert!(out
            .contains("verifas_requests_finished_total{class=\"batch\",outcome=\"cancelled\"} 1"));
        assert!(out.contains("verifas_property_reports_total 1"));
    }

    #[test]
    fn progress_events_feed_phase_counters() {
        let metrics = Metrics::new();
        metrics.observe_event(&ProgressEvent::PhaseStarted {
            phase: Phase::Reachability,
        });
        metrics.observe_event(&ProgressEvent::PhaseFinished {
            phase: Phase::Reachability,
            stats: SearchStats::default(),
        });
        metrics.observe_event(&ProgressEvent::PhaseStarted {
            phase: Phase::RepeatedReachability,
        });
        let mut out = String::new();
        metrics.render_into(&mut out);
        assert!(out.contains("verifas_search_phases_started_total{phase=\"reachability\"} 1"));
        assert!(out.contains("verifas_search_phases_finished_total{phase=\"reachability\"} 1"));
        assert!(
            out.contains("verifas_search_phases_started_total{phase=\"repeated_reachability\"} 1")
        );
        assert!(
            out.contains("verifas_search_phases_finished_total{phase=\"repeated_reachability\"} 0")
        );
    }
}
