//! The gateway: the transport-independent heart of `verifas serve`.
//!
//! A [`Gateway`] owns the four server-global components — the
//! [`SessionCache`] of loaded engines, the core-budget [`Arbiter`], the
//! [`Metrics`] registry and the table of cancellable in-flight requests
//! — and runs one verification request end to end: compile, admit, look
//! up (or load) the session, stream per-property frames as searches
//! finish, emit the terminal `done` frame, release the cores.
//!
//! It is deliberately transport-free: [`Gateway::submit`] writes frames
//! through a caller-supplied sink, so the HTTP layer (`crate::http`),
//! in-process tests and any future transport share exactly one request
//! path.  `submit` runs on the *caller's* thread — the server's
//! connection pool provides the concurrency, and the arbiter decides how
//! many cores each concurrent call may use.

use crate::admission::{AdmissionLimits, PriorityClass};
use crate::arbiter::{Arbiter, RequestId};
use crate::error::ServeError;
use crate::metrics::{type_line, write_metric, Metrics, RequestOutcome};
use crate::protocol::{
    admitted_frame, done_frame, hash_frame, report_error_frame, report_frame, VerifyRequest,
};
use crate::session::SessionCache;
use std::sync::Mutex;
use std::time::Duration;
use verifas_core::{spec_hash, spec_hash_hex, BatchSummary, CancelToken, ReuseMode};
use verifas_ltl::LtlFoProperty;
use verifas_spec::compile;

/// A frame sink: receives each response line (without the trailing
/// newline) as soon as it is produced.
pub type FrameSink<'f> = &'f (dyn Fn(&str) + Send + Sync);

/// Configuration of a [`Gateway`] (and therefore of a server).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The server-global core budget the arbiter distributes.
    pub cores: usize,
    /// How many loaded engine sessions the LRU keeps.
    pub sessions: usize,
    /// Per-class admission limits.
    pub limits: AdmissionLimits,
    /// How much an edited spec reuses from a delta-compatible cached
    /// session (see [`verifas_core::ReuseMode`]).  The default,
    /// [`ReuseMode::Preproc`], carries preprocessing and finished
    /// reports; [`ReuseMode::Cold`] disables upgrades entirely;
    /// [`ReuseMode::Replay`] additionally records and replays transition
    /// enumerations.
    pub reuse: ReuseMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sessions: 8,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
        }
    }
}

/// The transport-independent server core (see module docs).
pub struct Gateway {
    sessions: SessionCache,
    arbiter: Arbiter,
    metrics: Metrics,
    reuse: ReuseMode,
    /// Cancel tokens of in-flight requests, so `/v1/cancel` (and server
    /// shutdown) can stop every search of a running batch.
    active: Mutex<Vec<(RequestId, CancelToken)>>,
}

impl Gateway {
    /// A gateway with the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        Gateway {
            sessions: SessionCache::new(config.sessions),
            arbiter: Arbiter::new(config.cores, config.limits),
            metrics: Metrics::new(),
            reuse: config.reuse,
            active: Mutex::new(Vec::new()),
        }
    }

    /// Run one verification request end to end, pushing response frames
    /// through `emit` as they are produced.
    ///
    /// Errors are only returned *before* the first frame is emitted
    /// (compile failure, unknown property, admission refusal) — the
    /// transport can still map them to a status code.  Once the
    /// `admitted` frame is out, every later failure is a per-property
    /// `report` frame with an `error` member, and the stream always ends
    /// with a `done` frame.
    pub fn submit(
        &self,
        request: &VerifyRequest,
        emit: FrameSink<'_>,
    ) -> Result<BatchSummary, ServeError> {
        let compiled = compile(&request.spec).map_err(verifas_core::VerifasError::from)?;
        let properties = select_properties(compiled.properties, request.properties.as_deref())?;
        let hash = spec_hash(&compiled.spec);

        let admission = self.arbiter.admit(request.class).inspect_err(|_| {
            self.metrics.rejected(request.class);
        })?;
        self.metrics.admitted(request.class);
        let id = admission.id;

        let spec = compiled.spec;
        let (engine, reuse) = match self.sessions.get_or_upgrade(hash, spec, self.reuse) {
            Ok(loaded) => loaded,
            Err(e) => {
                self.arbiter.release(id);
                self.metrics.finished(request.class, RequestOutcome::Failed);
                return Err(ServeError::Spec(e));
            }
        };

        let token = CancelToken::new();
        lock(&self.active).push((id, token.clone()));

        // Between admission and start the arbiter may already have
        // revised our allocation (another request arrived); read the live
        // value so the first round runs at the arbitrated width.
        let cores = self.arbiter.desired(id).unwrap_or(admission.cores);
        emit(&admitted_frame(
            id,
            &spec_hash_hex_of(hash),
            reuse,
            request.class,
            cores,
            properties.len(),
        ));

        let on_event = |_index: usize, event: &verifas_core::ProgressEvent| {
            self.metrics.observe_event(event);
        };
        let mut on_result = |index: usize,
                             result: &Result<
            verifas_core::VerificationReport,
            verifas_core::VerifasError,
        >| {
            match result {
                Ok(report) => emit(&report_frame(id, index, report)),
                Err(e) => emit(&report_error_frame(id, index, &e.to_string())),
            }
            self.metrics.report_streamed();
        };
        let mut batch = engine
            .batch()
            .batch_threads(cores)
            .cancel_token(token.clone())
            .scheduler_handle(&admission.handle)
            .on_event(&on_event)
            .on_result(&mut on_result);
        if let Some(ms) = request.deadline_ms {
            batch = batch.deadline(Duration::from_millis(ms));
        }
        let (_results, summary) = batch.run_with_summary(&properties);

        emit(&done_frame(id, &summary));
        lock(&self.active).retain(|(active_id, _)| *active_id != id);
        self.arbiter.release(id);
        self.metrics.finished(request.class, outcome_of(&summary));
        Ok(summary)
    }

    /// Cancel an in-flight request by id.  Returns whether the id was
    /// found (an unknown or already-finished id is not an error: the
    /// race between completion and cancellation is inherent).
    pub fn cancel(&self, id: RequestId) -> bool {
        let active = lock(&self.active);
        match active.iter().find(|(active_id, _)| *active_id == id) {
            Some((_, token)) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Cancel every in-flight request (server shutdown).  Returns how
    /// many requests were signalled.
    pub fn cancel_all(&self) -> usize {
        let active = lock(&self.active);
        for (_, token) in active.iter() {
            token.cancel();
        }
        active.len()
    }

    /// Compile `source` and return `(spec name, canonical hash)` — the
    /// `/v1/hash` endpoint and the `verifas hash` subcommand.
    pub fn hash_text(&self, source: &str) -> Result<(String, String), ServeError> {
        let compiled = compile(source).map_err(verifas_core::VerifasError::from)?;
        Ok((compiled.spec.name.clone(), spec_hash_hex(&compiled.spec)))
    }

    /// Render the hash response frame for `/v1/hash`.
    pub fn hash_frame_for(&self, source: &str) -> Result<String, ServeError> {
        let (name, hex) = self.hash_text(source)?;
        Ok(hash_frame(&name, &hex))
    }

    /// The full `/metrics` document: the counter registry plus gauges
    /// owned by the gateway's components.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        self.metrics.render_into(&mut out);
        let stats = self.sessions.stats();
        type_line(&mut out, "verifas_session_cache_lookups_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_lookups_total",
            &[("result", "hit")],
            stats.hits,
        );
        write_metric(
            &mut out,
            "verifas_session_cache_lookups_total",
            &[("result", "miss")],
            stats.misses,
        );
        type_line(&mut out, "verifas_session_cache_upgrades_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_upgrades_total",
            &[],
            stats.upgrades,
        );
        type_line(&mut out, "verifas_session_cache_evictions_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_evictions_total",
            &[],
            stats.evictions,
        );
        type_line(&mut out, "verifas_session_cache_entries", "gauge");
        write_metric(
            &mut out,
            "verifas_session_cache_entries",
            &[],
            stats.cached as u64,
        );
        type_line(&mut out, "verifas_requests_in_flight", "gauge");
        for class in PriorityClass::ALL {
            write_metric(
                &mut out,
                "verifas_requests_in_flight",
                &[("class", class.name())],
                self.arbiter.in_flight(class) as u64,
            );
        }
        type_line(&mut out, "verifas_cores_total", "gauge");
        write_metric(
            &mut out,
            "verifas_cores_total",
            &[],
            self.arbiter.total_cores() as u64,
        );
        // Incremental-reuse counters (process-wide, from the core's
        // counter registry — session upgrades are what drive them here).
        type_line(&mut out, "verifas_delta_preps_carried_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_preps_carried_total",
            &[],
            verifas_core::counters::preps_carried() as u64,
        );
        type_line(&mut out, "verifas_delta_reports_carried_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_reports_carried_total",
            &[],
            verifas_core::counters::reports_carried() as u64,
        );
        type_line(&mut out, "verifas_delta_reports_reused_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_reports_reused_total",
            &[],
            verifas_core::counters::reports_reused() as u64,
        );
        type_line(&mut out, "verifas_delta_memo_enumerations_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_memo_enumerations_total",
            &[("result", "hit")],
            verifas_core::counters::memo_hits() as u64,
        );
        write_metric(
            &mut out,
            "verifas_delta_memo_enumerations_total",
            &[("result", "miss")],
            verifas_core::counters::memo_misses() as u64,
        );
        out
    }

    /// The session cache (tests and diagnostics).
    pub fn sessions(&self) -> &SessionCache {
        &self.sessions
    }

    /// The core arbiter (tests and diagnostics).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// The counter registry (tests and diagnostics).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

/// Resolve the requested property names (or all, in declaration order)
/// against the compiled spec's property list.
fn select_properties(
    all: Vec<LtlFoProperty>,
    requested: Option<&[String]>,
) -> Result<Vec<LtlFoProperty>, ServeError> {
    match requested {
        None => Ok(all),
        Some(names) => names
            .iter()
            .map(|name| {
                all.iter()
                    .find(|property| &property.name == name)
                    .cloned()
                    .ok_or_else(|| ServeError::UnknownProperty { name: name.clone() })
            })
            .collect(),
    }
}

fn outcome_of(summary: &BatchSummary) -> RequestOutcome {
    if summary.aborted {
        RequestOutcome::Cancelled
    } else if summary.errors > 0 {
        RequestOutcome::Failed
    } else {
        RequestOutcome::Completed
    }
}

fn spec_hash_hex_of(hash: u64) -> String {
    format!("{hash:016x}")
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_core::Json;

    const SPEC: &str = r#"
spec "tiny";
schema { relation R(a: data); }
task Root {
    vars { status: data }
    service go {
        pre: status == null;
        post: status == "Done";
    }
}
init: status == null;
property "reaches-done" on Root {
    formula: F { status == "Done" };
}
property "never-done" on Root {
    formula: G !{ status == "Done" };
}
"#;

    fn collected(gateway: &Gateway, request: &VerifyRequest) -> (Vec<String>, BatchSummary) {
        let frames = Mutex::new(Vec::new());
        let sink = |line: &str| frames.lock().unwrap().push(line.to_owned());
        let summary = gateway.submit(request, &sink).unwrap();
        (frames.into_inner().unwrap(), summary)
    }

    fn request(spec: &str) -> VerifyRequest {
        VerifyRequest {
            spec: spec.to_owned(),
            class: PriorityClass::Interactive,
            properties: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn submit_streams_admitted_reports_done() {
        let gateway = Gateway::new(ServeConfig {
            cores: 2,
            sessions: 2,
            ..ServeConfig::default()
        });
        let (frames, summary) = collected(&gateway, &request(SPEC));
        assert_eq!(frames.len(), 4, "admitted + 2 reports + done: {frames:?}");
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("frame").and_then(Json::as_str), Some("admitted"));
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("properties").and_then(Json::as_u64), Some(2));
        let last = Json::parse(frames.last().unwrap()).unwrap();
        assert_eq!(last.get("frame").and_then(Json::as_str), Some("done"));
        assert_eq!(summary.properties, 2);
        assert_eq!(summary.completed, 2);
        assert!(!summary.aborted);
        // The request released its cores and its cancel slot.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
    }

    #[test]
    fn resubmission_hits_the_session_cache() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(SPEC));
        // Same spec, different formatting: same lowered structure.
        let reformatted = SPEC.replace("  ", "\t").replace("property", "\nproperty");
        let (frames, _) = collected(&gateway, &request(&reformatted));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("hit"));
        let stats = gateway.sessions().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// A two-task spec whose root can be edited (widening `go`'s guard
    /// with an already-present constant) while the child slice — and the
    /// spec's constant set — stays bit-identical.
    const PAIR: &str = r#"
spec "pair";
schema { relation R(a: data); }
task Root {
    vars { status: data, result: data }
    service go {
        pre: status == null;
        post: status == "Done";
    }
}
task Child child of Root {
    vars { result: data }
    outputs { result }
    opening: true;
    closing: result == "Done";
}
init: status == null;
property "reaches-done" on Root {
    formula: F { status == "Done" };
}
"#;

    #[test]
    fn an_edited_spec_upgrades_a_compatible_session() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(PAIR));
        // A root-local edit leaves the child slice reusable: the session
        // cache upgrades the prior engine instead of cold-loading.
        let edited = PAIR.replace(
            "pre: status == null;",
            "pre: status == null || status == \"Done\";",
        );
        assert_ne!(edited, PAIR);
        let (frames, summary) = collected(&gateway, &request(&edited));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("preproc"));
        assert_eq!(summary.completed, 1);
        let stats = gateway.sessions().stats();
        assert_eq!(stats.upgrades, 1);
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_session_cache_upgrades_total 1"));

        // An incompatible edit (schema change) falls back to a cold load.
        let reschema = PAIR.replace("relation R(a: data);", "relation R(a: data, b: data);");
        assert_ne!(reschema, PAIR);
        let (frames, _) = collected(&gateway, &request(&reschema));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
    }

    #[test]
    fn cold_reuse_mode_disables_upgrades() {
        let gateway = Gateway::new(ServeConfig {
            reuse: ReuseMode::Cold,
            ..ServeConfig::default()
        });
        let (_, _) = collected(&gateway, &request(PAIR));
        let edited = PAIR.replace(
            "pre: status == null;",
            "pre: status == null || status == \"Done\";",
        );
        let (frames, _) = collected(&gateway, &request(&edited));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
        assert_eq!(gateway.sessions().stats().upgrades, 0);
    }

    #[test]
    fn named_property_selection_and_unknown_property() {
        let gateway = Gateway::new(ServeConfig::default());
        let mut req = request(SPEC);
        req.properties = Some(vec!["never-done".to_owned()]);
        let (frames, summary) = collected(&gateway, &req);
        assert_eq!(summary.properties, 1);
        let report = Json::parse(&frames[1]).unwrap();
        assert_eq!(
            report
                .get("report")
                .and_then(|r| r.get("property"))
                .and_then(Json::as_str),
            Some("never-done")
        );

        req.properties = Some(vec!["nope".to_owned()]);
        let err = gateway.submit(&req, &|_| {}).unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownProperty {
                name: "nope".to_owned()
            }
        );
        // Refused before admission: nothing leaked into the arbiter.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
    }

    #[test]
    fn metrics_text_reflects_traffic() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(SPEC));
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_requests_admitted_total{class=\"interactive\"} 1"));
        assert!(text.contains(
            "verifas_requests_finished_total{class=\"interactive\",outcome=\"completed\"} 1"
        ));
        assert!(text.contains("verifas_property_reports_total 2"));
        assert!(text.contains("verifas_session_cache_lookups_total{result=\"miss\"} 1"));
        assert!(text.contains("verifas_session_cache_entries 1"));
        assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
    }

    #[test]
    fn hash_endpoint_matches_core_hash() {
        let gateway = Gateway::new(ServeConfig::default());
        let (name, hex) = gateway.hash_text(SPEC).unwrap();
        assert_eq!(name, "tiny");
        assert_eq!(hex.len(), 16);
        let frame = gateway.hash_frame_for(SPEC).unwrap();
        let parsed = Json::parse(&frame).unwrap();
        assert_eq!(
            parsed.get("spec_hash").and_then(Json::as_str),
            Some(hex.as_str())
        );
    }
}
