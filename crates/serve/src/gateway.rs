//! The gateway: the transport-independent heart of `verifas serve`.
//!
//! A [`Gateway`] owns the server-global components — the
//! [`SessionCache`] of loaded engines, the [`AdmissionQueue`] that holds
//! over-limit requests instead of refusing them, the core-budget
//! [`Arbiter`], the optional [`MemoryBudget`] that byte-accounts live
//! search state, the [`Metrics`] registry and the table of cancellable
//! in-flight requests — and runs one verification request end to end:
//! compile, look up (or load) the session, admit or queue, stream
//! per-property frames as searches finish, emit the terminal `done`
//! frame, release the cores.
//!
//! It is deliberately transport-free: [`Gateway::submit`] writes frames
//! through a caller-supplied sink, so the HTTP layer (`crate::http`),
//! in-process tests and any future transport share exactly one request
//! path.  `submit` runs on the *caller's* thread — the server's
//! connection pool provides the concurrency, and the arbiter decides how
//! many cores each concurrent call may use.
//!
//! Every resource a request holds — its admission slot, its core lease,
//! its cancel-table entry, its terminal lifecycle counter — is released
//! by a single RAII guard, so no exit path (including a panic unwinding
//! out of the engine, e.g. one injected by a [`FaultPlan`]) can leak a
//! gauge.

use crate::admission::{AdmissionLimits, AdmissionQueue, Enqueued, PriorityClass, QueueOutcome};
use crate::arbiter::{Arbiter, RequestId};
use crate::error::ServeError;
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::{type_line, write_metric, Metrics, RequestOutcome};
use crate::protocol::{
    admitted_frame, done_frame, hash_frame, queued_frame, report_error_frame, report_frame,
    VerifyRequest,
};
use crate::session::SessionCache;
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use verifas_core::{
    spec_hash, spec_hash_hex, BatchSummary, CancelToken, MemoryBudget, ReuseMode, VerifasError,
};
use verifas_ltl::LtlFoProperty;
use verifas_spec::compile;

/// A frame sink: receives each response line (without the trailing
/// newline) as soon as it is produced.
pub type FrameSink<'f> = &'f (dyn Fn(&str) + Send + Sync);

/// Configuration of a [`Gateway`] (and therefore of a server).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The server-global core budget the arbiter distributes.
    pub cores: usize,
    /// How many loaded engine sessions the LRU keeps.
    pub sessions: usize,
    /// Per-class admission limits and queue depth.
    pub limits: AdmissionLimits,
    /// How much an edited spec reuses from a delta-compatible cached
    /// session (see [`verifas_core::ReuseMode`]).  The default,
    /// [`ReuseMode::Preproc`], carries preprocessing and finished
    /// reports; [`ReuseMode::Cold`] disables upgrades entirely;
    /// [`ReuseMode::Replay`] additionally records and replays transition
    /// enumerations.
    pub reuse: ReuseMode,
    /// Soft server-wide memory budget, in bytes.  When non-zero, live
    /// search state is byte-accounted against one shared
    /// [`MemoryBudget`] — a search that would push past it degrades to a
    /// typed [`VerifasError::ResourceExhausted`] report error instead of
    /// growing without bound — and the session cache additionally evicts
    /// by resident-byte estimate toward the same figure.  `0` (the
    /// default) disables memory accounting.
    pub memory_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sessions: 8,
            limits: AdmissionLimits::default(),
            reuse: ReuseMode::Preproc,
            memory_bytes: 0,
        }
    }
}

/// The transport-independent server core (see module docs).
pub struct Gateway {
    sessions: SessionCache,
    queue: AdmissionQueue,
    arbiter: Arbiter,
    metrics: Metrics,
    reuse: ReuseMode,
    memory: Option<MemoryBudget>,
    faults: Option<Arc<FaultPlan>>,
    /// Cancel tokens of queued and running requests, so `/v1/cancel`
    /// (and server shutdown) can stop every search of a running batch —
    /// and pull a still-waiting request out of the admission queue.
    active: Mutex<Vec<(RequestId, CancelToken)>>,
}

impl Gateway {
    /// A gateway with the given configuration and no fault injection.
    pub fn new(config: ServeConfig) -> Self {
        Gateway::with_faults(config, None)
    }

    /// A gateway with the given configuration and an optional seeded
    /// [`FaultPlan`] (chaos tests and `verifas serve --fault-plan`).
    pub fn with_faults(config: ServeConfig, faults: Option<Arc<FaultPlan>>) -> Self {
        Gateway {
            sessions: SessionCache::with_max_bytes(config.sessions, config.memory_bytes),
            queue: AdmissionQueue::new(config.limits),
            arbiter: Arbiter::new(config.cores),
            metrics: Metrics::new(),
            reuse: config.reuse,
            memory: (config.memory_bytes > 0).then(|| MemoryBudget::new(config.memory_bytes)),
            faults,
            active: Mutex::new(Vec::new()),
        }
    }

    /// Does the fault plan (if any) fire at `site` right now?  Counts
    /// every fired fault in the metrics registry.  Public so the HTTP
    /// layer can drive its socket-level fault sites off the same plan.
    pub fn fault_fires(&self, site: FaultSite) -> bool {
        match &self.faults {
            Some(plan) if plan.fires(site) => {
                self.metrics.fault_injected();
                true
            }
            _ => false,
        }
    }

    /// Run one verification request end to end, pushing response frames
    /// through `emit` as they are produced.
    ///
    /// Errors are only returned *before* the first frame is emitted
    /// (compile failure, unknown property, spec-load failure, admission
    /// refusal on queue overflow) — the transport can still map them to
    /// a status code.  Once the first frame (`queued` or `admitted`) is
    /// out, every later failure is a per-property `report` frame with an
    /// `error` member, and the stream always ends with a `done` frame.
    pub fn submit(
        &self,
        request: &VerifyRequest,
        emit: FrameSink<'_>,
    ) -> Result<BatchSummary, ServeError> {
        let compiled = compile(&request.spec).map_err(VerifasError::from)?;
        let properties = select_properties(compiled.properties, request.properties.as_deref())?;
        let hash = spec_hash(&compiled.spec);
        let spec = compiled.spec;

        // Load (or upgrade) the session *before* admission, so every
        // typed refusal stays ahead of the first frame.  The eviction
        // fault site races a forced LRU eviction against the lookup —
        // the Arc-per-session design must shrug it off.
        if self.fault_fires(FaultSite::EvictRace) {
            self.sessions.evict_lru();
        }
        let (engine, reuse) = self.sessions.get_or_upgrade(hash, spec, self.reuse)?;

        // Fix the absolute deadline before queueing: time spent waiting
        // in the admission queue counts against it.  The clock-skew
        // fault perturbs it here — exactly where a skewed host clock
        // would.
        let mut budget_ms = request.deadline_ms.map(|ms| ms as i64);
        if budget_ms.is_some() && self.fault_fires(FaultSite::ClockSkew) {
            let skew = self.faults.as_ref().map_or(0, |plan| plan.skew_ms());
            budget_ms = budget_ms.map(|ms| (ms + skew).max(0));
        }
        let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms as u64));

        let id = self.arbiter.allocate();
        let token = CancelToken::new();
        let enqueued = self.queue.enqueue(request.class).inspect_err(|_| {
            self.metrics.rejected(request.class);
        })?;

        // From here on the request is visible (cancellable even while
        // queued), and the guard guarantees its admission slot, core
        // lease, cancel-table entry and terminal lifecycle counter on
        // *every* exit path — including a panic unwinding through this
        // frame.
        lock(&self.active).push((id, token.clone()));
        let guard = RequestGuard {
            gateway: self,
            id,
            class: request.class,
            slot: Cell::new(matches!(enqueued, Enqueued::Admitted)),
            outcome: Cell::new(None),
        };

        if let Enqueued::Queued { ticket, position } = enqueued {
            self.metrics.queued(request.class);
            emit(&queued_frame(
                id,
                request.class,
                position,
                AdmissionQueue::retry_hint_ms(position),
            ));
            let waited = self.queue.await_turn(request.class, ticket, || {
                token.is_cancelled() || deadline.is_some_and(|at| Instant::now() >= at)
            });
            match waited {
                QueueOutcome::Admitted => guard.slot.set(true),
                QueueOutcome::GaveUp => {
                    // Cancelled or expired while still waiting: nothing
                    // ran, so the batch reports itself fully aborted.
                    let summary = BatchSummary {
                        properties: properties.len(),
                        completed: 0,
                        cancelled: properties.len(),
                        errors: 0,
                        aborted: true,
                    };
                    emit(&done_frame(id, &summary));
                    guard.outcome.set(Some(RequestOutcome::Cancelled));
                    return Ok(summary);
                }
            }
        }

        self.metrics.admitted(request.class);
        let admission = self.arbiter.fund(id, request.class);
        // Between funding and start the arbiter may already have revised
        // our allocation (another request arrived); read the live value
        // so the first round runs at the arbitrated width.
        let cores = self.arbiter.desired(id).unwrap_or(admission.cores);
        emit(&admitted_frame(
            id,
            &spec_hash_hex_of(hash),
            reuse,
            request.class,
            cores,
            properties.len(),
        ));

        let on_event = |_index: usize, event: &verifas_core::ProgressEvent| {
            // The worker-panic fault site detonates inside a search
            // worker; the engine's per-job containment must turn it into
            // a typed per-property error without losing the batch.
            if self.fault_fires(FaultSite::WorkerPanic) {
                panic!("injected fault: worker panic mid-search");
            }
            self.metrics.observe_event(event);
        };
        let mut on_result =
            |index: usize, result: &Result<verifas_core::VerificationReport, VerifasError>| {
                match result {
                    Ok(report) => emit(&report_frame(id, index, report)),
                    Err(e) => {
                        match e {
                            VerifasError::ResourceExhausted { .. } => {
                                self.metrics.resource_exhausted();
                            }
                            VerifasError::Internal { reason }
                                if reason.contains("worker panicked") =>
                            {
                                self.metrics.worker_panicked();
                            }
                            _ => {}
                        }
                        emit(&report_error_frame(id, index, &e.to_string()));
                    }
                }
                self.metrics.report_streamed();
            };
        let mut batch = engine
            .batch()
            .batch_threads(cores)
            .cancel_token(token.clone())
            .scheduler_handle(&admission.handle)
            .on_event(&on_event)
            .on_result(&mut on_result);
        // Per-request search limits: unlike the wall-clock deadline these
        // are deterministic, so a bounded request replays bit-identically
        // (the fuzz harness's served arm depends on this).
        if request.max_states.is_some() || request.max_millis.is_some() {
            let mut options = engine.options();
            if let Some(max_states) = request.max_states {
                options.limits.max_states = max_states;
            }
            if let Some(max_millis) = request.max_millis {
                options.limits.max_millis = max_millis;
            }
            batch = batch.options(options);
        }
        if let Some(budget) = &self.memory {
            batch = batch.memory_budget(budget);
        }
        if let Some(at) = deadline {
            batch = batch.deadline(at.saturating_duration_since(Instant::now()));
        }
        let (_results, summary) = batch.run_with_summary(&properties);

        emit(&done_frame(id, &summary));
        guard.outcome.set(Some(outcome_of(&summary)));
        Ok(summary)
    }

    /// Cancel an in-flight (or still-queued) request by id.  Returns
    /// whether the id was found (an unknown or already-finished id is
    /// not an error: the race between completion and cancellation is
    /// inherent).
    pub fn cancel(&self, id: RequestId) -> bool {
        let active = lock(&self.active);
        match active.iter().find(|(active_id, _)| *active_id == id) {
            Some((_, token)) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Cancel every in-flight request (server shutdown).  Returns how
    /// many requests were signalled.
    pub fn cancel_all(&self) -> usize {
        let active = lock(&self.active);
        for (_, token) in active.iter() {
            token.cancel();
        }
        active.len()
    }

    /// Compile `source` and return `(spec name, canonical hash)` — the
    /// `/v1/hash` endpoint and the `verifas hash` subcommand.
    pub fn hash_text(&self, source: &str) -> Result<(String, String), ServeError> {
        let compiled = compile(source).map_err(VerifasError::from)?;
        Ok((compiled.spec.name.clone(), spec_hash_hex(&compiled.spec)))
    }

    /// Render the hash response frame for `/v1/hash`.
    pub fn hash_frame_for(&self, source: &str) -> Result<String, ServeError> {
        let (name, hex) = self.hash_text(source)?;
        Ok(hash_frame(&name, &hex))
    }

    /// The full `/metrics` document: the counter registry plus gauges
    /// owned by the gateway's components.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        self.metrics.render_into(&mut out);
        let stats = self.sessions.stats();
        type_line(&mut out, "verifas_session_cache_lookups_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_lookups_total",
            &[("result", "hit")],
            stats.hits,
        );
        write_metric(
            &mut out,
            "verifas_session_cache_lookups_total",
            &[("result", "miss")],
            stats.misses,
        );
        type_line(&mut out, "verifas_session_cache_upgrades_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_upgrades_total",
            &[],
            stats.upgrades,
        );
        type_line(&mut out, "verifas_session_cache_evictions_total", "counter");
        write_metric(
            &mut out,
            "verifas_session_cache_evictions_total",
            &[],
            stats.evictions,
        );
        type_line(&mut out, "verifas_session_cache_entries", "gauge");
        write_metric(
            &mut out,
            "verifas_session_cache_entries",
            &[],
            stats.cached as u64,
        );
        type_line(&mut out, "verifas_session_cache_resident_bytes", "gauge");
        write_metric(
            &mut out,
            "verifas_session_cache_resident_bytes",
            &[],
            self.sessions.resident_bytes() as u64,
        );
        type_line(&mut out, "verifas_requests_in_flight", "gauge");
        for class in PriorityClass::ALL {
            write_metric(
                &mut out,
                "verifas_requests_in_flight",
                &[("class", class.name())],
                self.arbiter.in_flight(class) as u64,
            );
        }
        type_line(&mut out, "verifas_queue_depth", "gauge");
        for class in PriorityClass::ALL {
            write_metric(
                &mut out,
                "verifas_queue_depth",
                &[("class", class.name())],
                self.queue.queued_len(class) as u64,
            );
        }
        type_line(&mut out, "verifas_cores_total", "gauge");
        write_metric(
            &mut out,
            "verifas_cores_total",
            &[],
            self.arbiter.total_cores() as u64,
        );
        type_line(&mut out, "verifas_memory_budget_bytes", "gauge");
        write_metric(
            &mut out,
            "verifas_memory_budget_bytes",
            &[],
            self.memory.as_ref().map_or(0, MemoryBudget::limit_bytes) as u64,
        );
        type_line(&mut out, "verifas_memory_used_bytes", "gauge");
        write_metric(
            &mut out,
            "verifas_memory_used_bytes",
            &[],
            self.memory.as_ref().map_or(0, MemoryBudget::used_bytes) as u64,
        );
        // Incremental-reuse counters (process-wide, from the core's
        // counter registry — session upgrades are what drive them here).
        type_line(&mut out, "verifas_delta_preps_carried_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_preps_carried_total",
            &[],
            verifas_core::counters::preps_carried() as u64,
        );
        type_line(&mut out, "verifas_delta_reports_carried_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_reports_carried_total",
            &[],
            verifas_core::counters::reports_carried() as u64,
        );
        type_line(&mut out, "verifas_delta_reports_reused_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_reports_reused_total",
            &[],
            verifas_core::counters::reports_reused() as u64,
        );
        type_line(&mut out, "verifas_delta_memo_enumerations_total", "counter");
        write_metric(
            &mut out,
            "verifas_delta_memo_enumerations_total",
            &[("result", "hit")],
            verifas_core::counters::memo_hits() as u64,
        );
        write_metric(
            &mut out,
            "verifas_delta_memo_enumerations_total",
            &[("result", "miss")],
            verifas_core::counters::memo_misses() as u64,
        );
        out
    }

    /// The session cache (tests and diagnostics).
    pub fn sessions(&self) -> &SessionCache {
        &self.sessions
    }

    /// The admission queue (tests and diagnostics).
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// The core arbiter (tests and diagnostics).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// The counter registry (tests and diagnostics).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The fault plan, when one is installed (tests and diagnostics).
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }
}

/// Releases everything one request holds — its cancel-table entry, its
/// admission-queue slot, its core lease — and records its terminal
/// lifecycle counter, exactly once, on every exit path out of
/// [`Gateway::submit`].  Cleanup lives in `Drop` so a panic unwinding
/// through the request path (a real bug, or a [`FaultPlan`] detonation)
/// can never leak a gauge.
struct RequestGuard<'g> {
    gateway: &'g Gateway,
    id: RequestId,
    class: PriorityClass,
    /// Whether the request currently holds an in-flight admission slot.
    slot: Cell<bool>,
    /// The recorded terminal outcome; `None` (a panic escaped before the
    /// `done` frame) finishes as [`RequestOutcome::Failed`].
    outcome: Cell<Option<RequestOutcome>>,
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        lock(&self.gateway.active).retain(|(active_id, _)| *active_id != self.id);
        if self.slot.get() {
            self.gateway.queue.release(self.class);
        }
        self.gateway.arbiter.release(self.id);
        self.gateway.metrics.finished(
            self.class,
            self.outcome.get().unwrap_or(RequestOutcome::Failed),
        );
    }
}

/// Resolve the requested property names (or all, in declaration order)
/// against the compiled spec's property list.
fn select_properties(
    all: Vec<LtlFoProperty>,
    requested: Option<&[String]>,
) -> Result<Vec<LtlFoProperty>, ServeError> {
    match requested {
        None => Ok(all),
        Some(names) => names
            .iter()
            .map(|name| {
                all.iter()
                    .find(|property| &property.name == name)
                    .cloned()
                    .ok_or_else(|| ServeError::UnknownProperty { name: name.clone() })
            })
            .collect(),
    }
}

fn outcome_of(summary: &BatchSummary) -> RequestOutcome {
    if summary.aborted {
        RequestOutcome::Cancelled
    } else if summary.errors > 0 {
        RequestOutcome::Failed
    } else {
        RequestOutcome::Completed
    }
}

fn spec_hash_hex_of(hash: u64) -> String {
    format!("{hash:016x}")
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_core::Json;

    const SPEC: &str = r#"
spec "tiny";
schema { relation R(a: data); }
task Root {
    vars { status: data }
    service go {
        pre: status == null;
        post: status == "Done";
    }
}
init: status == null;
property "reaches-done" on Root {
    formula: F { status == "Done" };
}
property "never-done" on Root {
    formula: G !{ status == "Done" };
}
"#;

    fn collected(gateway: &Gateway, request: &VerifyRequest) -> (Vec<String>, BatchSummary) {
        let frames = Mutex::new(Vec::new());
        let sink = |line: &str| frames.lock().unwrap().push(line.to_owned());
        let summary = gateway.submit(request, &sink).unwrap();
        (frames.into_inner().unwrap(), summary)
    }

    fn request(spec: &str) -> VerifyRequest {
        VerifyRequest {
            spec: spec.to_owned(),
            class: PriorityClass::Interactive,
            properties: None,
            deadline_ms: None,
            max_states: None,
            max_millis: None,
        }
    }

    fn frame_kind(line: &str) -> String {
        Json::parse(line)
            .unwrap()
            .get("frame")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned()
    }

    #[test]
    fn submit_streams_admitted_reports_done() {
        let gateway = Gateway::new(ServeConfig {
            cores: 2,
            sessions: 2,
            ..ServeConfig::default()
        });
        let (frames, summary) = collected(&gateway, &request(SPEC));
        assert_eq!(frames.len(), 4, "admitted + 2 reports + done: {frames:?}");
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("frame").and_then(Json::as_str), Some("admitted"));
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("properties").and_then(Json::as_u64), Some(2));
        let last = Json::parse(frames.last().unwrap()).unwrap();
        assert_eq!(last.get("frame").and_then(Json::as_str), Some("done"));
        assert_eq!(summary.properties, 2);
        assert_eq!(summary.completed, 2);
        assert!(!summary.aborted);
        // The request released its cores, its queue slot and its cancel
        // slot.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert_eq!(gateway.queue().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
    }

    #[test]
    fn resubmission_hits_the_session_cache() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(SPEC));
        // Same spec, different formatting: same lowered structure.
        let reformatted = SPEC.replace("  ", "\t").replace("property", "\nproperty");
        let (frames, _) = collected(&gateway, &request(&reformatted));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("hit"));
        let stats = gateway.sessions().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// A two-task spec whose root can be edited (widening `go`'s guard
    /// with an already-present constant) while the child slice — and the
    /// spec's constant set — stays bit-identical.
    const PAIR: &str = r#"
spec "pair";
schema { relation R(a: data); }
task Root {
    vars { status: data, result: data }
    service go {
        pre: status == null;
        post: status == "Done";
    }
}
task Child child of Root {
    vars { result: data }
    outputs { result }
    opening: true;
    closing: result == "Done";
}
init: status == null;
property "reaches-done" on Root {
    formula: F { status == "Done" };
}
"#;

    #[test]
    fn an_edited_spec_upgrades_a_compatible_session() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(PAIR));
        // A root-local edit leaves the child slice reusable: the session
        // cache upgrades the prior engine instead of cold-loading.
        let edited = PAIR.replace(
            "pre: status == null;",
            "pre: status == null || status == \"Done\";",
        );
        assert_ne!(edited, PAIR);
        let (frames, summary) = collected(&gateway, &request(&edited));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("preproc"));
        assert_eq!(summary.completed, 1);
        let stats = gateway.sessions().stats();
        assert_eq!(stats.upgrades, 1);
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_session_cache_upgrades_total 1"));

        // An incompatible edit (schema change) falls back to a cold load.
        let reschema = PAIR.replace("relation R(a: data);", "relation R(a: data, b: data);");
        assert_ne!(reschema, PAIR);
        let (frames, _) = collected(&gateway, &request(&reschema));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("session").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
    }

    #[test]
    fn cold_reuse_mode_disables_upgrades() {
        let gateway = Gateway::new(ServeConfig {
            reuse: ReuseMode::Cold,
            ..ServeConfig::default()
        });
        let (_, _) = collected(&gateway, &request(PAIR));
        let edited = PAIR.replace(
            "pre: status == null;",
            "pre: status == null || status == \"Done\";",
        );
        let (frames, _) = collected(&gateway, &request(&edited));
        let first = Json::parse(&frames[0]).unwrap();
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
        assert_eq!(gateway.sessions().stats().upgrades, 0);
    }

    #[test]
    fn named_property_selection_and_unknown_property() {
        let gateway = Gateway::new(ServeConfig::default());
        let mut req = request(SPEC);
        req.properties = Some(vec!["never-done".to_owned()]);
        let (frames, summary) = collected(&gateway, &req);
        assert_eq!(summary.properties, 1);
        let report = Json::parse(&frames[1]).unwrap();
        assert_eq!(
            report
                .get("report")
                .and_then(|r| r.get("property"))
                .and_then(Json::as_str),
            Some("never-done")
        );

        req.properties = Some(vec!["nope".to_owned()]);
        let err = gateway.submit(&req, &|_| {}).unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownProperty {
                name: "nope".to_owned()
            }
        );
        // Refused before admission: nothing leaked into the arbiter or
        // the queue.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert_eq!(gateway.queue().in_flight(PriorityClass::Interactive), 0);
    }

    #[test]
    fn an_over_limit_request_queues_then_runs() {
        let gateway = Gateway::new(ServeConfig {
            cores: 2,
            limits: AdmissionLimits {
                max_interactive: 1,
                max_batch: 1,
                queue_depth: 4,
            },
            ..ServeConfig::default()
        });
        // Occupy the single interactive slot directly, so the submit
        // below must queue behind it.
        assert!(matches!(
            gateway.queue().enqueue(PriorityClass::Interactive).unwrap(),
            Enqueued::Admitted
        ));
        std::thread::scope(|scope| {
            let gateway = &gateway;
            let worker = scope.spawn(move || collected(gateway, &request(SPEC)));
            // Wait until the request is visibly queued, then free the
            // slot it is waiting for.
            while gateway.queue().queued_len(PriorityClass::Interactive) == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            gateway.queue().release(PriorityClass::Interactive);
            let (frames, summary) = worker.join().unwrap();
            let kinds: Vec<_> = frames.iter().map(|f| frame_kind(f)).collect();
            assert_eq!(kinds[0], "queued", "{frames:?}");
            assert_eq!(kinds[1], "admitted");
            assert_eq!(kinds.last().unwrap(), "done");
            let queued = Json::parse(&frames[0]).unwrap();
            assert_eq!(queued.get("position").and_then(Json::as_u64), Some(1));
            assert!(queued.get("retry_ms").and_then(Json::as_u64).unwrap() >= 50);
            assert_eq!(summary.completed, 2);
        });
        assert_eq!(gateway.queue().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_requests_queued_total{class=\"interactive\"} 1"));
    }

    #[test]
    fn queue_overflow_is_the_only_refusal() {
        let gateway = Gateway::new(ServeConfig {
            limits: AdmissionLimits {
                max_interactive: 1,
                max_batch: 1,
                queue_depth: 1,
            },
            ..ServeConfig::default()
        });
        // Fill the slot and the whole queue.
        gateway.queue().enqueue(PriorityClass::Interactive).unwrap();
        assert!(matches!(
            gateway.queue().enqueue(PriorityClass::Interactive).unwrap(),
            Enqueued::Queued { .. }
        ));
        let err = gateway.submit(&request(SPEC), &|_| {}).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }), "{err:?}");
        // The refusal leaked nothing.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_requests_rejected_total{class=\"interactive\"} 1"));
    }

    #[test]
    fn a_deadline_expiring_in_the_queue_aborts_cleanly() {
        let gateway = Gateway::new(ServeConfig {
            limits: AdmissionLimits {
                max_interactive: 1,
                max_batch: 1,
                queue_depth: 4,
            },
            ..ServeConfig::default()
        });
        // Occupy the slot and never release it: the queued request's
        // deadline must expire while it waits.
        gateway.queue().enqueue(PriorityClass::Interactive).unwrap();
        let mut req = request(SPEC);
        req.deadline_ms = Some(1);
        let (frames, summary) = collected(&gateway, &req);
        let kinds: Vec<_> = frames.iter().map(|f| frame_kind(f)).collect();
        assert_eq!(kinds, vec!["queued", "done"], "{frames:?}");
        assert!(summary.aborted);
        assert_eq!(summary.completed, 0);
        // The request never held a slot; the occupier still does.
        assert_eq!(gateway.queue().in_flight(PriorityClass::Interactive), 1);
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
        let text = gateway.metrics_text();
        assert!(text.contains(
            "verifas_requests_finished_total{class=\"interactive\",outcome=\"cancelled\"} 1"
        ));
    }

    #[test]
    fn a_memory_budget_degrades_to_typed_resource_exhaustion() {
        let gateway = Gateway::new(ServeConfig {
            memory_bytes: 1,
            ..ServeConfig::default()
        });
        let frames = Mutex::new(Vec::new());
        let sink = |line: &str| frames.lock().unwrap().push(line.to_owned());
        let summary = gateway.submit(&request(SPEC), &sink).unwrap();
        // Every property hit the 1-byte budget: typed report errors, no
        // abort of the server.
        assert_eq!(summary.errors, 2, "{summary:?}");
        let frames = frames.into_inner().unwrap();
        let report = Json::parse(&frames[1]).unwrap();
        let message = report.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("memory budget"), "{message}");
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_resource_exhausted_total 2"));
        assert!(text.contains("verifas_memory_budget_bytes 1"));
    }

    #[test]
    fn an_injected_worker_panic_is_contained() {
        let plan = Arc::new(FaultPlan::new(7).with_rate(FaultSite::WorkerPanic, 1));
        let gateway = Gateway::with_faults(ServeConfig::default(), Some(plan));
        let (frames, summary) = collected(&gateway, &request(SPEC));
        // Every search panicked at its first progress event; each panic
        // became a typed per-property error and the stream still ended
        // with `done`.
        assert_eq!(summary.errors, 2, "{summary:?}");
        assert_eq!(frame_kind(frames.last().unwrap()), "done");
        let report = Json::parse(&frames[1]).unwrap();
        let message = report.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("panicked"), "{message}");
        // Nothing leaked: cores, queue slots and the cancel table are
        // all clean.
        assert_eq!(gateway.arbiter().in_flight(PriorityClass::Interactive), 0);
        assert_eq!(gateway.queue().in_flight(PriorityClass::Interactive), 0);
        assert!(lock(&gateway.active).is_empty());
        assert!(
            gateway
                .faults()
                .unwrap()
                .fired_count(FaultSite::WorkerPanic)
                >= 1
        );
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_worker_panics_total 2"));
    }

    #[test]
    fn metrics_text_reflects_traffic() {
        let gateway = Gateway::new(ServeConfig::default());
        let (_, _) = collected(&gateway, &request(SPEC));
        let text = gateway.metrics_text();
        assert!(text.contains("verifas_requests_admitted_total{class=\"interactive\"} 1"));
        assert!(text.contains(
            "verifas_requests_finished_total{class=\"interactive\",outcome=\"completed\"} 1"
        ));
        assert!(text.contains("verifas_property_reports_total 2"));
        assert!(text.contains("verifas_session_cache_lookups_total{result=\"miss\"} 1"));
        assert!(text.contains("verifas_session_cache_entries 1"));
        assert!(text.contains("verifas_requests_in_flight{class=\"interactive\"} 0"));
        assert!(text.contains("verifas_queue_depth{class=\"interactive\"} 0"));
        assert!(text.contains("verifas_memory_budget_bytes 0"));
    }

    #[test]
    fn hash_endpoint_matches_core_hash() {
        let gateway = Gateway::new(ServeConfig::default());
        let (name, hex) = gateway.hash_text(SPEC).unwrap();
        assert_eq!(name, "tiny");
        assert_eq!(hex.len(), 16);
        let frame = gateway.hash_frame_for(SPEC).unwrap();
        let parsed = Json::parse(&frame).unwrap();
        assert_eq!(
            parsed.get("spec_hash").and_then(Json::as_str),
            Some(hex.as_str())
        );
    }
}
