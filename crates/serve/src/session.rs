//! The session cache: an LRU of loaded [`Engine`]s keyed by canonical
//! spec hash.
//!
//! Loading a specification is cheap, but the per-property preprocessing
//! an [`Engine`] accumulates (expression universes, compiled symbolic
//! tasks, static-analysis graphs) is not — a tenant re-submitting the
//! same spec must land on the same engine so the second batch pays no
//! setup cost at all.  The key is [`verifas_core::spec_hash`] over the
//! *lowered* `HasSpec`, not the source text: two `.has` files that differ
//! only in formatting or comments lower bit-identically and share one
//! session.
//!
//! Eviction is strict least-recently-used over a recency list, so the
//! order is deterministic: touch order alone decides who goes, never
//! timing.  Besides the entry-count capacity the cache can carry a byte
//! budget ([`SessionCache::with_max_bytes`]): sessions estimate their
//! resident footprint via [`Engine::estimated_bytes`] (deterministic
//! per-artefact constants, not allocator probes), and when the sum
//! exceeds the budget the LRU tail is evicted — always keeping at least
//! one session, since a cache that cannot hold the spec being verified
//! would thrash instead of protect.  Hit/miss/eviction counters feed the
//! server's `/metrics` endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use verifas_core::{DeltaSummary, Engine, ReuseMode, SpecDelta, VerifasError};
use verifas_model::HasSpec;

/// Counters of one [`SessionCache`]'s life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCacheStats {
    /// Lookups that found a loaded session.
    pub hits: u64,
    /// Lookups that had to load a new session.
    pub misses: u64,
    /// Misses resolved by upgrading a delta-compatible cached session
    /// (a subset of `misses`).
    pub upgrades: u64,
    /// Sessions evicted to make room.
    pub evictions: u64,
    /// Sessions currently cached.
    pub cached: usize,
}

/// How a [`SessionCache::get_or_upgrade`] lookup was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionReuse {
    /// The exact spec (by canonical hash) was already loaded.
    Hit,
    /// No usable base: a fresh engine was loaded from scratch.
    Cold,
    /// A delta-compatible cached session was upgraded via
    /// [`Engine::load_delta`], carrying the summarised artefacts.
    Delta(DeltaSummary),
}

impl SessionReuse {
    /// The wire name for the `admitted` frame's `reuse` member.
    pub fn wire_name(self) -> &'static str {
        match self {
            SessionReuse::Hit => "session",
            SessionReuse::Cold => "cold",
            SessionReuse::Delta(summary) => summary.mode.name(),
        }
    }

    /// Whether the lookup found the exact session.
    pub fn is_hit(self) -> bool {
        matches!(self, SessionReuse::Hit)
    }
}

/// An LRU cache of loaded verification sessions (see the module docs).
pub struct SessionCache {
    capacity: usize,
    /// Resident-byte budget over all cached engines (0 = entry-count
    /// eviction only).
    max_bytes: usize,
    /// Most-recently-used first.  A `Vec` is the right structure at
    /// session-cache sizes (a handful to a few dozen engines).
    inner: Mutex<Vec<(u64, Arc<Engine>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    upgrades: AtomicU64,
    evictions: AtomicU64,
}

impl SessionCache {
    /// A cache holding at most `capacity` sessions (clamped to ≥ 1),
    /// with no byte budget.
    pub fn new(capacity: usize) -> Self {
        SessionCache::with_max_bytes(capacity, 0)
    }

    /// A cache bounded by both entry count and estimated resident bytes
    /// (0 = unbounded bytes).  The byte bound always keeps at least one
    /// session.
    pub fn with_max_bytes(capacity: usize, max_bytes: usize) -> Self {
        SessionCache {
            capacity: capacity.max(1),
            max_bytes,
            inner: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured resident-byte budget (0 = none).
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// The estimated resident bytes of every cached session, summed.
    pub fn resident_bytes(&self) -> usize {
        lock_ignoring_poison(&self.inner)
            .iter()
            .map(|(_, engine)| engine.estimated_bytes())
            .sum()
    }

    /// Evict the least-recently-used session right now, regardless of
    /// budgets.  Returns whether anything was evicted.  This is the
    /// `evict-race` fault hook: chaos tests force an eviction between a
    /// request's admission and its session lookup to prove a request
    /// never depends on its session *staying* cached.
    pub fn evict_lru(&self) -> bool {
        let mut inner = lock_ignoring_poison(&self.inner);
        if inner.pop().is_some() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Evict the LRU tail until both the entry-count capacity and the
    /// byte budget hold (the byte budget never evicts the last entry).
    /// Called with the cache lock held.
    fn evict_over_budget(&self, inner: &mut Vec<(u64, Arc<Engine>)>) {
        loop {
            let over_count = inner.len() > self.capacity;
            let over_bytes = self.max_bytes > 0
                && inner.len() > 1
                && inner
                    .iter()
                    .map(|(_, engine)| engine.estimated_bytes())
                    .sum::<usize>()
                    > self.max_bytes;
            if !(over_count || over_bytes) {
                return;
            }
            inner.pop();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look up the session for `hash`, loading it with `load` on a miss.
    /// Returns the (shared) engine and whether the lookup was a hit.
    ///
    /// The cache lock is held across `load`, deliberately: two concurrent
    /// first requests for the same spec must produce *one* engine — the
    /// second caller waits and then hits, instead of both building and
    /// one being thrown away (which would double every preprocessing the
    /// engines later accumulate).
    pub fn get_or_load(
        &self,
        hash: u64,
        load: impl FnOnce() -> Result<Engine, VerifasError>,
    ) -> Result<(Arc<Engine>, bool), VerifasError> {
        let mut inner = lock_ignoring_poison(&self.inner);
        if let Some(position) = inner.iter().position(|(key, _)| *key == hash) {
            // Touch: move to the front of the recency list.
            let entry = inner.remove(position);
            let engine = Arc::clone(&entry.1);
            inner.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((engine, true));
        }
        let engine = Arc::new(load()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        inner.insert(0, (hash, Arc::clone(&engine)));
        self.evict_over_budget(&mut inner);
        Ok((engine, false))
    }

    /// Look up the session for `hash`; on a miss, try to *upgrade* a
    /// delta-compatible cached session via [`Engine::load_delta`] before
    /// falling back to a cold load.  `spec` must be the lowered spec
    /// whose canonical hash is `hash`.
    ///
    /// Candidate bases are scanned most-recently-used first, and the
    /// first [`SpecDelta::compatible`] one wins — an edit loop touches
    /// the same spec repeatedly, so the freshest session is almost
    /// always the right (and the richest) base.  The upgraded engine is
    /// cached under the *new* hash; the base stays cached under its own,
    /// so further edits can still branch from either. Like
    /// [`SessionCache::get_or_load`], the lock is held across the load
    /// so concurrent first requests produce one engine.
    ///
    /// With [`ReuseMode::Cold`] no upgrade is attempted — every miss
    /// loads from scratch (the PR 6 behaviour).
    pub fn get_or_upgrade(
        &self,
        hash: u64,
        spec: HasSpec,
        mode: ReuseMode,
    ) -> Result<(Arc<Engine>, SessionReuse), VerifasError> {
        let mut inner = lock_ignoring_poison(&self.inner);
        if let Some(position) = inner.iter().position(|(key, _)| *key == hash) {
            let entry = inner.remove(position);
            let engine = Arc::clone(&entry.1);
            inner.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((engine, SessionReuse::Hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut reuse = SessionReuse::Cold;
        let engine = if mode == ReuseMode::Cold {
            Engine::load(spec)?
        } else {
            let base = inner
                .iter()
                .map(|(_, engine)| engine)
                .find(|base| SpecDelta::diff(base.spec(), &spec).compatible());
            match base {
                Some(base) => {
                    let (engine, summary) = Engine::load_delta(base, spec, mode)?;
                    self.upgrades.fetch_add(1, Ordering::Relaxed);
                    reuse = SessionReuse::Delta(summary);
                    engine
                }
                // No usable base — but keep the engine in the configured
                // reuse mode, so repeated identical requests against this
                // session answer from its report cache (and, under
                // replay, record enumerations for future upgrades).
                None => {
                    Engine::load_with_reuse(spec, verifas_core::VerifierOptions::default(), mode)?
                }
            }
        };
        let engine = Arc::new(engine);
        inner.insert(0, (hash, Arc::clone(&engine)));
        self.evict_over_budget(&mut inner);
        Ok((engine, reuse))
    }

    /// The cached keys, most-recently-used first (diagnostics and tests —
    /// this *is* the eviction order, reversed).
    pub fn keys_mru(&self) -> Vec<u64> {
        lock_ignoring_poison(&self.inner)
            .iter()
            .map(|(key, _)| *key)
            .collect()
    }

    /// Life-so-far counters plus the current size.
    pub fn stats(&self) -> SessionCacheStats {
        SessionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cached: lock_ignoring_poison(&self.inner).len(),
        }
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_model::schema::attr::data;
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term};

    fn tiny_engine(name: &str) -> Engine {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "go",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new(name, db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        Engine::load(b.build().unwrap()).unwrap()
    }

    #[test]
    fn eviction_order_is_deterministic_lru() {
        let cache = SessionCache::new(2);
        for key in [1u64, 2, 3] {
            let (_, hit) = cache.get_or_load(key, || Ok(tiny_engine("s"))).unwrap();
            assert!(!hit);
        }
        // Capacity 2: inserting 3 evicted 1 (the least recently used).
        assert_eq!(cache.keys_mru(), vec![3, 2]);
        // Touching 2 protects it; inserting 4 now evicts 3.
        assert!(cache.get_or_load(2, || unreachable!()).unwrap().1);
        cache.get_or_load(4, || Ok(tiny_engine("s"))).unwrap();
        assert_eq!(cache.keys_mru(), vec![4, 2]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 2));
        assert_eq!(stats.cached, 2);
    }

    #[test]
    fn hits_share_one_engine() {
        let cache = SessionCache::new(4);
        let (first, _) = cache.get_or_load(7, || Ok(tiny_engine("s"))).unwrap();
        let (second, hit) = cache.get_or_load(7, || unreachable!()).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn a_byte_budget_evicts_the_lru_tail_but_keeps_one_session() {
        // Every tiny engine estimates at least its fixed base footprint,
        // so a budget below one base can hold exactly one entry.
        let cache = SessionCache::with_max_bytes(8, 1);
        for key in [1u64, 2, 3] {
            cache.get_or_load(key, || Ok(tiny_engine("s"))).unwrap();
        }
        assert_eq!(cache.keys_mru(), vec![3], "budget keeps the MRU entry");
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn forced_eviction_pops_the_lru_entry() {
        let cache = SessionCache::new(4);
        assert!(!cache.evict_lru(), "empty cache has nothing to evict");
        cache.get_or_load(1, || Ok(tiny_engine("s"))).unwrap();
        cache.get_or_load(2, || Ok(tiny_engine("s"))).unwrap();
        assert!(cache.evict_lru());
        assert_eq!(cache.keys_mru(), vec![2]);
        assert_eq!(cache.stats().evictions, 1);
        // The evicted spec simply reloads on its next request.
        let (_, hit) = cache.get_or_load(1, || Ok(tiny_engine("s"))).unwrap();
        assert!(!hit);
    }

    #[test]
    fn failed_loads_cache_nothing() {
        let cache = SessionCache::new(4);
        let result = cache.get_or_load(9, || {
            Err(VerifasError::Internal {
                reason: "boom".to_owned(),
            })
        });
        assert!(result.is_err());
        assert!(cache.keys_mru().is_empty());
        // The next lookup for the same key loads again.
        let (_, hit) = cache.get_or_load(9, || Ok(tiny_engine("s"))).unwrap();
        assert!(!hit);
    }
}
