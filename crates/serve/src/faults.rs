//! Deterministic fault injection for the serve path.
//!
//! Robustness claims that are only ever tested by accident are not
//! claims.  A [`FaultPlan`] makes the server's failure handling a
//! first-class, *replayable* test surface: a seeded plan decides — as a
//! pure function of `(seed, site, occurrence)` — whether the *n*-th
//! visit to a named [`FaultSite`] fires, so two runs of the same plan
//! against the same request sequence inject byte-for-byte the same
//! faults.  The mixing uses the same MMIX LCG constants as the spec
//! round-trip fuzzer (`crates/spec/tests/roundtrip.rs`).
//!
//! Sites cover every layer of the serve path:
//!
//! | site           | where it fires                  | effect                    |
//! |----------------|---------------------------------|---------------------------|
//! | `read-stall`   | before reading a request        | sleep [`FaultPlan::stall`]|
//! | `read-reset`   | before reading a request        | drop the connection       |
//! | `write-stall`  | before writing a response frame | sleep [`FaultPlan::stall`]|
//! | `write-reset`  | before writing a response frame | shut the socket down      |
//! | `worker-panic` | inside a search's event stream  | panic mid-search          |
//! | `conn-panic`   | inside connection dispatch      | panic the worker thread   |
//! | `evict-race`   | before a session-cache lookup   | force-evict the LRU entry |
//! | `clock-skew`   | computing a request deadline    | skew it by ± the skew ms  |
//!
//! A plan is enabled two ways, both off by default: the test-only
//! [`crate::gateway::Gateway::with_faults`] /
//! [`crate::http::Server::start_with_faults`] constructors, and the
//! hidden `verifas serve --fault-plan <plan>` flag CI uses to replay a
//! failure against a real socket.  Production paths pay one `Option`
//! check per site when no plan is installed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The named injection points of the serve path (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Stall before reading an accepted connection's request.
    ReadStall,
    /// Drop an accepted connection before reading its request.
    ReadReset,
    /// Stall before writing a response frame.
    WriteStall,
    /// Shut the socket down before writing a response frame.
    WriteReset,
    /// Panic inside a search worker (through the progress-event stream).
    WorkerPanic,
    /// Panic inside a connection worker's dispatch.
    ConnPanic,
    /// Force-evict the least-recently-used session before a lookup.
    EvictRace,
    /// Skew a request's computed deadline.
    ClockSkew,
}

impl FaultSite {
    /// Every site, in plan-string order.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::ReadStall,
        FaultSite::ReadReset,
        FaultSite::WriteStall,
        FaultSite::WriteReset,
        FaultSite::WorkerPanic,
        FaultSite::ConnPanic,
        FaultSite::EvictRace,
        FaultSite::ClockSkew,
    ];

    /// The plan-string (and metrics label) name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ReadStall => "read-stall",
            FaultSite::ReadReset => "read-reset",
            FaultSite::WriteStall => "write-stall",
            FaultSite::WriteReset => "write-reset",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::ConnPanic => "conn-panic",
            FaultSite::EvictRace => "evict-race",
            FaultSite::ClockSkew => "clock-skew",
        }
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&site| site == self)
            .expect("every site is in ALL")
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// A seeded, replayable fault-injection plan (see the module docs).
///
/// Each site has a *rate* `r`: occurrence `n` of the site fires iff
/// `mix(seed, site, n) % r == 0` — so roughly one in `r` visits, at
/// deterministic positions.  Rate 0 (the default for every site)
/// disables the site entirely.
pub struct FaultPlan {
    seed: u64,
    rates: [u64; FaultSite::ALL.len()],
    visits: [AtomicU64; FaultSite::ALL.len()],
    fired: [AtomicU64; FaultSite::ALL.len()],
    stall: Duration,
    skew_ms: u64,
}

impl FaultPlan {
    /// A plan with every site disabled (rates all 0) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0; FaultSite::ALL.len()],
            visits: Default::default(),
            fired: Default::default(),
            stall: Duration::from_millis(50),
            skew_ms: 250,
        }
    }

    /// Enable `site` at one firing per `rate` visits (0 disables).
    pub fn with_rate(mut self, site: FaultSite, rate: u64) -> Self {
        self.rates[site.index()] = rate;
        self
    }

    /// How long stall sites sleep (default 50 ms).
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Parse a plan string: comma-separated `key=value` pairs where the
    /// keys are `seed`, `stall-ms`, `skew-ms` and any [`FaultSite`]
    /// name (value = firing rate).  Example:
    /// `seed=7,read-reset=5,worker-panic=11,stall-ms=20`.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut stall_ms = 50u64;
        let mut skew_ms = 250u64;
        let mut rates = [0u64; FaultSite::ALL.len()];
        for pair in text.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let number: u64 = value
                .parse()
                .map_err(|_| format!("fault plan value {value:?} for {key:?} is not a number"))?;
            match key {
                "seed" => seed = number,
                "stall-ms" => stall_ms = number,
                "skew-ms" => skew_ms = number,
                site => {
                    let site = FaultSite::from_name(site).ok_or_else(|| {
                        let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                        format!("unknown fault site {site:?}; known sites: {names:?}")
                    })?;
                    rates[site.index()] = number;
                }
            }
        }
        Ok(FaultPlan {
            seed,
            rates,
            visits: Default::default(),
            fired: Default::default(),
            stall: Duration::from_millis(stall_ms),
            skew_ms,
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How long stall sites sleep.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// Visit `site`: bump its occurrence counter and decide — purely
    /// from `(seed, site, occurrence)` — whether this visit fires.
    pub fn fires(&self, site: FaultSite) -> bool {
        let index = site.index();
        let rate = self.rates[index];
        let occurrence = self.visits[index].fetch_add(1, Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        let fires = mix(self.seed, index as u64, occurrence).is_multiple_of(rate);
        if fires {
            self.fired[index].fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// The signed deadline skew (milliseconds) of clock-skew firing
    /// number `occurrence` — deterministic per plan, alternating sign.
    pub fn skew_ms(&self) -> i64 {
        let fired = self.fired[FaultSite::ClockSkew.index()].load(Ordering::Relaxed);
        let sign = if mix(self.seed, 0xC10C, fired).is_multiple_of(2) {
            1
        } else {
            -1
        };
        sign * self.skew_ms as i64
    }

    /// How many times `site` has fired so far.
    pub fn fired_count(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// How many times `site` has been visited so far.
    pub fn visit_count(&self, site: FaultSite) -> u64 {
        self.visits[site.index()].load(Ordering::Relaxed)
    }
}

impl fmt::Display for FaultPlan {
    /// Renders back to a parseable plan string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for site in FaultSite::ALL {
            let rate = self.rates[site.index()];
            if rate != 0 {
                write!(f, ",{}={rate}", site.name())?;
            }
        }
        write!(f, ",stall-ms={}", self.stall.as_millis())?;
        write!(f, ",skew-ms={}", self.skew_ms)
    }
}

/// Stateless mixer behind every fault decision: a few LCG steps (the
/// MMIX constants of `crates/spec/tests/roundtrip.rs`) over the XOR of
/// its inputs.  Pure, so a decision depends only on `(seed, site, n)`.
fn mix(seed: u64, site: u64, occurrence: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ site.wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ occurrence.wrapping_add(0x2545_F491_4F6C_DD1D);
    for _ in 0..3 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x >> 33
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_replay_exactly_for_the_same_plan() {
        let first = FaultPlan::parse("seed=7,read-reset=3,worker-panic=5").unwrap();
        let second = FaultPlan::parse("seed=7,read-reset=3,worker-panic=5").unwrap();
        let a: Vec<bool> = (0..200)
            .map(|_| first.fires(FaultSite::ReadReset))
            .collect();
        let b: Vec<bool> = (0..200)
            .map(|_| second.fires(FaultSite::ReadReset))
            .collect();
        assert_eq!(a, b, "same plan, same site: byte-for-byte replay");
        assert!(a.iter().any(|&fired| fired), "rate 3 must fire within 200");
        assert!(!a.iter().all(|&fired| fired), "rate 3 must also not-fire");
    }

    #[test]
    fn different_seeds_fire_at_different_positions() {
        let a = FaultPlan::parse("seed=1,read-reset=4").unwrap();
        let b = FaultPlan::parse("seed=2,read-reset=4").unwrap();
        let fa: Vec<bool> = (0..256).map(|_| a.fires(FaultSite::ReadReset)).collect();
        let fb: Vec<bool> = (0..256).map(|_| b.fires(FaultSite::ReadReset)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn disabled_sites_never_fire_but_count_visits() {
        let plan = FaultPlan::new(9);
        for _ in 0..50 {
            assert!(!plan.fires(FaultSite::WorkerPanic));
        }
        assert_eq!(plan.visit_count(FaultSite::WorkerPanic), 50);
        assert_eq!(plan.fired_count(FaultSite::WorkerPanic), 0);
    }

    #[test]
    fn plan_strings_round_trip() {
        let plan = FaultPlan::parse("seed=42,evict-race=2,clock-skew=3,stall-ms=20").unwrap();
        let rendered = plan.to_string();
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(reparsed.seed(), 42);
        assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        assert!(FaultPlan::parse("seed").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("warp-core-breach=1").is_err());
    }
}
