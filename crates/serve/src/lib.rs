//! # verifas-serve — the multi-tenant verification service
//!
//! PR 2–4 made one *batch* fast: sharded scheduling, deterministic
//! rounds, streaming per-property results.  This crate makes many
//! batches coexist — the `verifas serve` daemon that keeps verification
//! sessions warm between requests and arbitrates the machine's cores
//! between tenants:
//!
//! * [`session`] — an LRU of loaded [`verifas_core::Engine`]s keyed by
//!   the canonical spec hash ([`verifas_core::spec_hash`]), so a
//!   re-submitted spec pays zero preprocessing,
//! * [`admission`] — priority classes (`interactive` / `batch`) with
//!   per-class in-flight limits and a bounded FIFO queue: over-limit
//!   requests wait their turn (with a `queued` frame and retry hint)
//!   and only queue *overflow* draws a typed `overloaded` refusal,
//! * [`arbiter`] — the server-global core budget: interactive arrivals
//!   squeeze running batch requests to a one-core floor *mid-search*
//!   through [`verifas_core::SchedulerHandle`] (safe because rounds are
//!   bit-identical for any worker count — preemption never changes a
//!   verdict),
//! * [`metrics`] — engine [`verifas_core::ProgressEvent`]s and request
//!   lifecycle folded into Prometheus-style counters for `/metrics`,
//! * [`protocol`] — the JSON request envelope and the newline-delimited
//!   response frames (`admitted`, `report`…, `done`),
//! * [`gateway`] — the transport-independent request path tying the
//!   above together (plus the server-wide
//!   [`verifas_core::MemoryBudget`] that lets searches degrade to typed
//!   `ResourceExhausted` errors instead of OOM-aborting),
//! * [`faults`] — seeded, replayable fault injection for chaos testing
//!   the daemon (socket stalls/resets, worker panics, eviction races,
//!   clock skew),
//! * [`http`] — a dependency-free HTTP/1.1 front end on
//!   [`std::net::TcpListener`] with a fixed worker pool.

pub mod admission;
pub mod arbiter;
pub mod error;
pub mod faults;
pub mod gateway;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod session;

pub use admission::{AdmissionLimits, AdmissionQueue, Enqueued, PriorityClass, QueueOutcome};
pub use arbiter::{Admission, Arbiter, RequestId};
pub use error::ServeError;
pub use faults::{FaultPlan, FaultSite};
pub use gateway::{FrameSink, Gateway, ServeConfig};
pub use http::Server;
pub use metrics::{Metrics, RequestOutcome};
pub use protocol::VerifyRequest;
pub use session::{SessionCache, SessionCacheStats, SessionReuse};
