//! The typed errors of the verification service.
//!
//! Everything a client can get wrong — and everything the server may
//! refuse — is a [`ServeError`] variant, so the HTTP layer can map each
//! failure to a status code and a structured JSON body instead of
//! string-matching, and in-process embedders (tests, the CLI) can match
//! on the variant directly.

use crate::admission::PriorityClass;
use std::fmt;
use verifas_core::VerifasError;

/// A request the verification service refused or could not serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the class already has
    /// `limit` requests in flight *and* its admission queue is full.
    /// (An over-limit request with queue room waits its turn instead;
    /// see [`crate::admission::AdmissionQueue`].)  Maps to HTTP 429; the
    /// client should back off and retry later (or resubmit as the other
    /// class, where policy allows).
    Overloaded {
        /// The class whose limit was hit.
        class: PriorityClass,
        /// The configured in-flight limit of that class.
        limit: usize,
    },
    /// The request body exceeds the server's size limit.  Maps to
    /// HTTP 413.
    PayloadTooLarge {
        /// The configured maximum body size, in bytes.
        limit_bytes: usize,
    },
    /// The request envelope is malformed (missing member, wrong type,
    /// unknown class name, invalid JSON).  Maps to HTTP 400.
    BadRequest {
        /// What was wrong with the envelope.
        reason: String,
    },
    /// The embedded `.has` specification failed to parse, resolve or
    /// validate — the wrapped [`VerifasError`] carries the diagnostic
    /// (including a source span for syntax errors).  Maps to HTTP 400.
    Spec(VerifasError),
    /// The request named a property the specification does not define.
    /// Maps to HTTP 400.
    UnknownProperty {
        /// The name that did not resolve.
        name: String,
    },
}

impl ServeError {
    /// Short machine-readable discriminator, used as the `kind` member of
    /// error response bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Spec(_) => "spec",
            ServeError::UnknownProperty { .. } => "unknown_property",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { class, limit } => write!(
                f,
                "over capacity: {limit} {} requests already in flight",
                class.name()
            ),
            ServeError::PayloadTooLarge { limit_bytes } => {
                write!(f, "request body exceeds the {limit_bytes}-byte limit")
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::UnknownProperty { name } => {
                write!(f, "no property named {name:?} in the specification")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifasError> for ServeError {
    fn from(e: VerifasError) -> Self {
        ServeError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_messages_are_distinct() {
        let errors = [
            ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 2,
            },
            ServeError::BadRequest {
                reason: "missing member \"spec\"".to_owned(),
            },
            ServeError::UnknownProperty {
                name: "nope".to_owned(),
            },
        ];
        let kinds: Vec<_> = errors.iter().map(ServeError::kind).collect();
        assert_eq!(kinds, vec!["overloaded", "bad_request", "unknown_property"]);
        assert!(errors[0].to_string().contains("batch"));
        assert!(errors[2].to_string().contains("nope"));
    }
}
