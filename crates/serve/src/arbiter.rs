//! Cross-request core arbitration.
//!
//! The scheduler inside one batch (`verifas_core::Scheduler`) splits a
//! fixed budget between the searches *of that batch*.  A server runs many
//! batches at once, so something above them must decide how many cores
//! each batch deserves — and revise that decision whenever the request
//! mix changes, not merely when a request finishes.  That something is
//! the [`Arbiter`].
//!
//! The policy is deliberately simple and worst-case-friendly:
//!
//! * while **no interactive** request is running, batch requests split
//!   the server's cores evenly (earliest-admitted requests take the
//!   remainder),
//! * the moment an **interactive** request is admitted, every batch
//!   request is squeezed to a floor of **one core** and the interactive
//!   requests split the rest evenly.
//!
//! Revisions reach running batches through the
//! [`SchedulerHandle`] attached to each
//! request: `set_total` re-splits the batch's shard budgets immediately,
//! and workers observe the new budget at their next round boundary.
//! Because plan/apply rounds are bit-identical for every worker count,
//! this preemption-by-rebalance is *advisory only* — it changes when
//! answers arrive, never what they are.
//!
//! Admission control lives here too, because admission and allocation
//! must agree under one lock: a request is either counted and funded, or
//! rejected with a typed [`ServeError::Overloaded`] before it touches an
//! engine.

use crate::admission::{AdmissionLimits, PriorityClass};
use crate::error::ServeError;
use std::sync::Mutex;
use verifas_core::SchedulerHandle;

/// Identifies one admitted request for the lifetime of the server.
pub type RequestId = u64;

/// What [`Arbiter::admit`] hands an admitted request.
#[derive(Debug, Clone)]
pub struct Admission {
    /// The request's server-wide id (also used to cancel/release it).
    pub id: RequestId,
    /// Remote control over the request's batch scheduler.  Attach it via
    /// `BatchBuilder::scheduler_handle` so later arbiter revisions reach
    /// the running batch mid-flight.
    pub handle: SchedulerHandle,
    /// The cores allocated at admission time — seed the batch's
    /// `batch_threads` with this so the first round already runs at the
    /// arbitrated width.
    pub cores: usize,
}

struct Entry {
    id: RequestId,
    class: PriorityClass,
    handle: SchedulerHandle,
    desired: usize,
}

#[derive(Default)]
struct ArbiterState {
    next_id: RequestId,
    entries: Vec<Entry>,
}

/// The server-global core budget and admission gate (see module docs).
pub struct Arbiter {
    total_cores: usize,
    limits: AdmissionLimits,
    state: Mutex<ArbiterState>,
}

impl Arbiter {
    /// An arbiter distributing `total_cores` (clamped to ≥ 1) under the
    /// given per-class admission limits.
    pub fn new(total_cores: usize, limits: AdmissionLimits) -> Self {
        Arbiter {
            total_cores: total_cores.max(1),
            limits,
            state: Mutex::new(ArbiterState::default()),
        }
    }

    /// The server-wide core budget being distributed.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// The configured admission limits.
    pub fn limits(&self) -> AdmissionLimits {
        self.limits
    }

    /// Admit one request of `class`, or refuse with
    /// [`ServeError::Overloaded`] when the class is at its in-flight
    /// limit.  Admission immediately re-splits the core budget, shrinking
    /// running requests' schedulers where the new arrival takes cores
    /// from them.
    pub fn admit(&self, class: PriorityClass) -> Result<Admission, ServeError> {
        let mut state = lock(&self.state);
        let in_flight = state
            .entries
            .iter()
            .filter(|entry| entry.class == class)
            .count();
        self.limits.admit(class, in_flight)?;
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push(Entry {
            id,
            class,
            handle: SchedulerHandle::new(),
            desired: 1,
        });
        self.rebalance(&mut state);
        let entry = state.entries.last().expect("entry just pushed");
        Ok(Admission {
            id,
            handle: entry.handle.clone(),
            cores: entry.desired,
        })
    }

    /// Release a finished (or failed, or cancelled) request and return
    /// its cores to the pool.  Unknown ids are ignored, so release is
    /// idempotent.
    pub fn release(&self, id: RequestId) {
        let mut state = lock(&self.state);
        let before = state.entries.len();
        state.entries.retain(|entry| entry.id != id);
        if state.entries.len() != before {
            self.rebalance(&mut state);
        }
    }

    /// The cores currently allocated to `id`, if it is still in flight.
    /// Read this just before starting the batch: a revision between
    /// admission and start is then already reflected in `batch_threads`.
    pub fn desired(&self, id: RequestId) -> Option<usize> {
        lock(&self.state)
            .entries
            .iter()
            .find(|entry| entry.id == id)
            .map(|entry| entry.desired)
    }

    /// In-flight request count of one class.
    pub fn in_flight(&self, class: PriorityClass) -> usize {
        lock(&self.state)
            .entries
            .iter()
            .filter(|entry| entry.class == class)
            .count()
    }

    /// Recompute every entry's allocation and push it through the
    /// entries' scheduler handles.  Called with the state lock held, so
    /// admission, release and allocation are always mutually consistent.
    fn rebalance(&self, state: &mut ArbiterState) {
        let interactive: Vec<usize> = indices_of(state, PriorityClass::Interactive);
        let batch: Vec<usize> = indices_of(state, PriorityClass::Batch);
        if interactive.is_empty() {
            assign_even(state, &batch, self.total_cores);
        } else {
            // Interactive work present: batch requests drop to the floor
            // of one core each, interactive splits what remains (never
            // less than one core per interactive request).
            for &index in &batch {
                set_desired(state, index, 1);
            }
            let pool = self
                .total_cores
                .saturating_sub(batch.len())
                .max(interactive.len());
            assign_even(state, &interactive, pool);
        }
    }
}

fn indices_of(state: &ArbiterState, class: PriorityClass) -> Vec<usize> {
    state
        .entries
        .iter()
        .enumerate()
        .filter(|(_, entry)| entry.class == class)
        .map(|(index, _)| index)
        .collect()
}

/// Split `pool` cores evenly over `indices` (admission order), at least
/// one core each, earliest entries taking the remainder.  The split is a
/// pure function of pool size and admission order — deterministic, so
/// tests can assert exact allocations.
fn assign_even(state: &mut ArbiterState, indices: &[usize], pool: usize) {
    if indices.is_empty() {
        return;
    }
    let base = (pool / indices.len()).max(1);
    let remainder = pool.saturating_sub(base * indices.len());
    for (rank, &index) in indices.iter().enumerate() {
        let extra = usize::from(rank < remainder);
        set_desired(state, index, base + extra);
    }
}

fn set_desired(state: &mut ArbiterState, index: usize, cores: usize) {
    let entry = &mut state.entries[index];
    if entry.desired != cores {
        entry.desired = cores;
        // No-op until the batch attaches the handle; the gateway bridges
        // that window by re-reading `desired` right before it starts.
        entry.handle.set_total(cores);
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter(cores: usize) -> Arbiter {
        Arbiter::new(
            cores,
            AdmissionLimits {
                max_interactive: 4,
                max_batch: 2,
            },
        )
    }

    #[test]
    fn batch_requests_split_cores_evenly_until_interactive_arrives() {
        let arb = arbiter(8);
        let b1 = arb.admit(PriorityClass::Batch).unwrap();
        assert_eq!(b1.cores, 8);
        let b2 = arb.admit(PriorityClass::Batch).unwrap();
        // Admitting the second batch halves the first.
        assert_eq!((arb.desired(b1.id), b2.cores), (Some(4), 4));

        // An interactive arrival squeezes every batch to one core and
        // takes the rest.
        let i1 = arb.admit(PriorityClass::Interactive).unwrap();
        assert_eq!(i1.cores, 6);
        assert_eq!(arb.desired(b1.id), Some(1));
        assert_eq!(arb.desired(b2.id), Some(1));

        // A second interactive splits the reclaimed pool.
        let i2 = arb.admit(PriorityClass::Interactive).unwrap();
        assert_eq!((arb.desired(i1.id), i2.cores), (Some(3), 3));

        // Interactive work finishing hands the cores straight back.
        arb.release(i1.id);
        arb.release(i2.id);
        assert_eq!(arb.desired(b1.id), Some(4));
        assert_eq!(arb.desired(b2.id), Some(4));
    }

    #[test]
    fn remainder_goes_to_earliest_admitted() {
        let arb = Arbiter::new(
            7,
            AdmissionLimits {
                max_interactive: 4,
                max_batch: 3,
            },
        );
        let b1 = arb.admit(PriorityClass::Batch).unwrap();
        let b2 = arb.admit(PriorityClass::Batch).unwrap();
        let b3 = arb.admit(PriorityClass::Batch).unwrap();
        assert_eq!(arb.desired(b1.id), Some(3));
        assert_eq!(arb.desired(b2.id), Some(2));
        assert_eq!(arb.desired(b3.id), Some(2));
    }

    #[test]
    fn over_limit_batch_is_refused_while_interactive_still_admits() {
        let arb = arbiter(4);
        let _b1 = arb.admit(PriorityClass::Batch).unwrap();
        let _b2 = arb.admit(PriorityClass::Batch).unwrap();
        let refused = arb.admit(PriorityClass::Batch).unwrap_err();
        assert_eq!(
            refused,
            ServeError::Overloaded {
                class: PriorityClass::Batch,
                limit: 2
            }
        );
        // The batch class being saturated does not gate interactive.
        assert!(arb.admit(PriorityClass::Interactive).is_ok());
    }

    #[test]
    fn more_requests_than_cores_floor_at_one_each() {
        let arb = Arbiter::new(
            2,
            AdmissionLimits {
                max_interactive: 4,
                max_batch: 4,
            },
        );
        let ids: Vec<_> = (0..4)
            .map(|_| arb.admit(PriorityClass::Batch).unwrap().id)
            .collect();
        for id in &ids {
            assert_eq!(arb.desired(*id), Some(1));
        }
        let i = arb.admit(PriorityClass::Interactive).unwrap();
        assert_eq!(i.cores, 1);
    }

    #[test]
    fn release_is_idempotent_and_frees_a_slot() {
        let arb = arbiter(4);
        let b1 = arb.admit(PriorityClass::Batch).unwrap();
        let _b2 = arb.admit(PriorityClass::Batch).unwrap();
        assert!(arb.admit(PriorityClass::Batch).is_err());
        arb.release(b1.id);
        arb.release(b1.id);
        assert_eq!(arb.in_flight(PriorityClass::Batch), 1);
        assert!(arb.admit(PriorityClass::Batch).is_ok());
    }
}
