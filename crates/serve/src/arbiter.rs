//! Cross-request core arbitration.
//!
//! The scheduler inside one batch (`verifas_core::Scheduler`) splits a
//! fixed budget between the searches *of that batch*.  A server runs many
//! batches at once, so something above them must decide how many cores
//! each batch deserves — and revise that decision whenever the request
//! mix changes, not merely when a request finishes.  That something is
//! the [`Arbiter`].
//!
//! The policy is deliberately simple and worst-case-friendly:
//!
//! * while **no interactive** request is running, batch requests split
//!   the server's cores evenly (earliest-admitted requests take the
//!   remainder),
//! * the moment an **interactive** request is admitted, every batch
//!   request is squeezed to a floor of **one core** and the interactive
//!   requests split the rest evenly.
//!
//! Revisions reach running batches through the
//! [`SchedulerHandle`] attached to each
//! request: `set_total` re-splits the batch's shard budgets immediately,
//! and workers observe the new budget at their next round boundary.
//! Because plan/apply rounds are bit-identical for every worker count,
//! this preemption-by-rebalance is *advisory only* — it changes when
//! answers arrive, never what they are.
//!
//! Admission gating does **not** live here: whether a request may run
//! now, must wait, or is refused is the
//! [`crate::admission::AdmissionQueue`]'s call.  The arbiter's two-step
//! API reflects that split: [`Arbiter::allocate`] mints a request id
//! immediately (so a queued request can already be named in its `queued`
//! frame and cancelled while waiting), and [`Arbiter::fund`] — called
//! only once the queue admits the request — enters it into the core
//! split.  A request that gives up while queued is never funded and
//! never perturbs running allocations.

use crate::admission::PriorityClass;
use std::sync::Mutex;
use verifas_core::SchedulerHandle;

/// Identifies one request for the lifetime of the server — minted at
/// arrival ([`Arbiter::allocate`]), before any slot is held.
pub type RequestId = u64;

/// What [`Arbiter::fund`] hands an admitted request.
#[derive(Debug, Clone)]
pub struct Admission {
    /// The request's server-wide id (also used to cancel/release it).
    pub id: RequestId,
    /// Remote control over the request's batch scheduler.  Attach it via
    /// `BatchBuilder::scheduler_handle` so later arbiter revisions reach
    /// the running batch mid-flight.
    pub handle: SchedulerHandle,
    /// The cores allocated at admission time — seed the batch's
    /// `batch_threads` with this so the first round already runs at the
    /// arbitrated width.
    pub cores: usize,
}

struct Entry {
    id: RequestId,
    class: PriorityClass,
    handle: SchedulerHandle,
    desired: usize,
}

#[derive(Default)]
struct ArbiterState {
    next_id: RequestId,
    entries: Vec<Entry>,
}

/// The server-global core budget (see module docs).
pub struct Arbiter {
    total_cores: usize,
    state: Mutex<ArbiterState>,
}

impl Arbiter {
    /// An arbiter distributing `total_cores` (clamped to ≥ 1).
    pub fn new(total_cores: usize) -> Self {
        Arbiter {
            total_cores: total_cores.max(1),
            state: Mutex::new(ArbiterState::default()),
        }
    }

    /// The server-wide core budget being distributed.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Mint the next request id.  Costs nothing and never fails: ids
    /// exist so that queued (not yet funded) requests can be streamed
    /// about and cancelled.
    pub fn allocate(&self) -> RequestId {
        let mut state = lock(&self.state);
        let id = state.next_id;
        state.next_id += 1;
        id
    }

    /// Enter an admitted request into the core split.  Funding
    /// immediately re-splits the budget, shrinking running requests'
    /// schedulers where the new arrival takes cores from them.
    ///
    /// Call only after the admission queue granted the request a slot;
    /// the arbiter itself imposes no limit (every funded request gets
    /// its one-core floor).
    pub fn fund(&self, id: RequestId, class: PriorityClass) -> Admission {
        let mut state = lock(&self.state);
        state.entries.push(Entry {
            id,
            class,
            handle: SchedulerHandle::new(),
            desired: 1,
        });
        self.rebalance(&mut state);
        let entry = state.entries.last().expect("entry just pushed");
        Admission {
            id,
            handle: entry.handle.clone(),
            cores: entry.desired,
        }
    }

    /// Release a finished (or failed, or cancelled) request and return
    /// its cores to the pool.  Unknown ids are ignored, so release is
    /// idempotent — and safe to call for ids that were allocated but
    /// never funded.
    pub fn release(&self, id: RequestId) {
        let mut state = lock(&self.state);
        let before = state.entries.len();
        state.entries.retain(|entry| entry.id != id);
        if state.entries.len() != before {
            self.rebalance(&mut state);
        }
    }

    /// The cores currently allocated to `id`, if it is funded.  Read
    /// this just before starting the batch: a revision between funding
    /// and start is then already reflected in `batch_threads`.
    pub fn desired(&self, id: RequestId) -> Option<usize> {
        lock(&self.state)
            .entries
            .iter()
            .find(|entry| entry.id == id)
            .map(|entry| entry.desired)
    }

    /// Funded (running) request count of one class.
    pub fn in_flight(&self, class: PriorityClass) -> usize {
        lock(&self.state)
            .entries
            .iter()
            .filter(|entry| entry.class == class)
            .count()
    }

    /// Recompute every entry's allocation and push it through the
    /// entries' scheduler handles.  Called with the state lock held, so
    /// funding, release and allocation are always mutually consistent.
    fn rebalance(&self, state: &mut ArbiterState) {
        let interactive: Vec<usize> = indices_of(state, PriorityClass::Interactive);
        let batch: Vec<usize> = indices_of(state, PriorityClass::Batch);
        if interactive.is_empty() {
            assign_even(state, &batch, self.total_cores);
        } else {
            // Interactive work present: batch requests drop to the floor
            // of one core each, interactive splits what remains (never
            // less than one core per interactive request).
            for &index in &batch {
                set_desired(state, index, 1);
            }
            let pool = self
                .total_cores
                .saturating_sub(batch.len())
                .max(interactive.len());
            assign_even(state, &interactive, pool);
        }
    }
}

fn indices_of(state: &ArbiterState, class: PriorityClass) -> Vec<usize> {
    state
        .entries
        .iter()
        .enumerate()
        .filter(|(_, entry)| entry.class == class)
        .map(|(index, _)| index)
        .collect()
}

/// Split `pool` cores evenly over `indices` (admission order), at least
/// one core each, earliest entries taking the remainder.  The split is a
/// pure function of pool size and admission order — deterministic, so
/// tests can assert exact allocations.
fn assign_even(state: &mut ArbiterState, indices: &[usize], pool: usize) {
    if indices.is_empty() {
        return;
    }
    let base = (pool / indices.len()).max(1);
    let remainder = pool.saturating_sub(base * indices.len());
    for (rank, &index) in indices.iter().enumerate() {
        let extra = usize::from(rank < remainder);
        set_desired(state, index, base + extra);
    }
}

fn set_desired(state: &mut ArbiterState, index: usize, cores: usize) {
    let entry = &mut state.entries[index];
    if entry.desired != cores {
        entry.desired = cores;
        // No-op until the batch attaches the handle; the gateway bridges
        // that window by re-reading `desired` right before it starts.
        entry.handle.set_total(cores);
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fund(arb: &Arbiter, class: PriorityClass) -> Admission {
        let id = arb.allocate();
        arb.fund(id, class)
    }

    #[test]
    fn batch_requests_split_cores_evenly_until_interactive_arrives() {
        let arb = Arbiter::new(8);
        let b1 = fund(&arb, PriorityClass::Batch);
        assert_eq!(b1.cores, 8);
        let b2 = fund(&arb, PriorityClass::Batch);
        // Funding the second batch halves the first.
        assert_eq!((arb.desired(b1.id), b2.cores), (Some(4), 4));

        // An interactive arrival squeezes every batch to one core and
        // takes the rest.
        let i1 = fund(&arb, PriorityClass::Interactive);
        assert_eq!(i1.cores, 6);
        assert_eq!(arb.desired(b1.id), Some(1));
        assert_eq!(arb.desired(b2.id), Some(1));

        // A second interactive splits the reclaimed pool.
        let i2 = fund(&arb, PriorityClass::Interactive);
        assert_eq!((arb.desired(i1.id), i2.cores), (Some(3), 3));

        // Interactive work finishing hands the cores straight back.
        arb.release(i1.id);
        arb.release(i2.id);
        assert_eq!(arb.desired(b1.id), Some(4));
        assert_eq!(arb.desired(b2.id), Some(4));
    }

    #[test]
    fn remainder_goes_to_earliest_admitted() {
        let arb = Arbiter::new(7);
        let b1 = fund(&arb, PriorityClass::Batch);
        let b2 = fund(&arb, PriorityClass::Batch);
        let b3 = fund(&arb, PriorityClass::Batch);
        assert_eq!(arb.desired(b1.id), Some(3));
        assert_eq!(arb.desired(b2.id), Some(2));
        assert_eq!(arb.desired(b3.id), Some(2));
    }

    #[test]
    fn allocation_without_funding_never_perturbs_the_split() {
        let arb = Arbiter::new(8);
        let b1 = fund(&arb, PriorityClass::Batch);
        // A queued arrival holds an id but no cores.
        let queued = arb.allocate();
        assert_eq!(arb.desired(b1.id), Some(8));
        assert_eq!(arb.desired(queued), None);
        // Giving up while queued releases nothing and changes nothing.
        arb.release(queued);
        assert_eq!(arb.desired(b1.id), Some(8));
        // Funding it later is when the split moves.
        arb.fund(arb.allocate(), PriorityClass::Batch);
        assert_eq!(arb.desired(b1.id), Some(4));
    }

    #[test]
    fn more_requests_than_cores_floor_at_one_each() {
        let arb = Arbiter::new(2);
        let ids: Vec<_> = (0..4)
            .map(|_| fund(&arb, PriorityClass::Batch).id)
            .collect();
        for id in &ids {
            assert_eq!(arb.desired(*id), Some(1));
        }
        let i = fund(&arb, PriorityClass::Interactive);
        assert_eq!(i.cores, 1);
    }

    #[test]
    fn release_is_idempotent() {
        let arb = Arbiter::new(4);
        let b1 = fund(&arb, PriorityClass::Batch);
        let _b2 = fund(&arb, PriorityClass::Batch);
        arb.release(b1.id);
        arb.release(b1.id);
        assert_eq!(arb.in_flight(PriorityClass::Batch), 1);
    }
}
