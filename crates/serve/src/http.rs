//! A hand-rolled HTTP/1.1 front end over [`crate::gateway::Gateway`].
//!
//! The build environment is offline, so the server is written directly
//! over [`std::net::TcpListener`]: a blocking acceptor thread hands
//! connections to a small fixed pool of worker threads over an `mpsc`
//! channel, and each worker parses one request, dispatches it, and
//! closes the connection.  Verification responses stream as
//! newline-delimited JSON with `Connection: close` delimiting the body —
//! every frame is flushed the moment the underlying search finishes, so
//! a client sees per-property reports in completion order, live.
//!
//! Routes:
//!
//! | method | path           | behaviour                                      |
//! |--------|----------------|------------------------------------------------|
//! | POST   | `/v1/verify`   | stream `queued`?/`admitted`/`report`.../`done` |
//! | POST   | `/v1/cancel`   | cancel a queued or running request by id       |
//! | POST   | `/v1/hash`     | canonical spec hash of a `.has` source         |
//! | POST   | `/v1/shutdown` | cancel everything and stop the server          |
//! | GET    | `/metrics`     | Prometheus-style text exposition               |
//! | GET    | `/healthz`     | liveness probe                                 |
//!
//! Error mapping: queue overflow is `429 Too Many Requests`, an
//! oversized body is `413 Content Too Large`, a wrong method on a known
//! path is `405 Method Not Allowed`, malformed requests and spec errors
//! are `400 Bad Request` — each with a single `error` frame as the
//! body, so clients parse one shape everywhere.  A client that times
//! out, resets, or disconnects mid-request gets a silent close, never a
//! worker crash.
//!
//! Robustness: each connection is handled under
//! [`std::panic::catch_unwind`] — a panicking handler (for example one
//! detonated by a [`FaultPlan`] worker-panic
//! site) closes that one connection, bumps
//! `verifas_worker_panics_total`, and the pool keeps serving.  The
//! read/write fault sites of an installed plan stall or reset the
//! socket at the byte layer, which is exactly where a hostile network
//! would.

use crate::error::ServeError;
use crate::faults::{FaultPlan, FaultSite};
use crate::gateway::{Gateway, ServeConfig};
use crate::protocol::{
    cancelled_frame, error_frame, parse_cancel, parse_hash_request, VerifyRequest,
};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request body (a `.has` spec is a few KiB; this is
/// three orders of magnitude of headroom, not a real spec size).
const MAX_BODY: usize = 4 << 20;

/// How long a worker waits for a slow client before giving up on the
/// connection (slowloris defence: a client trickling headers holds a
/// worker for at most this long).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The running HTTP server.  Dropping it shuts it down (idempotent with
/// an explicit [`Server::shutdown`] call).
pub struct Server {
    addr: SocketAddr,
    gateway: Arc<Gateway>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving with
    /// `workers` connection-handling threads (clamped to ≥ 1).
    pub fn start(addr: &str, config: ServeConfig, workers: usize) -> io::Result<Server> {
        Server::start_with_faults(addr, config, workers, None)
    }

    /// [`Server::start`] with a seeded [`FaultPlan`] installed — the
    /// chaos-test entry point, also reachable via
    /// `verifas serve --fault-plan`.
    pub fn start_with_faults(
        addr: &str,
        config: ServeConfig,
        workers: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let gateway = Arc::new(Gateway::with_faults(config, faults));
        let stopping = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));

        let worker_handles = (0..workers.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let gateway = Arc::clone(&gateway);
                let stopping = Arc::clone(&stopping);
                std::thread::spawn(move || loop {
                    let next = {
                        let guard = receiver.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match next {
                        Ok(stream) => handle_connection(stream, &gateway, &stopping, addr),
                        Err(_) => break, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break; // the wake-up connection, or a late client
                    }
                    if let Ok(stream) = stream {
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // `sender` drops here; idle workers wake and exit.
            })
        };

        Ok(Server {
            addr,
            gateway,
            stopping,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (use with port 0 to discover the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway behind the server (tests and diagnostics).
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Stop accepting, cancel all in-flight verification requests, and
    /// join every server thread.  Idempotent.
    pub fn shutdown(&mut self) {
        if !self.stopping.swap(true, Ordering::SeqCst) {
            self.gateway.cancel_all();
            // Wake the acceptor out of its blocking `accept`.
            let _ = TcpStream::connect(self.addr);
        }
        self.wait();
    }

    /// Block until the server stops — a `POST /v1/shutdown` request, or
    /// an explicit [`Server::shutdown`] from another thread — and join
    /// every server thread.  The `verifas serve` main loop.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Why a request could not be read off the socket, split by what the
/// client should see: a typed HTTP error, or nothing at all.
enum ReadError {
    /// The declared body exceeds [`MAX_BODY`] — answer `413`.
    TooLarge,
    /// The request head or body is malformed — answer `400`.
    Malformed(String),
    /// The client timed out, reset, or hung up mid-request — close the
    /// connection silently (there is no one left to answer).
    Disconnected,
}

fn handle_connection(
    stream: TcpStream,
    gateway: &Gateway,
    stopping: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    // Socket-level read faults, injected before the first byte is
    // parsed: a stall models a half-dead client link, a reset a client
    // that vanished between `accept` and `read`.
    if gateway.fault_fires(FaultSite::ReadStall) {
        std::thread::sleep(fault_stall(gateway));
    }
    if gateway.fault_fires(FaultSite::ReadReset) {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(ReadError::TooLarge) => {
            let _ = respond_error(
                &stream,
                &ServeError::PayloadTooLarge {
                    limit_bytes: MAX_BODY,
                },
            );
            return;
        }
        Err(ReadError::Malformed(reason)) => {
            let _ = respond_error(&stream, &ServeError::BadRequest { reason });
            return;
        }
        Err(ReadError::Disconnected) => return,
    };
    // Contain a panicking handler: this one connection dies, the worker
    // thread (and every gauge — the gateway's request guard released
    // them while the panic unwound) survives.
    let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(&stream, gateway, stopping, addr, &request)
    }));
    if handled.is_err() {
        gateway.metrics().worker_panicked();
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// The injected stall duration of the installed plan (zero when no plan
/// is installed — callers only ask after a site fired).
fn fault_stall(gateway: &Gateway) -> Duration {
    gateway.faults().map_or(Duration::ZERO, FaultPlan::stall)
}

fn dispatch(
    stream: &TcpStream,
    gateway: &Gateway,
    stopping: &Arc<AtomicBool>,
    addr: SocketAddr,
    request: &Request,
) -> io::Result<()> {
    // The connection-panic fault site: a handler that blows up after
    // the request was read, exercising the catch_unwind containment in
    // `handle_connection`.
    if gateway.fault_fires(FaultSite::ConnPanic) {
        panic!("injected fault: connection handler panic");
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/verify") => serve_verify(stream, gateway, &request.body),
        ("POST", "/v1/cancel") => match parse_cancel(&request.body) {
            Ok(id) => {
                let found = gateway.cancel(id);
                respond(
                    stream,
                    200,
                    "OK",
                    "application/json",
                    &cancelled_frame(id, found),
                )
            }
            Err(e) => respond_error(stream, &e),
        },
        ("POST", "/v1/hash") => match gateway.hash_frame_for(&request.body_spec()) {
            Ok(frame) => respond(stream, 200, "OK", "application/json", &frame),
            Err(e) => respond_error(stream, &e),
        },
        ("POST", "/v1/shutdown") => {
            let result = respond(
                stream,
                200,
                "OK",
                "application/json",
                r#"{"frame":"shutdown"}"#,
            );
            if !stopping.swap(true, Ordering::SeqCst) {
                gateway.cancel_all();
                let _ = TcpStream::connect(addr); // wake the acceptor
            }
            result
        }
        ("GET", "/metrics") => respond(
            stream,
            200,
            "OK",
            "text/plain; version=0.0.4",
            &gateway.metrics_text(),
        ),
        ("GET", "/healthz") => respond(stream, 200, "OK", "text/plain", "ok"),
        // A known path with the wrong method is a distinct, typed
        // refusal — not a mysterious 404, and never a dropped
        // connection.
        (
            _,
            "/v1/verify" | "/v1/cancel" | "/v1/hash" | "/v1/shutdown" | "/metrics" | "/healthz",
        ) => respond(
            stream,
            405,
            "Method Not Allowed",
            "application/json",
            &error_frame(&ServeError::BadRequest {
                reason: format!("method {} not allowed on {}", request.method, request.path),
            }),
        ),
        _ => respond(
            stream,
            404,
            "Not Found",
            "application/json",
            &error_frame(&ServeError::BadRequest {
                reason: format!("no route {} {}", request.method, request.path),
            }),
        ),
    }
}

impl Request {
    /// `/v1/hash` accepts either a JSON envelope `{"spec": "..."}` or the
    /// raw `.has` source (convenient for `curl --data-binary @spec.has`).
    fn body_spec(&self) -> String {
        parse_hash_request(&self.body).unwrap_or_else(|_| self.body.clone())
    }
}

fn serve_verify(stream: &TcpStream, gateway: &Gateway, body: &str) -> io::Result<()> {
    let request = match VerifyRequest::from_json(body) {
        Ok(request) => request,
        Err(e) => return respond_error(stream, &e),
    };
    // The response streams: one JSON frame per line, flushed as
    // produced; `Connection: close` delimits the body.  The status line
    // goes out lazily with the *first* frame, so a request refused
    // before any frame (compile error, queue overflow) still gets its
    // proper 400/413/429 instead of a 200 it would have to un-see.
    // Write errors are swallowed: a client that disconnected mid-stream
    // costs at most the remainder of its batch, after which every
    // resource is reclaimed through the gateway's request guard.
    let writer = Mutex::new(stream);
    let head_written = AtomicBool::new(false);
    let emit = |line: &str| {
        // Socket-level write faults: a stall models TCP backpressure
        // from a stuck reader, a reset a client that vanished
        // mid-stream.  Either way the verification keeps its course and
        // the server stays accountable for every gauge.
        if gateway.fault_fires(FaultSite::WriteStall) {
            std::thread::sleep(fault_stall(gateway));
        }
        if gateway.fault_fires(FaultSite::WriteReset) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        let mut sink = *guard;
        if !head_written.swap(true, Ordering::SeqCst) {
            let _ = write_head(sink, 200, "OK", "application/x-ndjson", None);
        }
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    };
    match gateway.submit(&request, &emit) {
        Ok(_summary) => Ok(()), // the `done` frame already went out
        Err(e) if head_written.load(Ordering::SeqCst) => {
            // Failed mid-stream (cannot happen today, but stay well-
            // formed for NDJSON clients if it ever does).
            emit(&error_frame(&e));
            Ok(())
        }
        Err(e) => respond_error(stream, &e),
    }
}

fn respond_error(stream: &TcpStream, error: &ServeError) -> io::Result<()> {
    let (status, reason) = match error {
        ServeError::Overloaded { .. } => (429, "Too Many Requests"),
        ServeError::PayloadTooLarge { .. } => (413, "Content Too Large"),
        _ => (400, "Bad Request"),
    };
    respond(
        stream,
        status,
        reason,
        "application/json",
        &error_frame(error),
    )
}

fn respond(
    stream: &TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_head(stream, status, reason, content_type, Some(body.len() + 1))?;
    let mut sink = stream;
    sink.write_all(body.as_bytes())?;
    sink.write_all(b"\n")?;
    sink.flush()
}

fn write_head(
    stream: &TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    content_length: Option<usize>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nConnection: close\r\n"
    );
    if let Some(length) = content_length {
        head.push_str(&format!("Content-Length: {length}\r\n"));
    }
    head.push_str("\r\n");
    let mut sink = stream;
    sink.write_all(head.as_bytes())?;
    sink.flush()
}

fn read_request(stream: &TcpStream) -> Result<Request, ReadError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader
        .read_line(&mut line)
        .map_err(|_| ReadError::Disconnected)?
        == 0
    {
        // Connected and hung up without a byte: nothing to answer.
        return Err(ReadError::Disconnected);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(ReadError::Malformed("bad request line".to_owned()));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|_| ReadError::Disconnected)?;
        if n == 0 {
            // Truncated mid-headers (or a slowloris that hit the read
            // timeout above): the client is gone or hostile.
            return Err(ReadError::Disconnected);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad content-length".to_owned()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ReadError::Disconnected)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("body is not UTF-8".to_owned()))?;
    Ok(Request { method, path, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_core::Json;

    const SPEC: &str = r#"
spec "httptiny";
schema { relation R(a: data); }
task Root {
    vars { status: data }
    service go {
        pre: status == null;
        post: status == "Done";
    }
}
init: status == null;
property "reaches-done" on Root {
    formula: F { status == "Done" };
}
"#;

    /// Minimal HTTP/1.1 client: send one request, read the whole
    /// response (the server closes the connection), split off the body.
    fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, tail) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), tail.to_owned())
    }

    fn verify_body(spec: &str) -> String {
        Json::Obj(vec![("spec".to_owned(), Json::Str(spec.to_owned()))]).to_string()
    }

    #[test]
    fn verify_metrics_hash_and_shutdown_over_loopback() {
        let mut server = Server::start("127.0.0.1:0", ServeConfig::default(), 2).unwrap();
        let addr = server.local_addr();

        let (head, body) = roundtrip(addr, "POST", "/v1/verify", &verify_body(SPEC));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/x-ndjson"));
        let frames: Vec<Json> = body
            .lines()
            .map(|line| Json::parse(line).unwrap())
            .collect();
        assert_eq!(frames.len(), 3, "admitted + report + done: {body}");
        assert_eq!(
            frames[0].get("frame").and_then(Json::as_str),
            Some("admitted")
        );
        assert_eq!(
            frames[1].get("frame").and_then(Json::as_str),
            Some("report")
        );
        assert_eq!(frames[2].get("frame").and_then(Json::as_str), Some("done"));

        let (head, body) = roundtrip(addr, "POST", "/v1/hash", SPEC);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let hash = Json::parse(body.trim()).unwrap();
        assert_eq!(hash.get("name").and_then(Json::as_str), Some("httptiny"));

        let (head, body) = roundtrip(addr, "GET", "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("verifas_requests_admitted_total{class=\"interactive\"} 1"));
        assert!(body.contains("verifas_session_cache_entries 1"));

        let (head, _) = roundtrip(addr, "GET", "/healthz", "");
        assert!(head.starts_with("HTTP/1.1 200"));
        let (head, _) = roundtrip(addr, "GET", "/nope", "");
        assert!(head.starts_with("HTTP/1.1 404"));

        let (head, _) = roundtrip(addr, "POST", "/v1/shutdown", "{}");
        assert!(head.starts_with("HTTP/1.1 200"));
        server.shutdown(); // joins the already-stopping threads
    }

    #[test]
    fn malformed_verify_gets_a_400_error_frame() {
        let server = Server::start("127.0.0.1:0", ServeConfig::default(), 1).unwrap();
        let (head, body) = roundtrip(server.local_addr(), "POST", "/v1/verify", "{not json");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        let frame = Json::parse(body.trim()).unwrap();
        assert_eq!(
            frame.get("kind").and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn an_oversized_body_gets_a_typed_413() {
        let server = Server::start("127.0.0.1:0", ServeConfig::default(), 1).unwrap();
        // Declare a body over the limit; the server must refuse on the
        // headers alone, without reading (or us sending) the payload.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let request = format!(
            "POST /v1/verify HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        let (_, body) = response.split_once("\r\n\r\n").unwrap();
        let frame = Json::parse(body.trim()).unwrap();
        assert_eq!(
            frame.get("kind").and_then(Json::as_str),
            Some("payload_too_large")
        );
    }

    #[test]
    fn a_wrong_method_on_a_known_path_gets_a_405() {
        let server = Server::start("127.0.0.1:0", ServeConfig::default(), 1).unwrap();
        let (head, _) = roundtrip(server.local_addr(), "GET", "/v1/verify", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        let (head, _) = roundtrip(server.local_addr(), "DELETE", "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    }

    #[test]
    fn truncated_requests_close_cleanly_and_the_server_lives() {
        let server = Server::start("127.0.0.1:0", ServeConfig::default(), 1).unwrap();
        let addr = server.local_addr();
        // Hang up mid-headers.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /v1/verify HTTP/1.1\r\nContent-Le")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "{response}");
        // Hang up mid-body.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /v1/verify HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "{response}");
        // The single worker survived both and still serves.
        let (head, _) = roundtrip(addr, "GET", "/healthz", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn an_injected_connection_panic_is_contained() {
        let plan = Arc::new(FaultPlan::new(11).with_rate(FaultSite::ConnPanic, 2));
        let server =
            Server::start_with_faults("127.0.0.1:0", ServeConfig::default(), 1, Some(plan))
                .unwrap();
        let addr = server.local_addr();
        // With rate 2 roughly half the dispatches panic; after a burst
        // the single worker must still answer.
        let mut alive = 0;
        for _ in 0..8 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            if response.starts_with("HTTP/1.1 200") {
                alive += 1;
            }
        }
        assert!(alive >= 1, "the worker never recovered from a panic");
        let panics = server
            .gateway()
            .faults()
            .unwrap()
            .fired_count(FaultSite::ConnPanic);
        assert!(panics >= 1, "the fault plan never fired");
        assert!(server
            .gateway()
            .metrics_text()
            .contains(&format!("verifas_worker_panics_total {panics}")));
    }
}
