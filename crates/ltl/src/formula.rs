//! Propositional linear-time temporal logic (LTL) formulas.
//!
//! LTL formulas are built over opaque proposition identifiers
//! ([`PropId`]); the mapping from propositions to first-order conditions or
//! services of a HAS\* task lives in [`crate::ltlfo`].  Besides the usual
//! constructors the module provides
//!
//! * negation normal form ([`Ltl::nnf`]) used by the Büchi construction,
//! * a reference semantics over ultimately-periodic ("lasso") words
//!   ([`Ltl::eval_lasso`]) used to cross-check the automaton construction,
//! * the *alive* embedding ([`Ltl::finite_embedding`]) translating
//!   finite-trace (LTLf) satisfaction into infinite-trace satisfaction over
//!   words padded with a `¬alive` suffix — this is how VERIFAS handles
//!   local runs that terminate (the paper's `Q_fin` mechanism).

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an (opaque) atomic proposition.
pub type PropId = u32;

/// A truth assignment to propositions, encoded as a bit set (proposition
/// `i` is true iff bit `i` is set).  Sufficient for the ≤ 64 propositions
/// used anywhere in this project.
pub type Letter = u64;

/// `true` iff proposition `p` holds in `letter`.
pub fn letter_has(letter: Letter, p: PropId) -> bool {
    letter & (1u64 << p) != 0
}

/// Build a letter from the list of true propositions.
pub fn letter_of(props: &[PropId]) -> Letter {
    props.iter().fold(0u64, |acc, p| acc | (1u64 << p))
}

/// An LTL formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ltl {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Atomic proposition.
    Prop(PropId),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Next (`X φ`).
    Next(Box<Ltl>),
    /// Until (`φ U ψ`).
    Until(Box<Ltl>, Box<Ltl>),
    /// Release (`φ R ψ`), the dual of until.
    Release(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// Atomic proposition.
    pub fn prop(p: PropId) -> Ltl {
        Ltl::Prop(p)
    }

    /// Negation (with trivial simplifications).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Ltl) -> Ltl {
        match f {
            Ltl::True => Ltl::False,
            Ltl::False => Ltl::True,
            Ltl::Not(inner) => *inner,
            other => Ltl::Not(Box::new(other)),
        }
    }

    /// Conjunction (with unit simplifications).
    pub fn and(a: Ltl, b: Ltl) -> Ltl {
        match (a, b) {
            (Ltl::False, _) | (_, Ltl::False) => Ltl::False,
            (Ltl::True, x) | (x, Ltl::True) => x,
            (a, b) => Ltl::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction (with unit simplifications).
    pub fn or(a: Ltl, b: Ltl) -> Ltl {
        match (a, b) {
            (Ltl::True, _) | (_, Ltl::True) => Ltl::True,
            (Ltl::False, x) | (x, Ltl::False) => x,
            (a, b) => Ltl::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Implication `a → b` encoded as `¬a ∨ b`.
    pub fn implies(a: Ltl, b: Ltl) -> Ltl {
        Ltl::or(Ltl::not(a), b)
    }

    /// Next.
    pub fn next(f: Ltl) -> Ltl {
        Ltl::Next(Box::new(f))
    }

    /// Until.
    pub fn until(a: Ltl, b: Ltl) -> Ltl {
        Ltl::Until(Box::new(a), Box::new(b))
    }

    /// Release.
    pub fn release(a: Ltl, b: Ltl) -> Ltl {
        Ltl::Release(Box::new(a), Box::new(b))
    }

    /// Eventually (`F φ = true U φ`).
    pub fn eventually(f: Ltl) -> Ltl {
        Ltl::until(Ltl::True, f)
    }

    /// Always (`G φ = false R φ`).
    pub fn globally(f: Ltl) -> Ltl {
        Ltl::release(Ltl::False, f)
    }

    /// Negation normal form: negations pushed down to propositions using
    /// the dualities `¬X = X¬`, `¬(φ U ψ) = ¬φ R ¬ψ`, `¬(φ R ψ) = ¬φ U ¬ψ`.
    pub fn nnf(&self) -> Ltl {
        fn go(f: &Ltl, neg: bool) -> Ltl {
            match f {
                Ltl::True => {
                    if neg {
                        Ltl::False
                    } else {
                        Ltl::True
                    }
                }
                Ltl::False => {
                    if neg {
                        Ltl::True
                    } else {
                        Ltl::False
                    }
                }
                Ltl::Prop(p) => {
                    if neg {
                        Ltl::Not(Box::new(Ltl::Prop(*p)))
                    } else {
                        Ltl::Prop(*p)
                    }
                }
                Ltl::Not(inner) => go(inner, !neg),
                Ltl::And(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        Ltl::or(a, b)
                    } else {
                        Ltl::and(a, b)
                    }
                }
                Ltl::Or(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        Ltl::and(a, b)
                    } else {
                        Ltl::or(a, b)
                    }
                }
                Ltl::Next(inner) => Ltl::next(go(inner, neg)),
                Ltl::Until(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        Ltl::release(a, b)
                    } else {
                        Ltl::until(a, b)
                    }
                }
                Ltl::Release(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        Ltl::until(a, b)
                    } else {
                        Ltl::release(a, b)
                    }
                }
            }
        }
        go(self, false)
    }

    /// The negated formula, in negation normal form.
    pub fn negated_nnf(&self) -> Ltl {
        Ltl::not(self.clone()).nnf()
    }

    /// All proposition identifiers occurring in the formula.
    pub fn props(&self) -> BTreeSet<PropId> {
        let mut out = BTreeSet::new();
        fn go(f: &Ltl, out: &mut BTreeSet<PropId>) {
            match f {
                Ltl::True | Ltl::False => {}
                Ltl::Prop(p) => {
                    out.insert(*p);
                }
                Ltl::Not(a) | Ltl::Next(a) => go(a, out),
                Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        go(self, &mut out);
        out
    }

    /// Number of nodes of the syntax tree.
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 1,
            Ltl::Not(a) | Ltl::Next(a) => 1 + a.size(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// The *alive* embedding of finite-trace (LTLf) semantics into standard
    /// infinite-trace semantics (De Giacomo & Vardi).  Given a reserved
    /// proposition `alive` that holds exactly on the positions of the
    /// original finite word (and is false on the infinite padding that
    /// follows it), the returned formula is satisfied by
    /// `w · padding^ω` iff the finite word `w` satisfies `self` under
    /// finite-trace semantics with *strong* next.
    ///
    /// The formula must be in negation normal form (call [`Ltl::nnf`]
    /// first); propositions are guarded so that their value on padding
    /// positions is irrelevant.
    pub fn finite_embedding(&self, alive: PropId) -> Ltl {
        let alive_f = Ltl::prop(alive);
        let not_alive = Ltl::not(Ltl::prop(alive));
        match self {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Prop(_) | Ltl::Not(_) => self.clone(),
            Ltl::And(a, b) => Ltl::and(a.finite_embedding(alive), b.finite_embedding(alive)),
            Ltl::Or(a, b) => Ltl::or(a.finite_embedding(alive), b.finite_embedding(alive)),
            // Strong next: there must be a next position of the finite word.
            Ltl::Next(a) => Ltl::next(Ltl::and(alive_f, a.finite_embedding(alive))),
            // The witness position of an until must be a real position.
            Ltl::Until(a, b) => Ltl::until(
                a.finite_embedding(alive),
                Ltl::and(alive_f, b.finite_embedding(alive)),
            ),
            // Release only constrains real positions.
            Ltl::Release(a, b) => Ltl::release(
                a.finite_embedding(alive),
                Ltl::or(not_alive, b.finite_embedding(alive)),
            ),
        }
    }

    /// Reference semantics over an ultimately-periodic word
    /// `prefix · looped^ω` (the loop must be non-empty).  Used to validate
    /// the Büchi construction; complexity is `O(|φ|·(|prefix|+|loop|)²)`,
    /// fine for tests.
    pub fn eval_lasso(&self, prefix: &[Letter], looped: &[Letter]) -> bool {
        assert!(
            !looped.is_empty(),
            "the loop of a lasso word must be non-empty"
        );
        let n = prefix.len() + looped.len();
        let letter = |i: usize| -> Letter {
            if i < prefix.len() {
                prefix[i]
            } else {
                looped[i - prefix.len()]
            }
        };
        let next = |i: usize| -> usize {
            if i + 1 < n {
                i + 1
            } else {
                prefix.len()
            }
        };
        // Evaluate bottom-up; truth vector per subformula, fixpoints for
        // until/release.
        fn eval(
            f: &Ltl,
            n: usize,
            letter: &dyn Fn(usize) -> Letter,
            next: &dyn Fn(usize) -> usize,
        ) -> Vec<bool> {
            match f {
                Ltl::True => vec![true; n],
                Ltl::False => vec![false; n],
                Ltl::Prop(p) => (0..n).map(|i| letter_has(letter(i), *p)).collect(),
                Ltl::Not(a) => eval(a, n, letter, next).into_iter().map(|b| !b).collect(),
                Ltl::And(a, b) => {
                    let (va, vb) = (eval(a, n, letter, next), eval(b, n, letter, next));
                    va.into_iter().zip(vb).map(|(x, y)| x && y).collect()
                }
                Ltl::Or(a, b) => {
                    let (va, vb) = (eval(a, n, letter, next), eval(b, n, letter, next));
                    va.into_iter().zip(vb).map(|(x, y)| x || y).collect()
                }
                Ltl::Next(a) => {
                    let va = eval(a, n, letter, next);
                    (0..n).map(|i| va[next(i)]).collect()
                }
                Ltl::Until(a, b) => {
                    let (va, vb) = (eval(a, n, letter, next), eval(b, n, letter, next));
                    // Least fixpoint of v = vb ∨ (va ∧ v∘next).
                    let mut v = vec![false; n];
                    loop {
                        let mut changed = false;
                        for i in (0..n).rev() {
                            let new = vb[i] || (va[i] && v[next(i)]);
                            if new != v[i] {
                                v[i] = new;
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    v
                }
                Ltl::Release(a, b) => {
                    let (va, vb) = (eval(a, n, letter, next), eval(b, n, letter, next));
                    // Greatest fixpoint of v = vb ∧ (va ∨ v∘next).
                    let mut v = vec![true; n];
                    loop {
                        let mut changed = false;
                        for i in (0..n).rev() {
                            let new = vb[i] && (va[i] || v[next(i)]);
                            if new != v[i] {
                                v[i] = new;
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    v
                }
            }
        }
        eval(self, n, &letter, &next)[0]
    }

    /// Finite-trace (LTLf) semantics with strong next, evaluated directly
    /// on a finite non-empty word.  Used as the concrete-run oracle.
    pub fn eval_finite(&self, word: &[Letter]) -> bool {
        assert!(
            !word.is_empty(),
            "LTLf semantics is defined on non-empty words"
        );
        fn at(f: &Ltl, word: &[Letter], i: usize) -> bool {
            match f {
                Ltl::True => true,
                Ltl::False => false,
                Ltl::Prop(p) => letter_has(word[i], *p),
                Ltl::Not(a) => !at(a, word, i),
                Ltl::And(a, b) => at(a, word, i) && at(b, word, i),
                Ltl::Or(a, b) => at(a, word, i) || at(b, word, i),
                Ltl::Next(a) => i + 1 < word.len() && at(a, word, i + 1),
                Ltl::Until(a, b) => {
                    (i..word.len()).any(|j| at(b, word, j) && (i..j).all(|k| at(a, word, k)))
                }
                Ltl::Release(a, b) => {
                    (i..word.len()).all(|j| at(b, word, j) || (i..j).any(|k| at(a, word, k)))
                }
            }
        }
        at(self, word, 0)
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(p) => write!(f, "p{p}"),
            Ltl::Not(a) => write!(f, "¬({a})"),
            Ltl::And(a, b) => write!(f, "({a} ∧ {b})"),
            Ltl::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Ltl::Next(a) => write!(f, "X({a})"),
            Ltl::Until(a, b) => write!(f, "({a} U {b})"),
            Ltl::Release(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: PropId) -> Ltl {
        Ltl::prop(i)
    }

    #[test]
    fn constructors_simplify_units() {
        assert_eq!(Ltl::and(Ltl::True, p(0)), p(0));
        assert_eq!(Ltl::and(Ltl::False, p(0)), Ltl::False);
        assert_eq!(Ltl::or(Ltl::False, p(0)), p(0));
        assert_eq!(Ltl::or(Ltl::True, p(0)), Ltl::True);
        assert_eq!(Ltl::not(Ltl::not(p(0))), p(0));
        assert_eq!(Ltl::not(Ltl::True), Ltl::False);
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = Ltl::not(Ltl::until(p(0), p(1)));
        assert_eq!(
            f.nnf(),
            Ltl::release(Ltl::not(p(0)).nnf(), Ltl::not(p(1)).nnf())
        );
        let g = Ltl::not(Ltl::globally(p(0)));
        // ¬G p = F ¬p = true U ¬p
        assert_eq!(g.nnf(), Ltl::until(Ltl::True, Ltl::Not(Box::new(p(0)))));
        let h = Ltl::not(Ltl::next(p(2)));
        assert_eq!(h.nnf(), Ltl::next(Ltl::Not(Box::new(p(2)))));
    }

    #[test]
    fn props_and_size() {
        let f = Ltl::until(p(0), Ltl::and(p(3), Ltl::next(p(1))));
        assert_eq!(f.props().into_iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(f.size(), 6);
    }

    #[test]
    fn lasso_semantics_globally_eventually() {
        let a = letter_of(&[0]);
        let b = letter_of(&[1]);
        let empty = letter_of(&[]);
        // G p0 on (a)^ω
        assert!(Ltl::globally(p(0)).eval_lasso(&[], &[a]));
        assert!(!Ltl::globally(p(0)).eval_lasso(&[], &[a, b]));
        // F p1 with p1 only in the loop
        assert!(Ltl::eventually(p(1)).eval_lasso(&[empty, empty], &[b]));
        // F p1 never true
        assert!(!Ltl::eventually(p(1)).eval_lasso(&[empty], &[a]));
        // GF p0 on alternating loop
        assert!(Ltl::globally(Ltl::eventually(p(0))).eval_lasso(&[], &[a, b]));
        // FG p0 on alternating loop is false
        assert!(!Ltl::eventually(Ltl::globally(p(0))).eval_lasso(&[], &[a, b]));
    }

    #[test]
    fn lasso_semantics_until_release_next() {
        let a = letter_of(&[0]);
        let b = letter_of(&[1]);
        let ab = letter_of(&[0, 1]);
        let empty = 0u64;
        // p0 U p1 on a a b ...
        assert!(Ltl::until(p(0), p(1)).eval_lasso(&[a, a], &[b]));
        assert!(!Ltl::until(p(0), p(1)).eval_lasso(&[a, empty], &[b]));
        // p0 R p1: p1 must hold until (and including when) p0 holds.
        assert!(Ltl::release(p(0), p(1)).eval_lasso(&[b, b], &[ab]));
        assert!(Ltl::release(p(0), p(1)).eval_lasso(&[], &[b]));
        assert!(!Ltl::release(p(0), p(1)).eval_lasso(&[b], &[empty]));
        // X p1
        assert!(Ltl::next(p(1)).eval_lasso(&[a], &[b]));
        assert!(!Ltl::next(p(1)).eval_lasso(&[a], &[a]));
    }

    #[test]
    fn finite_semantics_strong_next_and_until() {
        let a = letter_of(&[0]);
        let b = letter_of(&[1]);
        // X p at the last position is false under strong next.
        assert!(!Ltl::next(p(0)).eval_finite(&[a]));
        assert!(Ltl::next(p(1)).eval_finite(&[a, b]));
        // G p on a finite word only constrains real positions.
        assert!(Ltl::globally(p(0)).eval_finite(&[a, a, a]));
        assert!(!Ltl::globally(p(0)).eval_finite(&[a, b]));
        // F p requires a real witness.
        assert!(Ltl::eventually(p(1)).eval_finite(&[a, a, b]));
        assert!(!Ltl::eventually(p(1)).eval_finite(&[a, a]));
        // Until with witness at the last position.
        assert!(Ltl::until(p(0), p(1)).eval_finite(&[a, a, b]));
        assert!(!Ltl::until(p(0), p(1)).eval_finite(&[a, a]));
    }

    #[test]
    fn finite_embedding_matches_finite_semantics() {
        // Exhaustively compare LTLf satisfaction with the alive-embedded
        // formula evaluated on the padded infinite word, over all words of
        // length ≤ 4 on 2 propositions, for a few representative formulas.
        let alive: PropId = 2;
        let formulas = vec![
            Ltl::globally(p(0)),
            Ltl::eventually(p(1)),
            Ltl::until(p(0), p(1)),
            Ltl::next(p(0)),
            Ltl::globally(Ltl::implies(p(0), Ltl::eventually(p(1)))),
            Ltl::release(p(0), p(1)),
            Ltl::and(Ltl::eventually(p(0)), Ltl::globally(Ltl::not(p(1)))),
        ];
        for f in formulas {
            let embedded = f.nnf().finite_embedding(alive);
            for len in 1..=4usize {
                for bits in 0..(1u32 << (2 * len)) {
                    let word: Vec<Letter> = (0..len)
                        .map(|i| {
                            let chunk = (bits >> (2 * i)) & 0b11;
                            (chunk as u64) | (1u64 << alive)
                        })
                        .collect();
                    let finite = f.eval_finite(&word);
                    // Pad with the all-false (not alive) letter.
                    let infinite = embedded.eval_lasso(&word, &[0u64]);
                    assert_eq!(
                        finite, infinite,
                        "formula {f} disagrees on word {word:?} (finite={finite})"
                    );
                }
            }
        }
    }

    #[test]
    fn display_round_trips_structure() {
        let f = Ltl::until(p(0), Ltl::and(p(1), Ltl::next(p(2))));
        assert_eq!(f.to_string(), "(p0 U (p1 ∧ X(p2)))");
    }
}
