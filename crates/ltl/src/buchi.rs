//! LTL → Büchi automaton translation (GPVW tableau) and the *property
//! automaton* used by the verifier.
//!
//! The construction is the classic on-the-fly tableau of Gerth, Peled,
//! Vardi and Wolper ("Simple on-the-fly automatic verification of linear
//! temporal logic"), producing a generalized Büchi automaton whose states
//! carry a *label*: a conjunction of literals that the letter read when
//! entering the state must satisfy.  The generalized acceptance condition
//! (one set per until-subformula) is degeneralized with the standard
//! counter construction.
//!
//! [`PropertyAutomaton`] packages the automaton of the *negated*,
//! finite-trace-embedded property together with the reserved `alive`
//! proposition and the per-state "padding acceptance" information used to
//! detect violations by finite local runs (the paper's `Q_fin`).

use crate::formula::{letter_has, Letter, Ltl, PropId};
use std::collections::BTreeSet;

/// The label of an automaton state: a conjunction of propositional
/// literals constraining the letter read when *entering* the state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuchiLabel {
    /// Bitmask of propositions that must be true.
    pub pos: u64,
    /// Bitmask of propositions that must be false.
    pub neg: u64,
}

impl BuchiLabel {
    /// `true` iff the letter satisfies every literal of the label.
    pub fn satisfied_by(&self, letter: Letter) -> bool {
        (letter & self.pos) == self.pos && (letter & self.neg) == 0
    }

    /// `true` iff the label requires proposition `p` to be true.
    pub fn requires_true(&self, p: PropId) -> bool {
        letter_has(self.pos, p)
    }

    /// `true` iff the label requires proposition `p` to be false.
    pub fn requires_false(&self, p: PropId) -> bool {
        letter_has(self.neg, p)
    }

    /// Propositions required true, in increasing order.
    pub fn positives(&self) -> Vec<PropId> {
        (0..64).filter(|p| letter_has(self.pos, *p)).collect()
    }

    /// Propositions required false, in increasing order.
    pub fn negatives(&self) -> Vec<PropId> {
        (0..64).filter(|p| letter_has(self.neg, *p)).collect()
    }

    /// `true` iff the label is contradictory (some proposition required
    /// both true and false).
    pub fn is_contradictory(&self) -> bool {
        self.pos & self.neg != 0
    }
}

/// A (state-labelled) nondeterministic Büchi automaton.
///
/// The automaton reads a letter when *entering* a state: a run over
/// `a₀a₁a₂…` is a sequence `q₀q₁q₂…` with `q₀` initial,
/// `a₀ ⊨ label(q₀)`, `qᵢ₊₁ ∈ transitions(qᵢ)` and `aᵢ₊₁ ⊨ label(qᵢ₊₁)`.
/// It accepts iff some accepting state occurs infinitely often.
#[derive(Debug, Clone)]
pub struct BuchiAutomaton {
    /// Per-state labels.
    pub labels: Vec<BuchiLabel>,
    /// Per-state outgoing transitions.
    pub transitions: Vec<Vec<usize>>,
    /// States a run may start in (reading the first letter).
    pub initial: Vec<usize>,
    /// Per-state acceptance flag.
    pub accepting: Vec<bool>,
}

impl BuchiAutomaton {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Translate an LTL formula to a Büchi automaton accepting exactly the
    /// infinite words that satisfy it.
    pub fn from_ltl(formula: &Ltl) -> Self {
        let nnf = formula.nnf();
        let (nodes, untils) = gpvw_expand(&nnf);
        degeneralize(&nodes, &untils)
    }

    /// Check acceptance of the ultimately-periodic word `prefix·loop^ω`
    /// (reference implementation used in tests; exponential-free but not
    /// optimised).
    pub fn accepts_lasso(&self, prefix: &[Letter], looped: &[Letter]) -> bool {
        assert!(!looped.is_empty());
        let n = prefix.len() + looped.len();
        let letter = |i: usize| {
            if i < prefix.len() {
                prefix[i]
            } else {
                looped[i - prefix.len()]
            }
        };
        let next = |i: usize| if i + 1 < n { i + 1 } else { prefix.len() };
        let node = |q: usize, i: usize| q * n + i;
        let total = self.num_states() * n;
        // Forward reachability from the initial configurations.
        let mut reachable = vec![false; total];
        let mut stack = Vec::new();
        for &q0 in &self.initial {
            if self.labels[q0].satisfied_by(letter(0)) && !reachable[node(q0, 0)] {
                reachable[node(q0, 0)] = true;
                stack.push((q0, 0));
            }
        }
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); total];
        while let Some((q, i)) = stack.pop() {
            let j = next(i);
            for &q2 in &self.transitions[q] {
                if self.labels[q2].satisfied_by(letter(j)) {
                    edges[node(q, i)].push((q2, j));
                    if !reachable[node(q2, j)] {
                        reachable[node(q2, j)] = true;
                        stack.push((q2, j));
                    }
                }
            }
        }
        // Rebuild edges for all reachable nodes (the loop above only added
        // edges when first visiting the source; redo to be exhaustive).
        for q in 0..self.num_states() {
            for i in 0..n {
                if !reachable[node(q, i)] {
                    continue;
                }
                let j = next(i);
                edges[node(q, i)] = self.transitions[q]
                    .iter()
                    .copied()
                    .filter(|&q2| self.labels[q2].satisfied_by(letter(j)))
                    .map(|q2| (q2, j))
                    .collect();
            }
        }
        // An accepting configuration in the loop region that can reach itself.
        for q in 0..self.num_states() {
            if !self.accepting[q] {
                continue;
            }
            for i in prefix.len()..n {
                if !reachable[node(q, i)] {
                    continue;
                }
                // DFS from (q, i) looking for (q, i) again.
                let mut seen = vec![false; total];
                let mut stack: Vec<(usize, usize)> = edges[node(q, i)].clone();
                let mut found = false;
                while let Some((q2, j)) = stack.pop() {
                    if (q2, j) == (q, i) {
                        found = true;
                        break;
                    }
                    if seen[node(q2, j)] {
                        continue;
                    }
                    seen[node(q2, j)] = true;
                    stack.extend(edges[node(q2, j)].iter().copied());
                }
                if found {
                    return true;
                }
            }
        }
        false
    }
}

/// A node of the GPVW tableau.
#[derive(Debug, Clone)]
struct StoredNode {
    incoming: BTreeSet<usize>,
    /// `usize::MAX` in `incoming` denotes the virtual initial node.
    old: BTreeSet<Ltl>,
    next: BTreeSet<Ltl>,
}

const INIT: usize = usize::MAX;

#[derive(Debug, Clone)]
struct PendingNode {
    incoming: BTreeSet<usize>,
    new: BTreeSet<Ltl>,
    old: BTreeSet<Ltl>,
    next: BTreeSet<Ltl>,
}

/// Run the GPVW expansion on an NNF formula.  Returns the tableau nodes and
/// the list of until-subformulas (for the generalized acceptance sets).
fn gpvw_expand(nnf: &Ltl) -> (Vec<StoredNode>, Vec<Ltl>) {
    let mut store: Vec<StoredNode> = Vec::new();
    let initial = PendingNode {
        incoming: BTreeSet::from([INIT]),
        new: BTreeSet::from([nnf.clone()]),
        old: BTreeSet::new(),
        next: BTreeSet::new(),
    };
    expand(initial, &mut store);
    let mut untils = Vec::new();
    collect_untils(nnf, &mut untils);
    (store, untils)
}

fn collect_untils(f: &Ltl, out: &mut Vec<Ltl>) {
    match f {
        Ltl::True | Ltl::False | Ltl::Prop(_) => {}
        Ltl::Not(a) | Ltl::Next(a) => collect_untils(a, out),
        Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Release(a, b) => {
            collect_untils(a, out);
            collect_untils(b, out);
        }
        Ltl::Until(a, b) => {
            if !out.contains(f) {
                out.push(f.clone());
            }
            collect_untils(a, out);
            collect_untils(b, out);
        }
    }
}

fn is_literal(f: &Ltl) -> bool {
    matches!(f, Ltl::True | Ltl::False | Ltl::Prop(_) | Ltl::Not(_))
}

/// Negation of a literal (inputs are NNF literals only).
fn literal_negation(f: &Ltl) -> Ltl {
    match f {
        Ltl::True => Ltl::False,
        Ltl::False => Ltl::True,
        Ltl::Prop(p) => Ltl::Not(Box::new(Ltl::Prop(*p))),
        Ltl::Not(inner) => (**inner).clone(),
        _ => unreachable!("literal_negation called on a non-literal"),
    }
}

fn expand(mut node: PendingNode, store: &mut Vec<StoredNode>) {
    match node.new.iter().next().cloned() {
        None => {
            // Fully processed: merge with an equivalent stored node or store.
            if let Some(existing) = store
                .iter_mut()
                .find(|n| n.old == node.old && n.next == node.next)
            {
                existing.incoming.extend(node.incoming.iter().copied());
                return;
            }
            let id = store.len();
            store.push(StoredNode {
                incoming: node.incoming.clone(),
                old: node.old.clone(),
                next: node.next.clone(),
            });
            let successor = PendingNode {
                incoming: BTreeSet::from([id]),
                new: node.next.clone(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            };
            expand(successor, store);
        }
        Some(eta) => {
            node.new.remove(&eta);
            if node.old.contains(&eta) {
                expand(node, store);
                return;
            }
            match &eta {
                f if is_literal(f) => {
                    if *f == Ltl::False || node.old.contains(&literal_negation(f)) {
                        // Contradiction: discard this node.
                        return;
                    }
                    if *f != Ltl::True {
                        node.old.insert(eta.clone());
                    }
                    expand(node, store);
                }
                Ltl::And(a, b) => {
                    for part in [a.as_ref(), b.as_ref()] {
                        if !node.old.contains(part) {
                            node.new.insert(part.clone());
                        }
                    }
                    node.old.insert(eta.clone());
                    expand(node, store);
                }
                Ltl::Next(a) => {
                    node.old.insert(eta.clone());
                    node.next.insert((**a).clone());
                    expand(node, store);
                }
                Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                    // Split into two nodes following the GPVW tableau rules.
                    let (new1, next1, new2): (Vec<Ltl>, Vec<Ltl>, Vec<Ltl>) = match &eta {
                        Ltl::Or(..) => (vec![(**a).clone()], vec![], vec![(**b).clone()]),
                        Ltl::Until(..) => {
                            (vec![(**a).clone()], vec![eta.clone()], vec![(**b).clone()])
                        }
                        Ltl::Release(..) => (
                            vec![(**b).clone()],
                            vec![eta.clone()],
                            vec![(**a).clone(), (**b).clone()],
                        ),
                        _ => unreachable!(),
                    };
                    let mut node1 = node.clone();
                    node1.old.insert(eta.clone());
                    for f in new1 {
                        if !node1.old.contains(&f) {
                            node1.new.insert(f);
                        }
                    }
                    node1.next.extend(next1);
                    let mut node2 = node;
                    node2.old.insert(eta.clone());
                    for f in new2 {
                        if !node2.old.contains(&f) {
                            node2.new.insert(f);
                        }
                    }
                    expand(node1, store);
                    expand(node2, store);
                }
                _ => unreachable!("unexpected formula shape in GPVW expansion"),
            }
        }
    }
}

/// Turn the tableau into a Büchi automaton, degeneralizing the per-until
/// acceptance sets with the counter construction.
fn degeneralize(nodes: &[StoredNode], untils: &[Ltl]) -> BuchiAutomaton {
    let n = nodes.len();
    // Per-node label and (generalized) acceptance membership.
    let mut labels = Vec::with_capacity(n);
    for node in nodes {
        let mut label = BuchiLabel::default();
        for f in &node.old {
            match f {
                Ltl::Prop(p) => label.pos |= 1u64 << p,
                Ltl::Not(inner) => {
                    if let Ltl::Prop(p) = inner.as_ref() {
                        label.neg |= 1u64 << p;
                    }
                }
                _ => {}
            }
        }
        labels.push(label);
    }
    let in_accept_set = |node: &StoredNode, until: &Ltl| -> bool {
        let Ltl::Until(_, b) = until else { return true };
        !node.old.contains(until) || node.old.contains(b.as_ref())
    };
    // Base (generalized) transition relation: q -> r iff q ∈ r.incoming.
    let mut base_trans: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut base_initial: Vec<usize> = Vec::new();
    for (r, node) in nodes.iter().enumerate() {
        for &q in &node.incoming {
            if q == INIT {
                base_initial.push(r);
            } else {
                base_trans[q].push(r);
            }
        }
    }
    let k = untils.len();
    if k == 0 {
        return BuchiAutomaton {
            labels,
            transitions: base_trans,
            initial: base_initial,
            accepting: vec![true; n],
        };
    }
    // Counter construction: states are (node, counter) with counter in 0..k.
    let idx = |q: usize, c: usize| q * k + c;
    let mut labels2 = Vec::with_capacity(n * k);
    let mut accepting = vec![false; n * k];
    for q in 0..n {
        for c in 0..k {
            labels2.push(labels[q].clone());
            if c == 0 && in_accept_set(&nodes[q], &untils[0]) {
                accepting[idx(q, c)] = true;
            }
        }
    }
    let mut transitions = vec![Vec::new(); n * k];
    for q in 0..n {
        for c in 0..k {
            let c_next = if in_accept_set(&nodes[q], &untils[c]) {
                (c + 1) % k
            } else {
                c
            };
            for &r in &base_trans[q] {
                transitions[idx(q, c)].push(idx(r, c_next));
            }
        }
    }
    let initial = base_initial.iter().map(|&q| idx(q, 0)).collect();
    BuchiAutomaton {
        labels: labels2,
        transitions,
        initial,
        accepting,
    }
}

/// The automaton used by the verifier to search for *violations* of an
/// LTL property over the local runs of a task.
///
/// It is the Büchi automaton of `finite_embedding(nnf(¬φ), alive)`:
///
/// * on infinite (never-closing) local runs — where every letter carries
///   `alive` — it accepts exactly the runs violating `φ`,
/// * on finite local runs (the task closes), acceptance of the padded word
///   `w · ∅^ω` is pre-computed per state in `padding_accepting`: after the
///   closing letter drives the automaton into state `q`, the finite run
///   violates `φ` iff `padding_accepting[q]`.
#[derive(Debug, Clone)]
pub struct PropertyAutomaton {
    /// The underlying Büchi automaton (over the property's propositions
    /// plus `alive`).
    pub buchi: BuchiAutomaton,
    /// The reserved `alive` proposition.
    pub alive: PropId,
    /// Per-state flag: can an accepting run be completed from this state by
    /// reading only the padding letter (no proposition true)?
    pub padding_accepting: Vec<bool>,
}

impl PropertyAutomaton {
    /// Build the violation automaton for `property` (the *positive*
    /// property; the negation is taken internally).  `alive` must be a
    /// proposition id not used by the property.
    pub fn for_violations(property: &Ltl, alive: PropId) -> Self {
        assert!(
            !property.props().contains(&alive),
            "the alive proposition must not occur in the property"
        );
        let negated = property.negated_nnf();
        let embedded = negated.finite_embedding(alive);
        let buchi = BuchiAutomaton::from_ltl(&embedded);
        let padding_accepting = compute_padding_acceptance(&buchi);
        PropertyAutomaton {
            buchi,
            alive,
            padding_accepting,
        }
    }

    /// States that a violating run may start in while reading a real
    /// (alive) letter whose set of true propositions is `letter`
    /// (`alive` is added internally).
    pub fn initial_states_for(&self, letter: Letter) -> Vec<usize> {
        let letter = letter | (1u64 << self.alive);
        self.buchi
            .initial
            .iter()
            .copied()
            .filter(|&q| self.buchi.labels[q].satisfied_by(letter))
            .collect()
    }

    /// Successor states from `state` reading a real (alive) letter.
    pub fn successors_for(&self, state: usize, letter: Letter) -> Vec<usize> {
        let letter = letter | (1u64 << self.alive);
        self.buchi.transitions[state]
            .iter()
            .copied()
            .filter(|&q| self.buchi.labels[q].satisfied_by(letter))
            .collect()
    }
}

/// For each state, can an accepting run be completed reading only the
/// all-false padding letter?
fn compute_padding_acceptance(buchi: &BuchiAutomaton) -> Vec<bool> {
    let n = buchi.num_states();
    let padding: Letter = 0;
    // Restricted graph: q -> r if r is a successor whose label accepts the
    // padding letter.
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|q| {
            buchi.transitions[q]
                .iter()
                .copied()
                .filter(|&r| buchi.labels[r].satisfied_by(padding))
                .collect()
        })
        .collect();
    // Accepting states lying on a cycle of the restricted graph.
    let mut on_accepting_cycle = vec![false; n];
    for q in 0..n {
        if !buchi.accepting[q] {
            continue;
        }
        let mut seen = vec![false; n];
        let mut stack = succ[q].clone();
        while let Some(r) = stack.pop() {
            if r == q {
                on_accepting_cycle[q] = true;
                break;
            }
            if seen[r] {
                continue;
            }
            seen[r] = true;
            stack.extend(succ[r].iter().copied());
        }
    }
    // Backward reachability: states from which some accepting cycle state
    // is reachable in the restricted graph.
    let mut result = vec![false; n];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, successors) in succ.iter().enumerate() {
        for &r in successors {
            pred[r].push(q);
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&q| on_accepting_cycle[q]).collect();
    for &q in &stack {
        result[q] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &pred[q] {
            if !result[p] {
                result[p] = true;
                stack.push(p);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::letter_of;

    fn p(i: PropId) -> Ltl {
        Ltl::prop(i)
    }

    #[test]
    fn globally_automaton_accepts_only_constant_words() {
        let b = BuchiAutomaton::from_ltl(&Ltl::globally(p(0)));
        let a = letter_of(&[0]);
        let empty = 0u64;
        assert!(b.accepts_lasso(&[], &[a]));
        assert!(b.accepts_lasso(&[a, a], &[a]));
        assert!(!b.accepts_lasso(&[], &[empty]));
        assert!(!b.accepts_lasso(&[a], &[a, empty]));
    }

    #[test]
    fn eventually_automaton() {
        let b = BuchiAutomaton::from_ltl(&Ltl::eventually(p(1)));
        let w1 = letter_of(&[1]);
        let empty = 0u64;
        assert!(b.accepts_lasso(&[empty, empty, w1], &[empty]));
        assert!(b.accepts_lasso(&[], &[w1]));
        assert!(!b.accepts_lasso(&[empty], &[empty]));
    }

    #[test]
    fn until_automaton() {
        let b = BuchiAutomaton::from_ltl(&Ltl::until(p(0), p(1)));
        let a = letter_of(&[0]);
        let w1 = letter_of(&[1]);
        let empty = 0u64;
        assert!(b.accepts_lasso(&[a, a, w1], &[empty]));
        assert!(!b.accepts_lasso(&[a, empty, w1], &[empty]));
        assert!(!b.accepts_lasso(&[a], &[a]));
    }

    #[test]
    fn response_property_automaton() {
        // G(p0 -> F p1)
        let f = Ltl::globally(Ltl::implies(p(0), Ltl::eventually(p(1))));
        let b = BuchiAutomaton::from_ltl(&f);
        let a = letter_of(&[0]);
        let w1 = letter_of(&[1]);
        let empty = 0u64;
        assert!(b.accepts_lasso(&[], &[a, w1]));
        assert!(b.accepts_lasso(&[], &[empty]));
        assert!(!b.accepts_lasso(&[a], &[empty]));
        assert!(b.accepts_lasso(&[], &[a, w1, a, w1]));
    }

    /// Exhaustive agreement between the automaton and the direct lasso
    /// semantics on all small lassos for a family of formulas.
    #[test]
    fn automaton_agrees_with_lasso_semantics() {
        let formulas = vec![
            Ltl::globally(p(0)),
            Ltl::eventually(p(0)),
            Ltl::until(p(0), p(1)),
            Ltl::release(p(0), p(1)),
            Ltl::next(p(1)),
            Ltl::globally(Ltl::implies(p(0), Ltl::eventually(p(1)))),
            Ltl::globally(Ltl::eventually(p(0))),
            Ltl::eventually(Ltl::globally(p(0))),
            Ltl::implies(
                Ltl::globally(Ltl::eventually(p(0))),
                Ltl::globally(Ltl::eventually(p(1))),
            ),
            Ltl::and(Ltl::eventually(p(0)), Ltl::globally(Ltl::not(p(1)))),
            Ltl::or(Ltl::globally(p(0)), Ltl::globally(p(1))),
            Ltl::not(Ltl::until(p(0), p(1))),
        ];
        // All lassos with prefix length <= 2 and loop length 1..=2 over 2 props.
        for f in formulas {
            let b = BuchiAutomaton::from_ltl(&f);
            for plen in 0..=2usize {
                for llen in 1..=2usize {
                    let total = plen + llen;
                    for bits in 0..(1u32 << (2 * total)) {
                        let letters: Vec<Letter> = (0..total)
                            .map(|i| ((bits >> (2 * i)) & 0b11) as u64)
                            .collect();
                        let (prefix, looped) = letters.split_at(plen);
                        let expected = f.eval_lasso(prefix, looped);
                        let got = b.accepts_lasso(prefix, looped);
                        assert_eq!(
                            expected, got,
                            "automaton disagreement for {f} on prefix {prefix:?} loop {looped:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn property_automaton_padding_detects_finite_violations() {
        // Property: G p0.  A finite run with a letter lacking p0 violates it.
        let alive = 5;
        let pa = PropertyAutomaton::for_violations(&Ltl::globally(p(0)), alive);
        // Simulate reading the one-letter word {p0}: no violation possible.
        let good_states = pa.initial_states_for(letter_of(&[0]));
        assert!(good_states.iter().all(|&q| !pa.padding_accepting[q]));
        // Reading the one-letter word {} (p0 false): violation.
        let bad_states = pa.initial_states_for(0);
        assert!(bad_states.iter().any(|&q| pa.padding_accepting[q]));
    }

    #[test]
    fn property_automaton_padding_eventually() {
        // Property: F p1.  Any finite run without p1 violates it; a run
        // containing p1 does not.
        let alive = 5;
        let pa = PropertyAutomaton::for_violations(&Ltl::eventually(p(1)), alive);
        // One-letter run without p1.
        assert!(pa
            .initial_states_for(0)
            .iter()
            .any(|&q| pa.padding_accepting[q]));
        // Two-letter run: {} then {p1}.
        let mut violating_after_two = false;
        for q0 in pa.initial_states_for(0) {
            for q1 in pa.successors_for(q0, letter_of(&[1])) {
                violating_after_two |= pa.padding_accepting[q1];
            }
        }
        assert!(!violating_after_two);
    }

    #[test]
    fn property_automaton_rejects_alive_in_property() {
        let result = std::panic::catch_unwind(|| PropertyAutomaton::for_violations(&p(3), 3));
        assert!(result.is_err());
    }

    #[test]
    fn labels_expose_literals() {
        let label = BuchiLabel {
            pos: letter_of(&[1, 3]),
            neg: letter_of(&[2]),
        };
        assert!(label.requires_true(1));
        assert!(label.requires_false(2));
        assert!(!label.requires_true(2));
        assert_eq!(label.positives(), vec![1, 3]);
        assert_eq!(label.negatives(), vec![2]);
        assert!(!label.is_contradictory());
        assert!(label.satisfied_by(letter_of(&[1, 3])));
        assert!(!label.satisfied_by(letter_of(&[1, 2, 3])));
        assert!(!label.satisfied_by(letter_of(&[1])));
    }
}
