//! LTL-FO properties of HAS\* tasks (paper Section 2.1, Definition 29).
//!
//! An LTL-FO property `∀ȳ φ_f` of a task `T` consists of
//!
//! * a tuple of *global variables* `ȳ`, universally quantified over the
//!   whole property and shared between conditions (they connect the state
//!   of the task at different moments in time),
//! * an LTL formula `φ` over propositions `P ∪ Σ^obs_T`,
//! * an interpretation `f` mapping each proposition of `P` to a
//!   quantifier-free condition over `x̄ᵀ ∪ ȳ`; propositions in `Σ^obs_T`
//!   hold at a position of a local run iff the corresponding service caused
//!   that transition.
//!
//! This module also provides the concrete-run oracle
//! [`LtlFoProperty::check_local_run`] used by tests to cross-validate the
//! symbolic verifier on runs produced by the interpreter.

use crate::formula::{Letter, Ltl, PropId};
use std::collections::BTreeSet;
use verifas_model::{
    Condition, DataValue, DatabaseInstance, HasSpec, LocalRun, ModelError, ServiceRef, TaskId,
    Value, VarRef, VarType,
};

/// Interpretation of one atomic proposition of an LTL-FO property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropAtom {
    /// A quantifier-free condition over the task's variables and the
    /// property's global variables.
    Condition(Condition),
    /// "The transition was caused by this observable service."
    Service(ServiceRef),
}

/// A cheap identity handle for a property: its name and the task it
/// constrains.  Returned by [`LtlFoProperty::handle`] and by
/// `verifas::Engine::warm`, so services can track admitted/warmed
/// properties without carrying formulas around.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyHandle {
    /// The property's name.
    pub name: String,
    /// The task whose local runs the property constrains.
    pub task: TaskId,
}

impl std::fmt::Display for PropertyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@task{}", self.name, self.task.index())
    }
}

/// An LTL-FO property of a task.
#[derive(Debug, Clone, PartialEq)]
pub struct LtlFoProperty {
    /// Property name (used in reports and benchmarks).
    pub name: String,
    /// The task whose local runs the property constrains.
    pub task: TaskId,
    /// Types of the universally quantified global variables `ȳ`.
    pub global_vars: Vec<VarType>,
    /// The LTL skeleton over proposition ids `0..props.len()`.
    pub formula: Ltl,
    /// Interpretation of each proposition.
    pub props: Vec<PropAtom>,
}

impl LtlFoProperty {
    /// Create a property; `props[i]` interprets proposition `i` of
    /// `formula`.
    pub fn new(
        name: impl Into<String>,
        task: TaskId,
        global_vars: Vec<VarType>,
        formula: Ltl,
        props: Vec<PropAtom>,
    ) -> Self {
        LtlFoProperty {
            name: name.into(),
            task,
            global_vars,
            formula,
            props,
        }
    }

    /// The proposition id reserved for the `alive` marker of the
    /// finite-trace embedding (one past the interpreted propositions).
    pub fn alive_prop(&self) -> PropId {
        self.props.len() as PropId
    }

    /// A cheap identity handle for this property (name + verified task);
    /// see [`PropertyHandle`].
    pub fn handle(&self) -> PropertyHandle {
        PropertyHandle {
            name: self.name.clone(),
            task: self.task,
        }
    }

    /// Every constant appearing in the FO conditions interpreting the
    /// property's propositions.
    ///
    /// The expression universe a property is verified against must contain
    /// these constants on top of the specification's own — `verifas::Engine`
    /// uses this set to decide which properties can share one pre-built
    /// universe.
    pub fn condition_constants(&self) -> BTreeSet<DataValue> {
        let mut out = BTreeSet::new();
        for atom in &self.props {
            if let PropAtom::Condition(c) = atom {
                out.extend(c.constants());
            }
        }
        out
    }

    /// Check the property is well-formed with respect to a specification:
    /// every proposition of the formula has an interpretation, conditions
    /// type-check against the task and the global variables, service
    /// propositions are observable services of the task, and the total
    /// proposition count fits the 64-bit letter encoding.
    pub fn validate(&self, spec: &HasSpec) -> Result<(), ModelError> {
        if self.task.index() >= spec.tasks.len() {
            return Err(ModelError::UnknownName {
                kind: "task",
                name: format!("task #{}", self.task.index()),
            });
        }
        if self.props.len() >= 63 {
            return Err(ModelError::InvalidSpec {
                reason: format!(
                    "property {} has {} propositions; at most 62 are supported",
                    self.name,
                    self.props.len()
                ),
            });
        }
        for p in self.formula.props() {
            if p as usize >= self.props.len() {
                return Err(ModelError::UnknownName {
                    kind: "proposition",
                    name: format!("p{p} in property {}", self.name),
                });
            }
        }
        let observable: BTreeSet<ServiceRef> =
            spec.observable_services(self.task).into_iter().collect();
        let task = spec.task(self.task);
        for atom in &self.props {
            match atom {
                PropAtom::Condition(cond) => {
                    cond.typecheck(&spec.db, task, &self.global_vars)?;
                }
                PropAtom::Service(s) => {
                    if !observable.contains(s) {
                        return Err(ModelError::InvalidSpec {
                            reason: format!(
                                "property {}: service {} is not observable in task {}",
                                self.name,
                                spec.service_name(*s),
                                task.name
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Truth assignment (letter) induced by one event of a local run under
    /// a valuation of the global variables.
    fn letter_for_event(
        &self,
        db: &DatabaseInstance,
        event: &verifas_model::LocalEvent,
        globals: &[Value],
    ) -> Letter {
        let mut letter: Letter = 0;
        for (i, atom) in self.props.iter().enumerate() {
            let truth = match atom {
                PropAtom::Service(s) => *s == event.service,
                PropAtom::Condition(cond) => cond.eval_concrete(db, &|v| match v {
                    VarRef::Task(id) => event
                        .valuation
                        .get(id.index())
                        .cloned()
                        .unwrap_or(Value::Null),
                    VarRef::Global(g) => globals.get(g as usize).cloned().unwrap_or(Value::Null),
                }),
            };
            if truth {
                letter |= 1u64 << i;
            }
        }
        letter
    }

    /// Candidate values for the universal global variables when checking a
    /// concrete run: values of the right type occurring in the run, the
    /// database active domain, the constants of the property, `null`, and
    /// one fresh value (sufficient for the equality-only conditions of
    /// HAS\*; this is a test oracle, not a decision procedure).
    fn global_candidates(&self, db: &DatabaseInstance, run: &LocalRun) -> Vec<Vec<Value>> {
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        for event in &run.events {
            seen.extend(event.valuation.iter().cloned());
        }
        seen.extend(db.active_domain());
        for atom in &self.props {
            if let PropAtom::Condition(c) = atom {
                seen.extend(c.constants().into_iter().map(Value::Data));
            }
        }
        seen.insert(Value::Null);
        self.global_vars
            .iter()
            .map(|typ| {
                let mut vals: Vec<Value> = seen
                    .iter()
                    .filter(|v| match (typ, v) {
                        (_, Value::Null) => true,
                        (VarType::Data, Value::Data(_)) => true,
                        (VarType::Id(rel), Value::Id(r, _)) => r == rel,
                        _ => false,
                    })
                    .cloned()
                    .collect();
                // One fresh value not occurring anywhere (a fresh ID key /
                // a fresh string), representing "any other value".
                vals.push(match typ {
                    VarType::Data => Value::str("\u{0}fresh\u{0}"),
                    VarType::Id(rel) => Value::Id(*rel, u64::MAX),
                });
                vals
            })
            .collect()
    }

    /// Check a *closed* concrete local run against the property
    /// (finite-trace semantics); returns `None` for runs that did not close
    /// (their satisfaction cannot be decided from the prefix alone).
    ///
    /// The universal quantification over the global variables is
    /// approximated by enumerating the candidate values described in
    /// `global_candidates`.
    pub fn check_local_run(&self, db: &DatabaseInstance, run: &LocalRun) -> Option<bool> {
        if !run.closed || run.events.is_empty() {
            return None;
        }
        let candidates = self.global_candidates(db, run);
        let mut assignment: Vec<Value> = candidates
            .iter()
            .map(|c| c.first().cloned().unwrap_or(Value::Null))
            .collect();
        // Enumerate the Cartesian product of candidate values.
        let mut index = vec![0usize; candidates.len()];
        loop {
            for (i, c) in candidates.iter().enumerate() {
                assignment[i] = c[index[i]].clone();
            }
            let word: Vec<Letter> = run
                .events
                .iter()
                .map(|e| self.letter_for_event(db, e, &assignment))
                .collect();
            if !self.formula.eval_finite(&word) {
                return Some(false);
            }
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == candidates.len() {
                    return Some(true);
                }
                index[pos] += 1;
                if index[pos] < candidates[pos].len() {
                    break;
                }
                index[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_model::{LocalEvent, VarId};

    fn service(task: u32, index: usize) -> ServiceRef {
        ServiceRef::Internal {
            task: TaskId::new(task),
            index,
        }
    }

    fn event(svc: ServiceRef, values: Vec<Value>) -> LocalEvent {
        LocalEvent {
            service: svc,
            valuation: values,
        }
    }

    #[test]
    fn check_local_run_with_condition_and_service_props() {
        // Property: G (p0 -> F p1) where p0 = "service 0 applied" and
        // p1 = status = "Done".
        let prop = LtlFoProperty::new(
            "response",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1)))),
            vec![
                PropAtom::Service(service(0, 0)),
                PropAtom::Condition(Condition::eq(
                    verifas_model::Term::var(VarId::new(0)),
                    verifas_model::Term::str("Done"),
                )),
            ],
        );
        let db = DatabaseInstance::default();
        let good = LocalRun {
            task: TaskId::new(0),
            events: vec![
                event(ServiceRef::Opening(TaskId::new(0)), vec![Value::Null]),
                event(service(0, 0), vec![Value::str("Working")]),
                event(service(0, 1), vec![Value::str("Done")]),
                event(
                    ServiceRef::Closing(TaskId::new(0)),
                    vec![Value::str("Done")],
                ),
            ],
            closed: true,
        };
        assert_eq!(prop.check_local_run(&db, &good), Some(true));
        let bad = LocalRun {
            task: TaskId::new(0),
            events: vec![
                event(ServiceRef::Opening(TaskId::new(0)), vec![Value::Null]),
                event(service(0, 0), vec![Value::str("Working")]),
                event(
                    ServiceRef::Closing(TaskId::new(0)),
                    vec![Value::str("Failed")],
                ),
            ],
            closed: true,
        };
        assert_eq!(prop.check_local_run(&db, &bad), Some(false));
        let unclosed = LocalRun {
            task: TaskId::new(0),
            events: vec![event(service(0, 0), vec![Value::Null])],
            closed: false,
        };
        assert_eq!(prop.check_local_run(&db, &unclosed), None);
    }

    #[test]
    fn global_variables_quantify_universally() {
        // ∀ y: G (x = y -> F (z = y)) over a task with vars [x, z]:
        // whenever x takes a value, z must later take the same value.
        let prop = LtlFoProperty::new(
            "echo",
            TaskId::new(0),
            vec![VarType::Data],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1)))),
            vec![
                PropAtom::Condition(Condition::and([
                    Condition::eq(
                        verifas_model::Term::var(VarId::new(0)),
                        verifas_model::Term::global(0),
                    ),
                    Condition::neq(
                        verifas_model::Term::var(VarId::new(0)),
                        verifas_model::Term::Null,
                    ),
                ])),
                PropAtom::Condition(Condition::eq(
                    verifas_model::Term::var(VarId::new(1)),
                    verifas_model::Term::global(0),
                )),
            ],
        );
        let db = DatabaseInstance::default();
        let svc = service(0, 0);
        let echoed = LocalRun {
            task: TaskId::new(0),
            events: vec![
                event(svc, vec![Value::str("a"), Value::Null]),
                event(svc, vec![Value::Null, Value::str("a")]),
                event(
                    ServiceRef::Closing(TaskId::new(0)),
                    vec![Value::Null, Value::Null],
                ),
            ],
            closed: true,
        };
        assert_eq!(prop.check_local_run(&db, &echoed), Some(true));
        let not_echoed = LocalRun {
            task: TaskId::new(0),
            events: vec![
                event(svc, vec![Value::str("a"), Value::Null]),
                event(svc, vec![Value::Null, Value::str("b")]),
                event(
                    ServiceRef::Closing(TaskId::new(0)),
                    vec![Value::Null, Value::Null],
                ),
            ],
            closed: true,
        };
        assert_eq!(prop.check_local_run(&db, &not_echoed), Some(false));
    }

    #[test]
    fn alive_prop_is_one_past_the_interpreted_props() {
        let prop = LtlFoProperty::new(
            "p",
            TaskId::new(0),
            vec![],
            Ltl::True,
            vec![PropAtom::Service(service(0, 0))],
        );
        assert_eq!(prop.alive_prop(), 1);
    }
}
