//! # verifas-ltl — temporal logic for VERIFAS
//!
//! Linear-time temporal logic (LTL), LTL-FO properties of HAS\* tasks, and
//! the LTL → Büchi automaton translation used by the symbolic verifier:
//!
//! * [`formula`] — the LTL syntax, negation normal form, a reference
//!   semantics over lasso words, finite-trace (LTLf) semantics and the
//!   *alive* embedding of finite traces into infinite ones,
//! * [`buchi`] — the GPVW tableau construction and the
//!   [`buchi::PropertyAutomaton`] packaging used by `verifas-core`,
//! * [`ltlfo`] — LTL-FO properties (global variables + FO interpretations
//!   of propositions) and a concrete-run oracle,
//! * [`templates`] — the twelve property templates of Table 4 of the paper.

pub mod buchi;
pub mod formula;
pub mod ltlfo;
pub mod templates;

pub use buchi::{BuchiAutomaton, BuchiLabel, PropertyAutomaton};
pub use formula::{letter_has, letter_of, Letter, Ltl, PropId};
pub use ltlfo::{LtlFoProperty, PropAtom, PropertyHandle};
pub use templates::{all_templates, LtlTemplate, PropertyClass};
