//! The LTL property templates of Table 4 of the paper.
//!
//! The benchmark instantiates each template by replacing its placeholder
//! propositions `ϕ` and `ψ` with FO conditions drawn from the
//! pre/post-conditions of the specification under test (see
//! `verifas-workloads::properties`).  The eleven non-trivial templates are
//! the safety/liveness/fairness examples collected by Sistla ("Safety,
//! liveness and fairness in temporal logic"); `False` is the baseline
//! property whose Büchi automaton is a single accepting loop.

use crate::formula::Ltl;

/// Classification of a template, as reported in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// The trivial `False` baseline.
    Baseline,
    /// Safety properties.
    Safety,
    /// Liveness properties.
    Liveness,
    /// Fairness properties.
    Fairness,
}

/// One row of Table 4: a named LTL template over at most two placeholder
/// propositions.
#[derive(Debug, Clone, Copy)]
pub struct LtlTemplate {
    /// Stable identifier (index into [`all_templates`]).
    pub id: usize,
    /// Human-readable rendering used in reports (matches the paper).
    pub name: &'static str,
    /// Safety / liveness / fairness class.
    pub class: PropertyClass,
    /// Number of placeholder propositions used (0, 1 or 2).
    pub arity: usize,
    build: fn(&Ltl, &Ltl) -> Ltl,
}

impl LtlTemplate {
    /// Instantiate the template with concrete propositions (formulas) for
    /// `ϕ` and `ψ`; unused placeholders are ignored.
    pub fn instantiate(&self, phi: &Ltl, psi: &Ltl) -> Ltl {
        (self.build)(phi, psi)
    }
}

fn t_false(_: &Ltl, _: &Ltl) -> Ltl {
    Ltl::False
}
fn t_g(phi: &Ltl, _: &Ltl) -> Ltl {
    Ltl::globally(phi.clone())
}
fn t_not_until(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::until(Ltl::not(phi.clone()), psi.clone())
}
fn t_absence_after(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::and(
        Ltl::until(Ltl::not(phi.clone()), psi.clone()),
        Ltl::globally(Ltl::implies(
            phi.clone(),
            Ltl::next(Ltl::until(Ltl::not(phi.clone()), psi.clone())),
        )),
    )
}
fn t_bounded_response(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::globally(Ltl::implies(
        phi.clone(),
        Ltl::or(
            psi.clone(),
            Ltl::or(Ltl::next(psi.clone()), Ltl::next(Ltl::next(psi.clone()))),
        ),
    ))
}
fn t_stability(phi: &Ltl, _: &Ltl) -> Ltl {
    Ltl::globally(Ltl::or(phi.clone(), Ltl::globally(Ltl::not(phi.clone()))))
}
fn t_response(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::globally(Ltl::implies(phi.clone(), Ltl::eventually(psi.clone())))
}
fn t_eventually(phi: &Ltl, _: &Ltl) -> Ltl {
    Ltl::eventually(phi.clone())
}
fn t_strong_fairness(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::implies(
        Ltl::globally(Ltl::eventually(phi.clone())),
        Ltl::globally(Ltl::eventually(psi.clone())),
    )
}
fn t_recurrence(phi: &Ltl, _: &Ltl) -> Ltl {
    Ltl::globally(Ltl::eventually(phi.clone()))
}
fn t_disjunctive_invariant(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::globally(Ltl::or(phi.clone(), Ltl::globally(psi.clone())))
}
fn t_weak_fairness(phi: &Ltl, psi: &Ltl) -> Ltl {
    Ltl::implies(
        Ltl::eventually(Ltl::globally(phi.clone())),
        Ltl::globally(Ltl::eventually(psi.clone())),
    )
}

/// All twelve templates of Table 4, in the paper's order.
pub fn all_templates() -> Vec<LtlTemplate> {
    vec![
        LtlTemplate {
            id: 0,
            name: "False",
            class: PropertyClass::Baseline,
            arity: 0,
            build: t_false,
        },
        LtlTemplate {
            id: 1,
            name: "G phi",
            class: PropertyClass::Safety,
            arity: 1,
            build: t_g,
        },
        LtlTemplate {
            id: 2,
            name: "(!phi U psi)",
            class: PropertyClass::Safety,
            arity: 2,
            build: t_not_until,
        },
        LtlTemplate {
            id: 3,
            name: "(!phi U psi) & G(phi -> X(!phi U psi))",
            class: PropertyClass::Safety,
            arity: 2,
            build: t_absence_after,
        },
        LtlTemplate {
            id: 4,
            name: "G(phi -> (psi | X psi | XX psi))",
            class: PropertyClass::Safety,
            arity: 2,
            build: t_bounded_response,
        },
        LtlTemplate {
            id: 5,
            name: "G(phi | G(!phi))",
            class: PropertyClass::Safety,
            arity: 1,
            build: t_stability,
        },
        LtlTemplate {
            id: 6,
            name: "G(phi -> F psi)",
            class: PropertyClass::Liveness,
            arity: 2,
            build: t_response,
        },
        LtlTemplate {
            id: 7,
            name: "F phi",
            class: PropertyClass::Liveness,
            arity: 1,
            build: t_eventually,
        },
        LtlTemplate {
            id: 8,
            name: "GF phi -> GF psi",
            class: PropertyClass::Fairness,
            arity: 2,
            build: t_strong_fairness,
        },
        LtlTemplate {
            id: 9,
            name: "GF phi",
            class: PropertyClass::Fairness,
            arity: 1,
            build: t_recurrence,
        },
        LtlTemplate {
            id: 10,
            name: "G(phi | G psi)",
            class: PropertyClass::Fairness,
            arity: 2,
            build: t_disjunctive_invariant,
        },
        LtlTemplate {
            id: 11,
            name: "FG phi -> GF psi",
            class: PropertyClass::Fairness,
            arity: 2,
            build: t_weak_fairness,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buchi::BuchiAutomaton;
    use crate::formula::letter_of;

    #[test]
    fn there_are_twelve_templates_in_the_papers_classes() {
        let templates = all_templates();
        assert_eq!(templates.len(), 12);
        assert_eq!(
            templates
                .iter()
                .filter(|t| t.class == PropertyClass::Safety)
                .count(),
            5
        );
        assert_eq!(
            templates
                .iter()
                .filter(|t| t.class == PropertyClass::Liveness)
                .count(),
            2
        );
        assert_eq!(
            templates
                .iter()
                .filter(|t| t.class == PropertyClass::Fairness)
                .count(),
            4
        );
        for (i, t) in templates.iter().enumerate() {
            assert_eq!(t.id, i);
            assert!(t.arity <= 2);
        }
    }

    #[test]
    fn instantiation_produces_expected_shapes() {
        let templates = all_templates();
        let phi = Ltl::prop(0);
        let psi = Ltl::prop(1);
        assert_eq!(templates[0].instantiate(&phi, &psi), Ltl::False);
        assert_eq!(
            templates[1].instantiate(&phi, &psi),
            Ltl::globally(Ltl::prop(0))
        );
        assert_eq!(
            templates[6].instantiate(&phi, &psi),
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1))))
        );
        // All templates produce translatable formulas.
        for t in &templates {
            let f = t.instantiate(&phi, &psi);
            let b = BuchiAutomaton::from_ltl(&f);
            assert!(b.num_states() > 0 || f == Ltl::False);
        }
    }

    #[test]
    fn template_semantics_spot_checks() {
        let templates = all_templates();
        let phi = Ltl::prop(0);
        let psi = Ltl::prop(1);
        let a = letter_of(&[0]);
        let b = letter_of(&[1]);
        let empty = 0u64;
        // Absence-after (template 3): after every phi, no phi until psi.
        let f = templates[3].instantiate(&phi, &psi);
        assert!(f.eval_lasso(&[b, a, b], &[empty]));
        assert!(!f.eval_lasso(&[b, a, a], &[b]));
        // Bounded response (template 4): psi within two steps of phi.
        let g = templates[4].instantiate(&phi, &psi);
        assert!(g.eval_lasso(&[a, empty, b], &[empty]));
        assert!(!g.eval_lasso(&[a, empty, empty], &[empty]));
        // Weak fairness (template 11).
        let h = templates[11].instantiate(&phi, &psi);
        assert!(h.eval_lasso(&[], &[a, b]));
        assert!(!h.eval_lasso(&[], &[a]));
    }
}
