//! The differential oracle matrix.
//!
//! Every generated spec runs once through the plain engine (one thread,
//! index on, arena layout, indexed repeated-reachability, cold load,
//! direct `check_all`) — the *baseline* — and then once per enabled
//! [`OracleArm`].  Each arm answers the same question a different way
//! the codebase deliberately retains:
//!
//! * [`OracleArm::Threads`] — four search worker threads,
//! * [`OracleArm::IndexOff`] — candidate index disabled,
//! * [`OracleArm::ReferenceLayout`] — the retained pre-arena linear-scan
//!   state storage,
//! * [`OracleArm::ReferenceRepeated`] — the retained O(active²)
//!   repeated-reachability oracle (verdict/witness compare only: the
//!   reference emits no cycle statistics),
//! * [`OracleArm::IncrementalPreproc`] / [`OracleArm::IncrementalReplay`]
//!   — `Engine::load_delta` from a mutated predecessor spec, in each
//!   [`ReuseMode`],
//! * [`OracleArm::Serve`] — the spec text submitted through an
//!   in-process `verifas serve` gateway, reports read back from the
//!   response frames.
//!
//! All comparisons are exact on the report's deterministic core:
//! verdict, witness, search statistics, repeated-reachability statistics
//! (timing, thread-count and index-telemetry fields zeroed, exactly as
//! the parallel-determinism suite does).

use crate::gen::gen_spec_file;
use std::sync::Mutex;
use verifas_core::{
    CycleStats, Engine, Json, ReuseMode, SearchLimits, SearchStats, VerificationOutcome,
    VerificationReport, VerifierOptions, Witness,
};
use verifas_serve::{Gateway, PriorityClass, ServeConfig, VerifyRequest};
use verifas_spec::ast::{CondExpr, SpecFile};
use verifas_spec::{compile, format_spec};

/// One arm of the differential matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleArm {
    /// Four search worker threads vs one.
    Threads,
    /// Candidate index (DSS) off vs on.
    IndexOff,
    /// Retained pre-arena state layout vs the arena-backed one.
    ReferenceLayout,
    /// Retained reference repeated-reachability vs the indexed one.
    ReferenceRepeated,
    /// `Engine::load_delta` in [`ReuseMode::Preproc`] vs a cold load.
    IncrementalPreproc,
    /// `Engine::load_delta` in [`ReuseMode::Replay`] vs a cold load.
    IncrementalReplay,
    /// Served over an in-process gateway vs direct `check_all`.
    Serve,
}

impl OracleArm {
    /// Every arm, in the order the matrix runs them.
    pub const ALL: [OracleArm; 7] = [
        OracleArm::Threads,
        OracleArm::IndexOff,
        OracleArm::ReferenceLayout,
        OracleArm::ReferenceRepeated,
        OracleArm::IncrementalPreproc,
        OracleArm::IncrementalReplay,
        OracleArm::Serve,
    ];

    /// The short name used by `verifas fuzz --matrix`.
    pub fn name(self) -> &'static str {
        match self {
            OracleArm::Threads => "threads",
            OracleArm::IndexOff => "index",
            OracleArm::ReferenceLayout => "layout",
            OracleArm::ReferenceRepeated => "repeated",
            OracleArm::IncrementalPreproc => "preproc",
            OracleArm::IncrementalReplay => "replay",
            OracleArm::Serve => "serve",
        }
    }

    /// Inverse of [`OracleArm::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        OracleArm::ALL.into_iter().find(|arm| arm.name() == name)
    }
}

/// Matrix configuration: arms to run, deterministic search limits, and
/// the deliberate-corruption hook the shrinker tests use.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Arms to compare against the baseline.
    pub arms: Vec<OracleArm>,
    /// Per-search limits.  Keep `max_millis` effectively unbounded: only
    /// the deterministic state budget may stop a run, otherwise verdicts
    /// would depend on wall clock and arms could legitimately disagree.
    pub limits: SearchLimits,
    /// Deliberately corrupt this arm's reports before comparison.  This
    /// exists so tests can prove the harness detects a broken oracle and
    /// the shrinker minimizes the resulting divergence.
    pub corrupt: Option<OracleArm>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            arms: OracleArm::ALL.to_vec(),
            limits: SearchLimits {
                max_states: 2_000,
                max_millis: 600_000,
            },
            corrupt: None,
        }
    }
}

/// A divergence between the baseline and one oracle arm.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub seed: u64,
    pub arm: OracleArm,
    /// Which property and which part of its report disagreed.
    pub detail: String,
    /// The canonical `.has` text that exposed the divergence.
    pub source: String,
}

/// How much of a report an arm must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strictness {
    /// Everything deterministic: verdict, witness, both phases' stats.
    Full,
    /// Verdict and witness services only — the reference
    /// repeated-reachability oracle reports neither cycle statistics nor
    /// the same auxiliary-phase counters, and renders the repetition
    /// reason differently (precedent: `ci_bench` compares the witness
    /// prefix only).
    Verdict,
}

/// The deterministic core of a report (see the parallel-determinism
/// suite, whose scrub rules this mirrors).
#[derive(Debug, Clone, PartialEq)]
struct ComparableReport {
    property: String,
    outcome: VerificationOutcome,
    witness: Option<Witness>,
    stats: Option<SearchStats>,
    repeated_stats: Option<SearchStats>,
    repeated_cycle: Option<CycleStats>,
}

fn comparable(report: &VerificationReport, strict: Strictness) -> ComparableReport {
    let strip = |mut stats: SearchStats| {
        stats.elapsed_ms = 0;
        stats.threads = 0;
        stats
    };
    let cycle = report.repeated_cycle.map(|mut cycle| {
        cycle.edge_micros = 0;
        cycle.scc_micros = 0;
        cycle.threads = 0;
        // `candidates` measures the filter itself, so it legitimately
        // differs between index on and off.
        cycle.candidates = 0;
        cycle.used_index = false;
        cycle
    });
    let witness = report.witness.clone().map(|mut witness| {
        if strict == Strictness::Verdict {
            // The repetition reason is implementation-specific prose.
            witness.description = String::new();
        }
        witness
    });
    match strict {
        Strictness::Full => ComparableReport {
            property: report.property.clone(),
            outcome: report.outcome,
            witness,
            stats: Some(strip(report.stats)),
            repeated_stats: report.repeated_stats.map(strip),
            repeated_cycle: cycle,
        },
        Strictness::Verdict => ComparableReport {
            property: report.property.clone(),
            outcome: report.outcome,
            witness,
            stats: Some(strip(report.stats)),
            repeated_stats: None,
            repeated_cycle: None,
        },
    }
}

/// Per-property results of one matrix arm (errors by display text).
type ArmReports = Vec<Result<VerificationReport, String>>;

fn compare(baseline: &ArmReports, arm_reports: &ArmReports, strict: Strictness) -> Option<String> {
    if baseline.len() != arm_reports.len() {
        return Some(format!(
            "report count diverged: baseline {} vs arm {}",
            baseline.len(),
            arm_reports.len()
        ));
    }
    for (index, (base, arm)) in baseline.iter().zip(arm_reports).enumerate() {
        match (base, arm) {
            (Ok(base), Ok(arm)) => {
                let base = comparable(base, strict);
                let arm = comparable(arm, strict);
                if base != arm {
                    return Some(format!(
                        "property #{index} ({}): baseline {:?} vs arm {:?}",
                        base.property, base, arm
                    ));
                }
            }
            (Err(base), Err(arm)) if base == arm => {}
            (base, arm) => {
                return Some(format!(
                    "property #{index}: baseline {} vs arm {}",
                    describe_slot(base),
                    describe_slot(arm)
                ));
            }
        }
    }
    None
}

fn describe_slot(slot: &Result<VerificationReport, String>) -> String {
    match slot {
        Ok(report) => format!("report({:?})", report.outcome),
        Err(e) => format!("error({e})"),
    }
}

fn baseline_options(limits: SearchLimits) -> VerifierOptions {
    VerifierOptions {
        limits,
        ..VerifierOptions::default()
    }
}

fn engine_reports(options: VerifierOptions, source: &str) -> Result<ArmReports, String> {
    let compiled = compile(source).map_err(|e| format!("compile failed: {e}"))?;
    let engine =
        Engine::load_with_options(compiled.spec, options).map_err(|e| format!("load: {e}"))?;
    Ok(engine
        .check_all(&compiled.properties)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect())
}

/// The predecessor spec the incremental arms edit *from*: the first
/// service precondition `c` becomes `(c) && (c)` — a real structural
/// change (the resolver folds `true && c` but not `c && c`), confined
/// to one task's slice so every other task's preprocessing and reports
/// are carried across the delta.  Shrunken repros can drop every
/// service, so fall back to doubling an opening condition, and when
/// even those are gone return the spec unchanged — the delta is then
/// empty, which still exercises the carry-everything path.
fn predecessor(file: &SpecFile) -> SpecFile {
    let mut out = file.clone();
    if let Some(service) = out.tasks.iter_mut().find_map(|t| t.services.first_mut()) {
        let pre = service.pre.clone();
        service.pre = CondExpr::And(vec![pre.clone(), pre]);
    } else if let Some(opening) = out.tasks.iter_mut().find_map(|t| t.opening.as_mut()) {
        let cond = opening.clone();
        *opening = CondExpr::And(vec![cond.clone(), cond]);
    }
    out
}

fn incremental_reports(
    file: &SpecFile,
    source: &str,
    options: VerifierOptions,
    mode: ReuseMode,
) -> Result<ArmReports, String> {
    let prior_source = format_spec(&predecessor(file));
    let prior_compiled =
        compile(&prior_source).map_err(|e| format!("predecessor compile failed: {e}"))?;
    let prior = Engine::load_with_options(prior_compiled.spec, options)
        .map_err(|e| format!("predecessor load: {e}"))?;
    // Warm the prior engine's caches so the delta has something to carry.
    let _ = prior.check_all(&prior_compiled.properties);
    let compiled = compile(source).map_err(|e| format!("compile failed: {e}"))?;
    let (engine, _summary) =
        Engine::load_delta(&prior, compiled.spec, mode).map_err(|e| format!("load_delta: {e}"))?;
    Ok(engine
        .check_all(&compiled.properties)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect())
}

fn served_reports(source: &str, limits: SearchLimits) -> Result<ArmReports, String> {
    let gateway = Gateway::new(ServeConfig {
        cores: 1,
        sessions: 2,
        reuse: ReuseMode::Cold,
        ..ServeConfig::default()
    });
    let request = VerifyRequest {
        spec: source.to_owned(),
        class: PriorityClass::Interactive,
        properties: None,
        deadline_ms: None,
        max_states: Some(limits.max_states),
        max_millis: Some(limits.max_millis),
    };
    let frames = Mutex::new(Vec::new());
    gateway
        .submit(&request, &|frame: &str| {
            frames.lock().unwrap().push(frame.to_owned());
        })
        .map_err(|e| format!("serve submit: {e}"))?;
    let frames = frames.into_inner().unwrap();
    let mut indexed: Vec<(usize, Result<VerificationReport, String>)> = Vec::new();
    for frame in &frames {
        let value = Json::parse(frame).map_err(|e| format!("bad frame: {e}"))?;
        if value.get("frame").and_then(Json::as_str) != Some("report") {
            continue;
        }
        let index = value
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("report frame without index")? as usize;
        let slot = match value.get("report") {
            Some(json) => Ok(VerificationReport::from_json(&json.to_string())
                .map_err(|e| format!("report frame failed to parse: {e}"))?),
            None => Err(value
                .get("error")
                .and_then(Json::as_str)
                .ok_or("report frame with neither report nor error")?
                .to_owned()),
        };
        indexed.push((index, slot));
    }
    indexed.sort_by_key(|(index, _)| *index);
    Ok(indexed.into_iter().map(|(_, slot)| slot).collect())
}

/// Deliberately perturb an arm's first successful report (the shrinker
/// tests drive this through [`FuzzConfig::corrupt`]).
fn corrupt_reports(reports: &mut ArmReports) {
    if let Some(report) = reports.iter_mut().find_map(|slot| slot.as_mut().ok()) {
        report.stats.states_created += 1;
        report.outcome = match report.outcome {
            VerificationOutcome::Satisfied => VerificationOutcome::Violated,
            _ => VerificationOutcome::Satisfied,
        };
        report.witness = None;
    }
}

/// Run one arm over an already-printed spec.
fn arm_reports(
    arm: OracleArm,
    file: &SpecFile,
    source: &str,
    config: &FuzzConfig,
) -> Result<ArmReports, String> {
    let base = baseline_options(config.limits);
    match arm {
        OracleArm::Threads => engine_reports(
            VerifierOptions {
                search_threads: 4,
                ..base
            },
            source,
        ),
        OracleArm::IndexOff => engine_reports(
            VerifierOptions {
                data_structure_support: false,
                ..base
            },
            source,
        ),
        OracleArm::ReferenceLayout => engine_reports(
            VerifierOptions {
                reference_layout: true,
                ..base
            },
            source,
        ),
        OracleArm::ReferenceRepeated => engine_reports(
            VerifierOptions {
                reference_repeated: true,
                ..base
            },
            source,
        ),
        OracleArm::IncrementalPreproc => {
            incremental_reports(file, source, base, ReuseMode::Preproc)
        }
        OracleArm::IncrementalReplay => incremental_reports(file, source, base, ReuseMode::Replay),
        OracleArm::Serve => served_reports(source, config.limits),
    }
}

fn strictness(arm: OracleArm) -> Strictness {
    match arm {
        OracleArm::ReferenceRepeated => Strictness::Verdict,
        _ => Strictness::Full,
    }
}

/// Run the full configured matrix over one spec AST.  `Ok(None)` means
/// every arm agreed with the baseline; `Ok(Some(_))` is a divergence;
/// `Err(_)` means the spec failed to print/compile/load at all (a
/// generator or front-end bug — also worth a repro).
pub fn check_spec_file(
    file: &SpecFile,
    seed: u64,
    config: &FuzzConfig,
) -> Result<Option<Divergence>, String> {
    let source = format_spec(file);
    let baseline = engine_reports(baseline_options(config.limits), &source)?;
    for &arm in &config.arms {
        let mut reports = arm_reports(arm, file, &source, config)?;
        if config.corrupt == Some(arm) {
            corrupt_reports(&mut reports);
        }
        if let Some(detail) = compare(&baseline, &reports, strictness(arm)) {
            return Ok(Some(Divergence {
                seed,
                arm,
                detail,
                source,
            }));
        }
    }
    Ok(None)
}

/// Generate the spec for `seed` and run it through the matrix.
pub fn run_seed(seed: u64, config: &FuzzConfig) -> Result<Option<Divergence>, String> {
    check_spec_file(&gen_spec_file(seed), seed, config)
}
