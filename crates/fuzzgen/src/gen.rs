//! The seeded generator of random *valid-by-construction* specifications.
//!
//! This extends the printer/parser round-trip generator of
//! `verifas-spec` (`crates/spec/tests/roundtrip.rs`) from "one root,
//! maybe one child" to the full surface the verifier exercises:
//!
//! * schemas of 1–4 relations with foreign keys,
//! * task hierarchies up to three levels deep (children's variables are
//!   a prefix of their parent's, so the same-name input/output wiring
//!   convention stays valid at every level),
//! * per-task artifact relations with insert/retrieve services that
//!   propagate exactly the task's inputs,
//! * LTL-FO properties over any task mixing condition atoms, `did` /
//!   `open` / `close` service atoms (restricted to the task's observable
//!   services), `define` aliases, `forall` globals, the full operator
//!   set including `R`, and instantiations of the Table-4 templates.
//!
//! Validity is by construction, not by filtering: every emitted
//! [`SpecFile`] must print, reparse, lower and load.  A seed that does
//! not is itself a bug worth a minimized repro.

use crate::rng::Lcg;
use verifas_ltl::templates::all_templates;
use verifas_spec::ast::*;

fn ident(name: impl Into<String>) -> Ident {
    Ident::synthetic(name.into())
}

/// Relation layout the generator tracks to keep conditions well-typed.
pub struct GenRelation {
    pub name: String,
    /// `None` for a data attribute, `Some(target index)` for a foreign key.
    pub attrs: Vec<Option<usize>>,
}

#[derive(Clone)]
pub struct GenVar {
    pub name: String,
    /// `None` for data, `Some(relation index)` for an id variable.
    pub rel: Option<usize>,
}

/// One generated task, kept in declaration (pre-)order: parents precede
/// their children, as the resolver requires.
struct GenTask {
    name: String,
    vars: Vec<GenVar>,
    decl: TaskDecl,
    children: Vec<String>,
    service_names: Vec<String>,
}

fn gen_relations(rng: &mut Lcg) -> Vec<GenRelation> {
    let count = rng.range(1, 4);
    let mut out: Vec<GenRelation> = Vec::new();
    for i in 0..count {
        let attr_count = rng.range(1, 3);
        let mut attrs = Vec::new();
        for _ in 0..attr_count {
            // Foreign keys may only reference previously declared
            // relations (the schema must stay acyclic).
            if !out.is_empty() && rng.chance(30) {
                attrs.push(Some(rng.below(out.len())));
            } else {
                attrs.push(None);
            }
        }
        out.push(GenRelation {
            name: format!("R{i}"),
            attrs,
        });
    }
    out
}

fn gen_vars(rng: &mut Lcg, relations: &[GenRelation], count: usize) -> Vec<GenVar> {
    (0..count)
        .map(|i| GenVar {
            name: format!("v{i}"),
            rel: rng.chance(40).then(|| rng.below(relations.len())),
        })
        .collect()
}

/// A random term of the given type (`None` = data) over the scope.
fn gen_term(rng: &mut Lcg, vars: &[GenVar], rel: Option<usize>) -> TermExpr {
    let candidates: Vec<&GenVar> = vars.iter().filter(|v| v.rel == rel).collect();
    match rel {
        None => match rng.below(if candidates.is_empty() { 2 } else { 3 }) {
            0 => TermExpr::Str(format!("c{}", rng.below(4)), Default::default()),
            1 => TermExpr::Null(Default::default()),
            _ => TermExpr::Var(ident(candidates[rng.below(candidates.len())].name.clone())),
        },
        Some(_) => {
            if candidates.is_empty() || rng.chance(30) {
                TermExpr::Null(Default::default())
            } else {
                TermExpr::Var(ident(candidates[rng.below(candidates.len())].name.clone()))
            }
        }
    }
}

/// A random well-typed atomic condition over the scope.
fn gen_atom_cond(rng: &mut Lcg, relations: &[GenRelation], vars: &[GenVar]) -> CondExpr {
    // A relational atom needs an id variable keyed to some relation.
    let keyed: Vec<usize> = vars.iter().filter_map(|v| v.rel).collect();
    if !keyed.is_empty() && rng.chance(30) {
        let rel_index = keyed[rng.below(keyed.len())];
        let relation = &relations[rel_index];
        let key = gen_term(rng, vars, Some(rel_index));
        let mut args = vec![key];
        for attr in &relation.attrs {
            args.push(gen_term(rng, vars, *attr));
        }
        return CondExpr::Rel {
            rel: ident(relation.name.clone()),
            args,
        };
    }
    // Comparison between same-typed terms (null compares with anything).
    let var = &vars[rng.below(vars.len())];
    let left = TermExpr::Var(ident(var.name.clone()));
    let right = gen_term(rng, vars, var.rel);
    CondExpr::Cmp {
        left,
        eq: rng.chance(60),
        right,
    }
}

pub fn gen_cond(
    rng: &mut Lcg,
    relations: &[GenRelation],
    vars: &[GenVar],
    depth: usize,
) -> CondExpr {
    if depth == 0 || rng.chance(35) {
        return gen_atom_cond(rng, relations, vars);
    }
    match rng.below(5) {
        0 => CondExpr::Not(
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
            Default::default(),
        ),
        1 => CondExpr::And(
            (0..2 + rng.below(2))
                .map(|_| gen_cond(rng, relations, vars, depth - 1))
                .collect(),
        ),
        2 => CondExpr::Or(
            (0..2 + rng.below(2))
                .map(|_| gen_cond(rng, relations, vars, depth - 1))
                .collect(),
        ),
        3 => CondExpr::Implies(
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
            Box::new(gen_cond(rng, relations, vars, depth - 1)),
        ),
        _ => {
            if rng.chance(50) {
                CondExpr::True(Default::default())
            } else {
                CondExpr::False(Default::default())
            }
        }
    }
}

fn type_decl(relations: &[GenRelation], rel: Option<usize>) -> TypeDecl {
    match rel {
        None => TypeDecl::Data,
        Some(i) => TypeDecl::Id(ident(relations[i].name.clone())),
    }
}

fn var_decls(relations: &[GenRelation], vars: &[GenVar]) -> Vec<VarDecl> {
    vars.iter()
        .map(|v| VarDecl {
            name: ident(v.name.clone()),
            typ: type_decl(relations, v.rel),
        })
        .collect()
}

/// Generate one task's services (and maybe an artifact with its update
/// service).  `inputs` is the task's input variable list: every service
/// must propagate a superset of it, and an update service must propagate
/// exactly it.
fn gen_services(
    rng: &mut Lcg,
    relations: &[GenRelation],
    task_name: &str,
    vars: &[GenVar],
    inputs: &[String],
    artifacts: &mut Vec<ArtifactDecl>,
) -> Vec<ServiceDecl> {
    let propagate: Vec<Ident> = inputs.iter().map(|n| ident(n.clone())).collect();
    let mut services = Vec::new();
    // Optionally one artifact relation plus a matching insert/retrieve
    // service.  Update services must propagate exactly the inputs.
    if vars.len() >= 2 && rng.chance(40) {
        let columns = vec![ident(vars[0].name.clone()), ident(vars[1].name.clone())];
        let artifact = format!("POOL_{task_name}");
        artifacts.push(ArtifactDecl {
            name: ident(artifact.clone()),
            columns: columns.clone(),
        });
        services.push(ServiceDecl {
            name: ident("stash".to_owned()),
            pre: gen_cond(rng, relations, vars, 1),
            post: gen_cond(rng, relations, vars, 1),
            propagate: propagate.clone(),
            update: Some(UpdateDecl {
                insert: rng.chance(50),
                rel: ident(artifact),
                vars: columns,
            }),
        });
    }
    for i in 0..rng.range(1, 3) {
        services.push(ServiceDecl {
            name: ident(format!("s{i}")),
            pre: gen_cond(rng, relations, vars, 2),
            post: gen_cond(rng, relations, vars, 2),
            propagate: propagate.clone(),
            update: None,
        });
    }
    services
}

/// Recursively grow the task tree below `parent_index`.  Each child's
/// variables are a prefix of its parent's (same names, same types), its
/// input is the first variable and its output the last — distinct by the
/// `len >= 2` guard, so the returned parent variable never overlaps the
/// parent's own input.
fn grow_children(
    rng: &mut Lcg,
    relations: &[GenRelation],
    tasks: &mut Vec<GenTask>,
    parent_index: usize,
    depth: usize,
    counter: &mut usize,
) {
    if depth >= 3 {
        return;
    }
    let parent_vars = tasks[parent_index].vars.clone();
    let parent_name = tasks[parent_index].name.clone();
    if parent_vars.len() < 2 {
        return;
    }
    let child_chance = [55, 40, 25][depth];
    let max_children = if depth == 0 { 2 } else { 1 };
    for _ in 0..max_children {
        if tasks.len() >= 6 || !rng.chance(child_chance) {
            continue;
        }
        let take = rng.range(2, parent_vars.len());
        let child_vars: Vec<GenVar> = parent_vars[..take].to_vec();
        let input = child_vars[0].name.clone();
        let output = child_vars[take - 1].name.clone();
        let name = format!("T{counter}");
        *counter += 1;
        let mut artifacts = Vec::new();
        let services = gen_services(
            rng,
            relations,
            &name,
            &child_vars,
            std::slice::from_ref(&input),
            &mut artifacts,
        );
        let service_names: Vec<String> = services.iter().map(|s| s.name.name.clone()).collect();
        let decl = TaskDecl {
            name: ident(name.clone()),
            parent: Some(ident(parent_name.clone())),
            vars: var_decls(relations, &child_vars),
            inputs: vec![IoPair {
                child: ident(input.clone()),
                parent: None,
            }],
            outputs: if output != input {
                vec![IoPair {
                    child: ident(output),
                    parent: None,
                }]
            } else {
                Vec::new()
            },
            artifacts,
            // The opening condition is evaluated in the *parent's* scope,
            // the closing condition in the child's own.
            opening: rng
                .chance(70)
                .then(|| gen_cond(rng, relations, &parent_vars, 1)),
            closing: rng
                .chance(70)
                .then(|| gen_cond(rng, relations, &child_vars, 1)),
            services,
        };
        let child_index = tasks.len();
        tasks.push(GenTask {
            name: name.clone(),
            vars: child_vars,
            decl,
            children: Vec::new(),
            service_names,
        });
        tasks[parent_index].children.push(name);
        grow_children(rng, relations, tasks, child_index, depth + 1, counter);
    }
}

/// What a property over one task may observe: the task's own internal
/// services, its own opening/closing, and its direct children's.
struct Observable {
    task: String,
    services: Vec<String>,
    children: Vec<String>,
}

/// A random atomic proposition for a property on `obs.task`.
fn gen_prop_atom(
    rng: &mut Lcg,
    relations: &[GenRelation],
    scope: &[GenVar],
    obs: &Observable,
    aliases: &[String],
) -> AtomExpr {
    match rng.below(10) {
        0 | 1 if !obs.services.is_empty() => AtomExpr::Did(
            ident(obs.task.clone()),
            ident(obs.services[rng.below(obs.services.len())].clone()),
        ),
        2 => {
            let targets: Vec<&String> = std::iter::once(&obs.task).chain(&obs.children).collect();
            AtomExpr::Open(ident(targets[rng.below(targets.len())].clone()))
        }
        3 => {
            let targets: Vec<&String> = std::iter::once(&obs.task).chain(&obs.children).collect();
            AtomExpr::Close(ident(targets[rng.below(targets.len())].clone()))
        }
        4 if !aliases.is_empty() => {
            AtomExpr::Alias(ident(aliases[rng.below(aliases.len())].clone()))
        }
        _ => AtomExpr::Cond(
            Box::new(gen_cond(rng, relations, scope, 1)),
            Default::default(),
        ),
    }
}

fn gen_ltl(
    rng: &mut Lcg,
    relations: &[GenRelation],
    scope: &[GenVar],
    obs: &Observable,
    aliases: &[String],
    depth: usize,
) -> LtlExpr {
    if depth == 0 || rng.chance(30) {
        return LtlExpr::Atom(gen_prop_atom(rng, relations, scope, obs, aliases));
    }
    let sub = |rng: &mut Lcg| Box::new(gen_ltl(rng, relations, scope, obs, aliases, depth - 1));
    match rng.below(9) {
        0 => LtlExpr::Not(sub(rng), Default::default()),
        1 => LtlExpr::And(sub(rng), sub(rng)),
        2 => LtlExpr::Or(sub(rng), sub(rng)),
        3 => LtlExpr::Implies(sub(rng), sub(rng)),
        4 => LtlExpr::Globally(sub(rng), Default::default()),
        5 => LtlExpr::Eventually(sub(rng), Default::default()),
        6 => LtlExpr::Until(sub(rng), sub(rng)),
        7 => LtlExpr::Release(sub(rng), sub(rng)),
        _ => LtlExpr::Next(sub(rng), Default::default()),
    }
}

fn gen_property(
    rng: &mut Lcg,
    relations: &[GenRelation],
    tasks: &[GenTask],
    index: usize,
) -> PropertyDecl {
    let task = &tasks[rng.below(tasks.len())];
    let obs = Observable {
        task: task.name.clone(),
        services: task.service_names.clone(),
        children: task.children.clone(),
    };
    // Scope: the task's variables plus the property's forall globals.
    let mut scope = task.vars.clone();
    let mut foralls = Vec::new();
    for g in 0..rng.below(3) {
        let rel = rng.chance(30).then(|| rng.below(relations.len()));
        foralls.push(VarDecl {
            name: ident(format!("g{g}")),
            typ: type_decl(relations, rel),
        });
        scope.push(GenVar {
            name: format!("g{g}"),
            rel,
        });
    }
    let mut defines = Vec::new();
    let mut aliases = Vec::new();
    for d in 0..rng.below(3) {
        let name = format!("d{d}");
        defines.push(DefineDecl {
            name: ident(name.clone()),
            cond: gen_cond(rng, relations, &scope, 1),
        });
        aliases.push(name);
    }
    let body = if rng.chance(35) {
        let templates = all_templates();
        let template = &templates[rng.below(templates.len())];
        let atom = |rng: &mut Lcg| gen_prop_atom(rng, relations, &scope, &obs, &aliases);
        PropertyBody::Template {
            name: template.name.to_owned(),
            span: Default::default(),
            phi: (template.arity >= 1).then(|| atom(rng)),
            psi: (template.arity >= 2).then(|| atom(rng)),
        }
    } else {
        let depth = rng.range(2, 3);
        PropertyBody::Formula(gen_ltl(rng, relations, &scope, &obs, &aliases, depth))
    };
    PropertyDecl {
        name: format!("p{index}"),
        span: Default::default(),
        task: ident(task.name.clone()),
        foralls,
        defines,
        body,
    }
}

/// One random, valid-by-construction specification file for `seed`.
pub fn gen_spec_file(seed: u64) -> SpecFile {
    let mut rng = Lcg::from_seed(seed);
    let rng = &mut rng;
    let relations = gen_relations(rng);
    let root_var_count = rng.range(3, 5);
    let root_vars = gen_vars(rng, &relations, root_var_count);
    let mut artifacts = Vec::new();
    let services = gen_services(rng, &relations, "Root", &root_vars, &[], &mut artifacts);
    let service_names: Vec<String> = services.iter().map(|s| s.name.name.clone()).collect();
    let root_decl = TaskDecl {
        name: ident("Root".to_owned()),
        parent: None,
        vars: var_decls(&relations, &root_vars),
        inputs: Vec::new(),
        outputs: Vec::new(),
        artifacts,
        opening: None,
        closing: None,
        services,
    };
    let mut tasks = vec![GenTask {
        name: "Root".to_owned(),
        vars: root_vars.clone(),
        decl: root_decl,
        children: Vec::new(),
        service_names,
    }];
    let mut counter = 1usize;
    grow_children(rng, &relations, &mut tasks, 0, 0, &mut counter);

    let init = rng
        .chance(70)
        .then(|| gen_cond(rng, &relations, &root_vars, 1));
    let properties = (0..rng.range(1, 3))
        .map(|i| gen_property(rng, &relations, &tasks, i))
        .collect();

    SpecFile {
        name: format!("fuzz-{seed}"),
        span: Default::default(),
        relations: relations
            .iter()
            .map(|r| RelationDecl {
                name: ident(r.name.clone()),
                attrs: r
                    .attrs
                    .iter()
                    .enumerate()
                    .map(|(i, target)| AttrDecl {
                        name: ident(format!("a{i}")),
                        kind: match target {
                            None => AttrKindDecl::Data,
                            Some(t) => AttrKindDecl::Ref(ident(relations[*t].name.clone())),
                        },
                    })
                    .collect(),
            })
            .collect(),
        tasks: tasks.into_iter().map(|t| t.decl).collect(),
        init,
        properties,
    }
}
