//! # verifas-fuzzgen — seeded spec generation + differential oracles
//!
//! The trust story of the optimised verifier rests on the reference
//! implementations the codebase deliberately retains: the pre-arena
//! state layout, the O(active²) repeated-reachability oracle, the
//! sequential search, the cold (non-incremental) load, the direct
//! in-process `check_all`.  This crate turns those retained oracles
//! into an automated differential harness:
//!
//! * [`gen`] — a seeded generator of random *valid-by-construction*
//!   specifications (schema → task hierarchy → services → LTL-FO
//!   properties, including Table-4 template instantiations), emitted as
//!   ASTs that print to canonical `.has` text,
//! * [`oracle`] — the matrix: every generated spec runs through each
//!   retained oracle arm and must agree bit for bit with the plain
//!   engine on verdicts, witnesses and deterministic statistics,
//! * [`shrink`] — a greedy structural shrinker that minimizes any
//!   divergence to a small `.has` repro a human can read,
//! * [`sweep`] — the seed-range driver behind `verifas fuzz` and the CI
//!   `fuzz-smoke` job.
//!
//! Everything is deterministic: a seed plus a matrix selection fully
//! determines every byte the harness produces, so any failure line from
//! CI replays locally with `verifas fuzz --seeds N..N+1`.

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod sweep;

pub use gen::gen_spec_file;
pub use oracle::{check_spec_file, run_seed, Divergence, FuzzConfig, OracleArm};
pub use rng::Lcg;
pub use shrink::{shrink, shrink_divergence};
pub use sweep::{run_sweep, SweepOutcome};
