//! The seed-range driver shared by `verifas fuzz` and the tests.

use crate::gen::gen_spec_file;
use crate::oracle::{check_spec_file, Divergence, FuzzConfig};
use crate::shrink::shrink_divergence;
use verifas_spec::format_spec;

/// The result of one minimized divergence: the shrunken `.has` text
/// plus the divergence it still exhibits.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    pub divergence: Divergence,
    /// Canonical `.has` text of the minimized spec.
    pub minimized: String,
}

/// What a seed sweep found.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// How many seeds actually ran (the CI smoke job prints and asserts
    /// on this, so a silently-empty range cannot pass as a green sweep).
    pub seeds_run: usize,
    /// Seeds whose generated spec failed to print/compile/load — always
    /// a bug (the generator promises validity by construction).
    pub errors: Vec<(u64, String)>,
    /// Divergences, minimized when shrinking was requested.
    pub divergences: Vec<MinimizedRepro>,
}

impl SweepOutcome {
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.divergences.is_empty()
    }
}

/// Run seeds `range` through the matrix.  With `shrink_failures` each
/// divergence is minimized before being reported; `progress` receives
/// one line per event (seed milestones, divergences) for live output.
pub fn run_sweep(
    range: std::ops::Range<u64>,
    config: &FuzzConfig,
    shrink_failures: bool,
    progress: &mut dyn FnMut(&str),
) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for seed in range {
        let file = gen_spec_file(seed);
        match check_spec_file(&file, seed, config) {
            Ok(None) => {}
            Ok(Some(divergence)) => {
                progress(&format!(
                    "seed {seed}: divergence on arm `{}`: {}",
                    divergence.arm.name(),
                    truncated(&divergence.detail)
                ));
                let repro = if shrink_failures {
                    let (minimized, final_divergence) =
                        shrink_divergence(&file, &divergence, config);
                    progress(&format!(
                        "seed {seed}: shrunk repro to {} bytes",
                        format_spec(&minimized).len()
                    ));
                    MinimizedRepro {
                        minimized: format_spec(&minimized),
                        divergence: final_divergence,
                    }
                } else {
                    MinimizedRepro {
                        minimized: divergence.source.clone(),
                        divergence,
                    }
                };
                outcome.divergences.push(repro);
            }
            Err(error) => {
                progress(&format!("seed {seed}: harness error: {error}"));
                outcome.errors.push((seed, error));
            }
        }
        outcome.seeds_run += 1;
    }
    outcome
}

fn truncated(detail: &str) -> String {
    const LIMIT: usize = 200;
    if detail.len() <= LIMIT {
        return detail.to_owned();
    }
    let mut end = LIMIT;
    while !detail.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &detail[..end])
}
