//! The deterministic random source behind every generated spec.
//!
//! Same MMIX constants as the printer/parser round-trip suite in
//! `verifas-spec`, so a seed here is as cheap to replay as one there:
//! the sequence depends on nothing but the seed.

/// A minimal deterministic LCG (Knuth's MMIX constants).
pub struct Lcg(pub u64);

impl Lcg {
    /// An LCG whose stream is decorrelated from small consecutive seeds.
    pub fn from_seed(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform value in `0..bound` (bound ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}
