//! The greedy structural shrinker.
//!
//! Given a spec AST whose matrix run diverges, the shrinker repeatedly
//! proposes single structural reductions — drop a property, a task
//! subtree, a service, an artifact, a variable, the init condition, a
//! forall or define; replace a condition with `true`; hoist an LTL
//! subformula over its parent — and keeps a reduction exactly when the
//! reduced spec *still diverges*.  Candidates that break validity are
//! rejected for free: an invalid spec fails to compile, so the
//! divergence predicate returns `false` and the greedy loop moves on.
//!
//! The result is a local minimum: no single listed reduction applies.
//! That is deliberately simple — divergences are rare, and a
//! deterministic, explainable reduction order beats a cleverer search
//! when a human is about to read the repro.

use crate::oracle::{check_spec_file, Divergence, FuzzConfig};
use verifas_spec::ast::{CondExpr, LtlExpr, PropertyBody, SpecFile};

/// Upper bound on divergence-predicate evaluations per shrink, so a
/// pathological case cannot stall a fuzz run (each evaluation re-runs
/// the failing arm).
const MAX_CHECKS: usize = 400;

/// Greedily minimize `file` while `still_fails` holds.  Returns the
/// reduced AST (possibly `file` itself if nothing could be removed).
pub fn shrink(file: &SpecFile, still_fails: &mut dyn FnMut(&SpecFile) -> bool) -> SpecFile {
    let mut current = file.clone();
    let mut checks = 0usize;
    loop {
        let mut progressed = false;
        for candidate in reductions(&current) {
            checks += 1;
            if checks > MAX_CHECKS {
                return current;
            }
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Shrink a known divergence: re-runs only the diverging arm at each
/// candidate.  Returns the minimized AST and the divergence it still
/// exhibits.
pub fn shrink_divergence(
    file: &SpecFile,
    divergence: &Divergence,
    config: &FuzzConfig,
) -> (SpecFile, Divergence) {
    let narrowed = FuzzConfig {
        arms: vec![divergence.arm],
        ..config.clone()
    };
    let seed = divergence.seed;
    let mut predicate =
        |candidate: &SpecFile| matches!(check_spec_file(candidate, seed, &narrowed), Ok(Some(_)));
    let minimized = shrink(file, &mut predicate);
    let final_divergence = match check_spec_file(&minimized, seed, &narrowed) {
        Ok(Some(d)) => d,
        // Unreachable in practice (the predicate held for `minimized`),
        // but never panic inside a fuzz harness.
        _ => divergence.clone(),
    };
    (minimized, final_divergence)
}

/// Every single-step reduction of `file`, most drastic first.
fn reductions(file: &SpecFile) -> Vec<SpecFile> {
    let mut out = Vec::new();

    // Drop one property.
    for i in 0..file.properties.len() {
        let mut reduced = file.clone();
        reduced.properties.remove(i);
        out.push(reduced);
    }

    // Drop one non-root task subtree.
    for i in 1..file.tasks.len() {
        let mut doomed = vec![file.tasks[i].name.name.clone()];
        // Children always follow their parent in declaration order, so
        // one forward sweep closes the subtree.
        for task in &file.tasks[i + 1..] {
            if let Some(parent) = &task.parent {
                if doomed.contains(&parent.name) {
                    doomed.push(task.name.name.clone());
                }
            }
        }
        let mut reduced = file.clone();
        reduced.tasks.retain(|t| !doomed.contains(&t.name.name));
        out.push(reduced);
    }

    // Drop one service.
    for (t, task) in file.tasks.iter().enumerate() {
        for s in 0..task.services.len() {
            let mut reduced = file.clone();
            reduced.tasks[t].services.remove(s);
            out.push(reduced);
        }
    }

    // Drop one artifact together with the updates that reference it.
    for (t, task) in file.tasks.iter().enumerate() {
        for a in 0..task.artifacts.len() {
            let name = task.artifacts[a].name.name.clone();
            let mut reduced = file.clone();
            reduced.tasks[t].artifacts.remove(a);
            for service in &mut reduced.tasks[t].services {
                if service.update.as_ref().is_some_and(|u| u.rel.name == name) {
                    service.update = None;
                }
            }
            out.push(reduced);
        }
    }

    // Drop one variable (and any io pair or artifact column that names
    // it; a remaining reference elsewhere simply fails to compile and
    // the candidate is rejected).
    for (t, task) in file.tasks.iter().enumerate() {
        for v in 0..task.vars.len() {
            let name = task.vars[v].name.name.clone();
            let mut reduced = file.clone();
            let task = &mut reduced.tasks[t];
            task.vars.remove(v);
            task.inputs.retain(|io| io.child.name != name);
            task.outputs.retain(|io| io.child.name != name);
            task.artifacts
                .retain(|a| a.columns.iter().all(|c| c.name != name));
            out.push(reduced);
        }
    }

    // Drop one output wire.
    for (t, task) in file.tasks.iter().enumerate() {
        for o in 0..task.outputs.len() {
            let mut reduced = file.clone();
            reduced.tasks[t].outputs.remove(o);
            out.push(reduced);
        }
    }

    // Drop the init condition.
    if file.init.is_some() {
        let mut reduced = file.clone();
        reduced.init = None;
        out.push(reduced);
    }

    // Drop one forall global or one define.
    for (p, property) in file.properties.iter().enumerate() {
        for f in 0..property.foralls.len() {
            let mut reduced = file.clone();
            reduced.properties[p].foralls.remove(f);
            out.push(reduced);
        }
        for d in 0..property.defines.len() {
            let mut reduced = file.clone();
            reduced.properties[p].defines.remove(d);
            out.push(reduced);
        }
    }

    // Replace one condition site with `true`.
    let sites = count_cond_sites(file);
    for site in 0..sites {
        if let Some(reduced) = simplify_cond_site(file, site) {
            out.push(reduced);
        }
    }

    // Hoist one direct subformula over a property's LTL body.
    for (p, property) in file.properties.iter().enumerate() {
        if let PropertyBody::Formula(body) = &property.body {
            for sub in subformulas(body) {
                let mut reduced = file.clone();
                reduced.properties[p].body = PropertyBody::Formula(sub);
                out.push(reduced);
            }
        }
    }

    out
}

/// Condition sites in a fixed order: init, then per task its opening,
/// closing and each service's pre/post.
fn count_cond_sites(file: &SpecFile) -> usize {
    let mut count = usize::from(file.init.is_some());
    for task in &file.tasks {
        count += usize::from(task.opening.is_some());
        count += usize::from(task.closing.is_some());
        count += 2 * task.services.len();
    }
    count
}

/// Replace the `site`-th condition with `true` (skipped when it already
/// is `true`).
fn simplify_cond_site(file: &SpecFile, site: usize) -> Option<SpecFile> {
    let mut reduced = file.clone();
    let mut remaining = site;
    {
        let mut visit = |cond: &mut CondExpr| -> Option<bool> {
            if remaining == 0 {
                if matches!(cond, CondExpr::True(_)) {
                    return Some(false);
                }
                *cond = CondExpr::True(Default::default());
                return Some(true);
            }
            remaining -= 1;
            None
        };
        if let Some(init) = &mut reduced.init {
            if let Some(changed) = visit(init) {
                return changed.then_some(reduced);
            }
        }
        for task in &mut reduced.tasks {
            if let Some(opening) = &mut task.opening {
                if let Some(changed) = visit(opening) {
                    return changed.then_some(reduced);
                }
            }
            if let Some(closing) = &mut task.closing {
                if let Some(changed) = visit(closing) {
                    return changed.then_some(reduced);
                }
            }
            for service in &mut task.services {
                if let Some(changed) = visit(&mut service.pre) {
                    return changed.then_some(reduced);
                }
                if let Some(changed) = visit(&mut service.post) {
                    return changed.then_some(reduced);
                }
            }
        }
    }
    None
}

/// The direct subformulas of an LTL node (hoisting candidates).
fn subformulas(expr: &LtlExpr) -> Vec<LtlExpr> {
    match expr {
        LtlExpr::True(_) | LtlExpr::False(_) | LtlExpr::Atom(_) => Vec::new(),
        LtlExpr::Not(inner, _)
        | LtlExpr::Next(inner, _)
        | LtlExpr::Globally(inner, _)
        | LtlExpr::Eventually(inner, _) => vec![(**inner).clone()],
        LtlExpr::And(a, b)
        | LtlExpr::Or(a, b)
        | LtlExpr::Implies(a, b)
        | LtlExpr::Until(a, b)
        | LtlExpr::Release(a, b) => vec![(**a).clone(), (**b).clone()],
    }
}
