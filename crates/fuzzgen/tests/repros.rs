//! Committed divergence repros stay fixed.
//!
//! Every `.has` file under `repros/` is a minimized reproducer of a
//! divergence the harness once caught; replaying it through the full
//! oracle matrix must now be clean.  The first 1000-seed sweep found
//! five divergences (seeds 42/63/313 on `threads`, 609 on `index`, 645
//! on `layout`), all rooted in an iteration-order-dependent congruence
//! closure in `PitBuilder::assert_eq`; the shrunken specs are committed
//! under `repros/` (see its README for the full story).  The companion
//! assertion — that a fresh seed block actually swept — keeps this test
//! load-bearing even if the directory is ever emptied: an
//! accidentally-empty sweep cannot masquerade as green.

use std::path::{Path, PathBuf};
use verifas_fuzzgen::{check_spec_file, run_sweep, FuzzConfig};
use verifas_spec::parse;

fn repros_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("repros")
}

#[test]
fn committed_repros_replay_clean_through_the_full_matrix() {
    let config = FuzzConfig::default();
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(repros_dir()).expect("repros/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "has") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let file = parse(&source).unwrap_or_else(|e| panic!("{name}: no longer parses: {e}"));
        match check_spec_file(&file, 0, &config) {
            Ok(None) => {}
            Ok(Some(d)) => panic!(
                "{name}: fixed divergence is BACK on arm `{}`: {}",
                d.arm.name(),
                d.detail
            ),
            Err(e) => panic!("{name}: repro no longer runs through the harness: {e}"),
        }
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "expected the committed repro specs to be replayed, got {replayed}"
    );
    let mut lines = Vec::new();
    let outcome = run_sweep(0..16, &config, false, &mut |line| {
        lines.push(line.to_owned())
    });
    assert_eq!(
        outcome.seeds_run, 16,
        "the regression sweep must actually run its seed block"
    );
    assert!(
        outcome.clean(),
        "regression sweep diverged (replayed {replayed} repros first): {lines:?}"
    );
}
