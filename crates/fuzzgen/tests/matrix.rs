//! The differential matrix end to end: generator validity, oracle
//! agreement, and the corrupted-arm → shrunken-repro path the ISSUE's
//! acceptance criteria pin.

use verifas_fuzzgen::{
    check_spec_file, gen_spec_file, run_seed, run_sweep, shrink_divergence, FuzzConfig, OracleArm,
};
use verifas_spec::{compile, format_spec, parse, resolve};

/// Every generated spec must print, reparse losslessly, and lower
/// identically from both trees — the round-trip invariant the spec
/// crate pins for its own (smaller) generator, extended here to the
/// deep-hierarchy/service-atom/template surface.
#[test]
fn generated_specs_print_reparse_and_lower() {
    for seed in 0..128u64 {
        let original = gen_spec_file(seed);
        let printed = format_spec(&original);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: reparse failed: {e}\n--- printed ---\n{printed}")
        });
        let mut a = original.clone();
        let mut b = reparsed.clone();
        a.strip_spans();
        b.strip_spans();
        assert_eq!(a, b, "seed {seed}: reparse differs\n{printed}");
        let lowered_a = resolve(&original)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to lower: {e}\n{printed}"));
        let lowered_b = resolve(&reparsed).unwrap();
        assert_eq!(lowered_a.spec, lowered_b.spec, "seed {seed}");
        assert_eq!(lowered_a.properties, lowered_b.properties, "seed {seed}");
    }
}

/// A block of seeds through the *full* oracle matrix: every arm must
/// agree with the baseline bit for bit.
#[test]
fn full_matrix_agrees_on_seed_block() {
    let config = FuzzConfig::default();
    for seed in 0..8u64 {
        match run_seed(seed, &config) {
            Ok(None) => {}
            Ok(Some(d)) => panic!(
                "seed {seed}: arm `{}` diverged: {}\n--- spec ---\n{}",
                d.arm.name(),
                d.detail,
                d.source
            ),
            Err(e) => panic!("seed {seed}: harness error: {e}"),
        }
    }
}

/// The sweep driver reports exactly how many seeds ran — the CI smoke
/// job greps this count, so an accidentally-empty range cannot pass.
#[test]
fn sweep_reports_seed_count() {
    let config = FuzzConfig {
        // One cheap arm keeps this wall-clock-friendly; the full-matrix
        // block above covers every arm.
        arms: vec![OracleArm::IndexOff],
        ..FuzzConfig::default()
    };
    let mut lines = Vec::new();
    let outcome = run_sweep(8..24, &config, false, &mut |line| {
        lines.push(line.to_owned())
    });
    assert_eq!(outcome.seeds_run, 16);
    assert!(
        outcome.clean(),
        "sweep found problems: errors {:?}, divergences {:?}",
        outcome.errors,
        lines
    );
}

/// Deliberately corrupting one oracle arm must (a) be caught as a
/// divergence and (b) shrink to a minimized spec that still compiles
/// and still exhibits the divergence — the acceptance criterion for the
/// shrinker.
#[test]
fn corrupted_arm_is_caught_and_shrunk() {
    let config = FuzzConfig {
        arms: vec![OracleArm::Threads],
        corrupt: Some(OracleArm::Threads),
        ..FuzzConfig::default()
    };
    let seed = 3u64;
    let file = gen_spec_file(seed);
    let divergence = check_spec_file(&file, seed, &config)
        .expect("harness must run")
        .expect("corrupted arm must diverge");
    assert_eq!(divergence.arm, OracleArm::Threads);

    let (minimized, final_divergence) = shrink_divergence(&file, &divergence, &config);
    let minimized_text = format_spec(&minimized);
    let original_text = format_spec(&file);
    assert!(
        minimized_text.len() <= original_text.len(),
        "shrinking must not grow the spec"
    );
    // The minimized repro still compiles and still diverges.
    compile(&minimized_text).expect("minimized repro must stay a valid spec");
    assert_eq!(final_divergence.arm, OracleArm::Threads);
    let again = check_spec_file(&minimized, seed, &config).unwrap();
    assert!(again.is_some(), "minimized repro must still diverge");
    // The shrinker must have actually removed something: the corruption
    // fires on any spec with one property, so the local minimum is far
    // below the generated size.
    assert!(
        minimized_text.len() < original_text.len(),
        "expected a strictly smaller repro\n--- original ---\n{original_text}\n--- minimized ---\n{minimized_text}"
    );
}
