//! Partial isomorphism types (paper Definition 17).
//!
//! A partial isomorphism type is an undirected graph over the expression
//! universe whose edges are labelled `=` or `≠`, such that
//!
//! 1. the equivalence induced by the `=`-edges is closed under foreign-key
//!    navigation (if `e ∼ e'` and both `e.A` and `e'.A` exist, then
//!    `e.A ∼ e'.A`), and
//! 2. `≠`-edges are propagated to whole equivalence classes and never
//!    contradict the `=`-edges.
//!
//! [`Pit`] stores the *canonically closed* edge set (every implied pair is
//! materialised), which makes the implication test of Definition 22
//! (`τ ⊨ τ'` iff `τ' ⊆ τ`) a plain sorted-subset test and gives types a
//! canonical hashable form.  [`PitBuilder`] is the working representation: a
//! union-find plus disequality constraints with congruence closure and
//! consistency checking (conflicting constants, incompatible ID types,
//! `≠` inside a class).

use crate::expr::{ExprId, ExprSort, ExprUniverse};
use std::collections::{HashMap, HashSet};
use std::fmt;
use verifas_model::AttrId;

/// An edge of a partial isomorphism type: an (in)equality between two
/// expressions, encoded compactly for fast set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u64);

impl Edge {
    /// An `=` edge (order of endpoints is irrelevant).
    pub fn eq(a: ExprId, b: ExprId) -> Edge {
        Edge::encode(a, b, false)
    }

    /// A `≠` edge (order of endpoints is irrelevant).
    pub fn neq(a: ExprId, b: ExprId) -> Edge {
        Edge::encode(a, b, true)
    }

    fn encode(a: ExprId, b: ExprId, neq: bool) -> Edge {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Edge(((lo as u64) << 33) | ((hi as u64) << 1) | (neq as u64))
    }

    /// `true` iff this is a `≠` edge.
    pub fn is_neq(self) -> bool {
        self.0 & 1 == 1
    }

    /// The two endpoints (smaller id first).
    pub fn endpoints(self) -> (ExprId, ExprId) {
        (
            ((self.0 >> 33) & 0xFFFF_FFFF) as ExprId,
            ((self.0 >> 1) & 0xFFFF_FFFF) as ExprId,
        )
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.endpoints();
        write!(f, "e{a} {} e{b}", if self.is_neq() { "≠" } else { "=" })
    }
}

/// A canonically closed, consistent partial isomorphism type.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pit {
    edges: Vec<Edge>,
}

impl Pit {
    /// The empty type (no constraints).
    pub fn empty() -> Pit {
        Pit::default()
    }

    /// The (sorted) closed edge set.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges of the closed representation.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the type imposes no constraint.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Implication of Definition 22: `self ⊨ weaker` iff every edge of
    /// `weaker` is an edge of `self` (both are closed, so syntactic subset
    /// coincides with semantic implication).
    pub fn implies(&self, weaker: &Pit) -> bool {
        // Sorted-merge subset test.
        let mut i = 0;
        for edge in &weaker.edges {
            while i < self.edges.len() && self.edges[i] < *edge {
                i += 1;
            }
            if i >= self.edges.len() || self.edges[i] != *edge {
                return false;
            }
            i += 1;
        }
        true
    }

    /// `true` iff the edge belongs to the type.
    pub fn contains(&self, edge: Edge) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// Projection: keep only the edges whose two endpoints satisfy the
    /// predicate (paper: "keeps only the expressions headed by variables in
    /// ȳ and their connections").  The result is still closed and
    /// consistent.
    pub fn project(&self, keep: impl Fn(ExprId) -> bool) -> Pit {
        Pit {
            edges: self
                .edges
                .iter()
                .copied()
                .filter(|e| {
                    let (a, b) = e.endpoints();
                    keep(a) && keep(b)
                })
                .collect(),
        }
    }

    /// Remove the given edges (used by the static-analysis optimisation of
    /// Section 3.7 to drop non-violating constraints).
    pub fn without_edges(&self, remove: &HashSet<Edge>) -> Pit {
        if remove.is_empty() {
            return self.clone();
        }
        Pit {
            edges: self
                .edges
                .iter()
                .copied()
                .filter(|e| !remove.contains(e))
                .collect(),
        }
    }

    /// Rename expressions through `map` (expressions without a mapping are
    /// dropped), re-closing and re-checking consistency.  Used when moving
    /// a tuple type between task variables and artifact-relation slots.
    pub fn rename(&self, universe: &ExprUniverse, map: &HashMap<ExprId, ExprId>) -> Option<Pit> {
        let mut builder = PitBuilder::new(universe);
        for edge in &self.edges {
            let (a, b) = edge.endpoints();
            let (Some(&a2), Some(&b2)) = (map.get(&a), map.get(&b)) else {
                continue;
            };
            if edge.is_neq() {
                builder.assert_neq(a2, b2);
            } else {
                builder.assert_eq(a2, b2);
            }
        }
        builder.finish()
    }

    /// Conjoin two types (union of constraints), re-closing; `None` when
    /// the conjunction is inconsistent.
    pub fn conjoin(&self, other: &Pit, universe: &ExprUniverse) -> Option<Pit> {
        let mut builder = PitBuilder::from_pit(universe, self);
        builder.merge_pit(other);
        builder.finish()
    }
}

/// Working representation of a partial isomorphism type under
/// construction: a union-find with congruence closure plus disequalities.
pub struct PitBuilder<'u> {
    universe: &'u ExprUniverse,
    parent: Vec<u32>,
    /// Per-representative navigation children (attr → child representative).
    class_children: HashMap<(u32, AttrId), ExprId>,
    /// Per-representative "strong" sort (ignores `null`).
    class_sort: HashMap<u32, ExprSort>,
    /// Per-representative constant member (a `DataConst` or `Null` expr).
    class_const: HashMap<u32, ExprId>,
    /// Asserted disequalities (by original expression ids).
    neqs: Vec<(ExprId, ExprId)>,
    inconsistent: bool,
}

impl<'u> PitBuilder<'u> {
    /// A builder with no constraints.
    pub fn new(universe: &'u ExprUniverse) -> Self {
        let n = universe.len();
        let mut class_children = HashMap::new();
        let mut class_sort = HashMap::new();
        let mut class_const = HashMap::new();
        for (id, expr) in universe.iter() {
            for (attr, child) in &expr.children {
                class_children.insert((id, *attr), *child);
            }
            match expr.sort {
                ExprSort::Null => {
                    class_const.insert(id, id);
                }
                ExprSort::DataConst => {
                    class_sort.insert(id, ExprSort::DataConst);
                    class_const.insert(id, id);
                }
                s => {
                    class_sort.insert(id, s);
                }
            }
        }
        PitBuilder {
            universe,
            parent: (0..n as u32).collect(),
            class_children,
            class_sort,
            class_const,
            neqs: Vec::new(),
            inconsistent: false,
        }
    }

    /// A builder pre-loaded with the constraints of an existing type.
    pub fn from_pit(universe: &'u ExprUniverse, pit: &Pit) -> Self {
        let mut b = PitBuilder::new(universe);
        b.merge_pit(pit);
        b
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sorts of two classes; marks the builder inconsistent on a
    /// type clash.
    fn merge_sorts(&mut self, keep: u32, drop: u32) {
        let sort_drop = self.class_sort.remove(&drop);
        match (self.class_sort.get(&keep).copied(), sort_drop) {
            (None, Some(s)) => {
                self.class_sort.insert(keep, s);
            }
            (Some(a), Some(b)) if !sorts_compatible(a, b) => {
                self.inconsistent = true;
            }
            (Some(a), Some(b)) => {
                self.class_sort.insert(keep, merge_sort(a, b));
            }
            _ => {}
        }
        let const_drop = self.class_const.remove(&drop);
        match (self.class_const.get(&keep).copied(), const_drop) {
            (None, Some(c)) => {
                self.class_const.insert(keep, c);
            }
            (Some(a), Some(b)) if a != b => {
                // Two distinct constant expressions (distinct constants, or
                // null vs a constant) in the same class.
                self.inconsistent = true;
            }
            _ => {}
        }
    }

    /// Assert `a = b`, with congruence closure.
    pub fn assert_eq(&mut self, a: ExprId, b: ExprId) {
        if self.inconsistent {
            return;
        }
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by arbitrary orientation (keep ra).
        self.parent[rb as usize] = ra;
        self.merge_sorts(ra, rb);
        if self.inconsistent {
            return;
        }
        // Congruence: merge navigation children attribute-wise.
        let mut drop_children: Vec<(AttrId, ExprId)> = self
            .class_children
            .iter()
            .filter(|((rep, _), _)| *rep == rb)
            .map(|((_, attr), child)| (*attr, *child))
            .collect();
        drop_children.sort_unstable();
        for (attr, child_b) in drop_children {
            self.class_children.remove(&(rb, attr));
            // The recursive merge below can union `ra`'s class under a
            // different root, so the surviving representative must be
            // re-resolved on every iteration.  Keying off the stale `ra`
            // would orphan child entries (and miss existing ones), leaving
            // the congruence closure incomplete in a way that depends on
            // the map's iteration order.
            let keep = self.find(ra);
            match self.class_children.get(&(keep, attr)).copied() {
                Some(child_a) => self.assert_eq(child_a, child_b),
                None => {
                    self.class_children.insert((keep, attr), child_b);
                }
            }
            if self.inconsistent {
                return;
            }
        }
    }

    /// Assert `a ≠ b`.
    pub fn assert_neq(&mut self, a: ExprId, b: ExprId) {
        if self.inconsistent {
            return;
        }
        self.neqs.push((a, b));
    }

    /// Add a single edge.
    pub fn assert_edge(&mut self, edge: Edge) {
        let (a, b) = edge.endpoints();
        if edge.is_neq() {
            self.assert_neq(a, b);
        } else {
            self.assert_eq(a, b);
        }
    }

    /// Add all the constraints of an existing type.
    pub fn merge_pit(&mut self, pit: &Pit) {
        for edge in pit.edges() {
            self.assert_edge(*edge);
        }
    }

    /// Finish: `None` if the accumulated constraints are inconsistent,
    /// otherwise the canonically closed type.
    pub fn finish(mut self) -> Option<Pit> {
        if self.inconsistent {
            return None;
        }
        // Disequalities must separate distinct classes.
        for i in 0..self.neqs.len() {
            let (a, b) = self.neqs[i];
            if self.find(a) == self.find(b) {
                return None;
            }
        }
        let n = self.universe.len() as u32;
        // Group expressions by representative.
        let mut classes: HashMap<u32, Vec<ExprId>> = HashMap::new();
        for x in 0..n {
            classes.entry(self.find(x)).or_default().push(x);
        }
        let mut edges: Vec<Edge> = Vec::new();
        for members in classes.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    edges.push(Edge::eq(members[i], members[j]));
                }
            }
        }
        // Propagate each asserted disequality to the full classes.
        let mut neq_class_pairs: HashSet<(u32, u32)> = HashSet::new();
        for i in 0..self.neqs.len() {
            let (a, b) = self.neqs[i];
            let (ra, rb) = (self.find(a), self.find(b));
            let key = if ra < rb { (ra, rb) } else { (rb, ra) };
            neq_class_pairs.insert(key);
        }
        for (ra, rb) in neq_class_pairs {
            let (ca, cb) = (&classes[&ra], &classes[&rb]);
            for &a in ca {
                for &b in cb {
                    edges.push(Edge::neq(a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Some(Pit { edges })
    }

    /// `true` if an inconsistency has already been detected (the final
    /// verdict still requires [`PitBuilder::finish`], which also checks the
    /// disequalities).
    pub fn is_inconsistent(&self) -> bool {
        self.inconsistent
    }
}

/// Can two class sorts co-exist in one equivalence class?
///
/// Expressions of different domains (an ID of relation `R` and a data
/// value, or IDs of two different relations) *can* still be equal when both
/// are `null`, so such merges are not rejected — rejecting them would make
/// the symbolic search unsound the other way (dropping reachable states).
/// The only impossible combination is an ID-sorted expression equal to a
/// *non-null data constant*, which can never be `null`.
fn sorts_compatible(a: ExprSort, b: ExprSort) -> bool {
    use ExprSort::*;
    !matches!((a, b), (Id(_), DataConst) | (DataConst, Id(_)))
}

fn merge_sort(a: ExprSort, b: ExprSort) -> ExprSort {
    use ExprSort::*;
    match (a, b) {
        (DataConst, _) | (_, DataConst) => DataConst,
        (Id(r), _) | (_, Id(r)) => Id(r),
        (Null, x) | (x, Null) => x,
        _ => Data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DataValue, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, Term, VarId,
        VarRef,
    };

    /// Schema R(ID, A) with variables x, y, z of type R.ID — the setting of
    /// Example 18 of the paper — plus two constants.
    fn example18() -> (HasSpec, ExprUniverse) {
        let mut db = DatabaseSchema::new();
        let r = db.add_relation("R", vec![data("A")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let x = root.id_var("x", r);
        root.id_var("y", r);
        root.id_var("z", r);
        root.service_parts(
            "noop",
            Condition::True,
            Condition::neq(Term::var(x), Term::Null),
            vec![],
            None,
        );
        let spec = SpecBuilder::new("ex18", db, root.build()).build().unwrap();
        let consts = BTreeSet::from([DataValue::str("c1"), DataValue::str("c2")]);
        let u = ExprUniverse::build(&spec, spec.root(), &[], &consts);
        (spec, u)
    }

    fn var(u: &ExprUniverse, i: u32) -> ExprId {
        u.var_expr(VarRef::Task(VarId::new(i))).unwrap()
    }

    fn attr_of(u: &ExprUniverse, v: ExprId) -> ExprId {
        u.navigate(v, AttrId::new(0)).unwrap()
    }

    #[test]
    fn edge_encoding_is_symmetric_and_typed() {
        assert_eq!(Edge::eq(3, 5), Edge::eq(5, 3));
        assert_ne!(Edge::eq(3, 5), Edge::neq(3, 5));
        assert_eq!(Edge::eq(3, 5).endpoints(), (3, 5));
        assert!(Edge::neq(1, 2).is_neq());
        assert!(!Edge::eq(1, 2).is_neq());
    }

    #[test]
    fn key_dependency_congruence_is_enforced() {
        // Example 18: x = y forces x.A = y.A.
        let (_spec, u) = example18();
        let (x, y) = (var(&u, 0), var(&u, 1));
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        let pit = b.finish().unwrap();
        assert!(pit.contains(Edge::eq(x, y)));
        assert!(pit.contains(Edge::eq(attr_of(&u, x), attr_of(&u, y))));
        // z remains unconstrained.
        let z = var(&u, 2);
        assert!(!pit.contains(Edge::eq(attr_of(&u, x), attr_of(&u, z))));
    }

    #[test]
    fn inconsistent_types_are_rejected() {
        let (_spec, u) = example18();
        let (x, y, z) = (var(&u, 0), var(&u, 1), var(&u, 2));
        // x = y, y = z, x ≠ z is inconsistent.
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        b.assert_eq(y, z);
        b.assert_neq(x, z);
        assert!(b.finish().is_none());
        // Distinct constants cannot be merged.
        let c1 = u.const_expr(&DataValue::str("c1")).unwrap();
        let c2 = u.const_expr(&DataValue::str("c2")).unwrap();
        let mut b = PitBuilder::new(&u);
        b.assert_eq(c1, c2);
        assert!(b.finish().is_none());
        // A constant cannot equal null.
        let mut b = PitBuilder::new(&u);
        b.assert_eq(c1, u.null_expr());
        assert!(b.finish().is_none());
        // An ID variable cannot equal a data constant.
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, c1);
        assert!(b.finish().is_none());
        // ...but x.A (data-sorted) can.
        let mut b = PitBuilder::new(&u);
        b.assert_eq(attr_of(&u, x), c1);
        assert!(b.finish().is_some());
    }

    #[test]
    fn implication_is_subset_of_closed_edges() {
        let (_spec, u) = example18();
        let (x, y, z) = (var(&u, 0), var(&u, 1), var(&u, 2));
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        b.assert_neq(y, z);
        let strong = b.finish().unwrap();
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        let weak = b.finish().unwrap();
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&Pit::empty()));
        assert!(Pit::empty().implies(&Pit::empty()));
        // ≠ propagates to the whole classes: y ≠ z implies x ≠ z since x = y.
        assert!(strong.contains(Edge::neq(x, z)));
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let (_spec, u) = example18();
        let (x, y, z) = (var(&u, 0), var(&u, 1), var(&u, 2));
        let mut b1 = PitBuilder::new(&u);
        b1.assert_eq(x, y);
        b1.assert_eq(y, z);
        let p1 = b1.finish().unwrap();
        let mut b2 = PitBuilder::new(&u);
        b2.assert_eq(z, x);
        b2.assert_eq(x, y);
        let p2 = b2.finish().unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn projection_keeps_only_selected_heads() {
        let (_spec, u) = example18();
        let (x, y, z) = (var(&u, 0), var(&u, 1), var(&u, 2));
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        b.assert_neq(x, z);
        let pit = b.finish().unwrap();
        // Keep only expressions headed by y and z (and constants/null).
        let keep: Vec<ExprId> = u.headed_by(|h| {
            matches!(h, crate::expr::ExprHead::Var(VarRef::Task(v)) if v.index() >= 1)
                || matches!(
                    h,
                    crate::expr::ExprHead::Null | crate::expr::ExprHead::Const(_)
                )
        });
        let keep_set: std::collections::HashSet<ExprId> = keep.into_iter().collect();
        let projected = pit.project(|e| keep_set.contains(&e));
        assert!(!projected.contains(Edge::eq(x, y)));
        assert!(!projected.contains(Edge::neq(x, z)));
        // The propagated disequality between the kept variables survives
        // (x = y and x ≠ z imply y ≠ z, and both y and z are kept).
        assert!(projected.contains(Edge::neq(y, z)));
        assert_eq!(projected.edge_count(), 1);
    }

    #[test]
    fn conjoin_detects_conflicts() {
        let (_spec, u) = example18();
        let (x, y) = (var(&u, 0), var(&u, 1));
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        let eq = b.finish().unwrap();
        let mut b = PitBuilder::new(&u);
        b.assert_neq(x, y);
        let neq = b.finish().unwrap();
        assert!(eq.conjoin(&neq, &u).is_none());
        let mut b = PitBuilder::new(&u);
        b.assert_neq(x, var(&u, 2));
        let other = b.finish().unwrap();
        let combined = eq.conjoin(&other, &u).unwrap();
        assert!(combined.contains(Edge::eq(x, y)));
        assert!(combined.contains(Edge::neq(y, var(&u, 2))));
    }

    #[test]
    fn rename_moves_constraints_between_heads() {
        let (_spec, u) = example18();
        let (x, y) = (var(&u, 0), var(&u, 1));
        let c1 = u.const_expr(&DataValue::str("c1")).unwrap();
        let mut b = PitBuilder::new(&u);
        b.assert_eq(attr_of(&u, x), c1);
        let pit = b.finish().unwrap();
        // Rename x -> y (and x.A -> y.A); keep constants fixed.
        let mut map = HashMap::new();
        map.insert(x, y);
        map.insert(attr_of(&u, x), attr_of(&u, y));
        map.insert(c1, c1);
        map.insert(u.null_expr(), u.null_expr());
        let renamed = pit.rename(&u, &map).unwrap();
        assert!(renamed.contains(Edge::eq(attr_of(&u, y), c1)));
        assert!(!renamed.contains(Edge::eq(attr_of(&u, x), c1)));
    }

    #[test]
    fn without_edges_removes_exact_edges() {
        let (_spec, u) = example18();
        let (x, y) = (var(&u, 0), var(&u, 1));
        let mut b = PitBuilder::new(&u);
        b.assert_eq(x, y);
        let pit = b.finish().unwrap();
        let mut remove = HashSet::new();
        remove.insert(Edge::eq(x, y));
        let cleaned = pit.without_edges(&remove);
        assert!(!cleaned.contains(Edge::eq(x, y)));
        // The congruence-derived edge survives.
        assert!(cleaned.contains(Edge::eq(attr_of(&u, x), attr_of(&u, y))));
    }
}
