//! A small, self-contained Vector Addition System with States (VASS) and
//! the classic Karp–Miller coverability algorithm (Section 3.3).
//!
//! The full verifier works on a VASS whose states are partial symbolic
//! instances; this module provides the textbook construction over plain
//! integer-labelled states, used to test the acceleration/coverability
//! machinery in isolation and as a micro-benchmark target.

use std::collections::VecDeque;

/// Counter value for `ω`.
pub const OMEGA: i64 = i64::MAX;

/// A VASS transition: from a control state to another, adding `delta` to
/// the counters (which must stay non-negative).
#[derive(Debug, Clone)]
pub struct VassTransition {
    /// Source control state.
    pub from: usize,
    /// Target control state.
    pub to: usize,
    /// Counter update.
    pub delta: Vec<i64>,
}

/// A Vector Addition System with States.
#[derive(Debug, Clone)]
pub struct Vass {
    /// Number of control states.
    pub states: usize,
    /// Number of counters.
    pub dimensions: usize,
    /// Transitions.
    pub transitions: Vec<VassTransition>,
}

/// A node of the Karp–Miller tree: a control state plus (possibly
/// ω-valued) counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KmNode {
    /// Control state.
    pub state: usize,
    /// Counter values (`OMEGA` = ω).
    pub counters: Vec<i64>,
}

impl KmNode {
    fn leq(&self, other: &KmNode) -> bool {
        self.state == other.state
            && self
                .counters
                .iter()
                .zip(&other.counters)
                .all(|(a, b)| *b == OMEGA || (*a != OMEGA && a <= b))
    }
}

impl Vass {
    /// Create a VASS.
    pub fn new(states: usize, dimensions: usize) -> Self {
        Vass {
            states,
            dimensions,
            transitions: Vec::new(),
        }
    }

    /// Add a transition.
    pub fn add_transition(&mut self, from: usize, to: usize, delta: Vec<i64>) {
        assert_eq!(delta.len(), self.dimensions);
        self.transitions.push(VassTransition { from, to, delta });
    }

    fn successors(&self, node: &KmNode) -> Vec<KmNode> {
        let mut out = Vec::new();
        for t in self.transitions.iter().filter(|t| t.from == node.state) {
            let mut counters = node.counters.clone();
            let mut ok = true;
            for (c, d) in counters.iter_mut().zip(&t.delta) {
                if *c == OMEGA {
                    continue;
                }
                *c += d;
                if *c < 0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.push(KmNode {
                    state: t.to,
                    counters,
                });
            }
        }
        out
    }

    /// The classic Karp–Miller coverability set from an initial
    /// configuration: a finite set of (possibly ω-valued) nodes such that
    /// every reachable configuration is covered by one of them.
    pub fn coverability_set(&self, initial: KmNode) -> Vec<KmNode> {
        let mut tree: Vec<(KmNode, Option<usize>)> = vec![(initial.clone(), None)];
        let mut worklist: VecDeque<usize> = VecDeque::from([0]);
        while let Some(idx) = worklist.pop_front() {
            let node = tree[idx].0.clone();
            for mut succ in self.successors(&node) {
                // Accelerate against the ancestors.
                let mut ancestor = Some(idx);
                while let Some(a) = ancestor {
                    let anc = &tree[a].0;
                    if anc.state == succ.state
                        && anc
                            .counters
                            .iter()
                            .zip(&succ.counters)
                            .all(|(x, y)| *y == OMEGA || (*x != OMEGA && x <= y) || *x == *y)
                        && anc.leq(&succ)
                    {
                        for (i, (x, y)) in
                            anc.counters.iter().zip(succ.counters.clone()).enumerate()
                        {
                            if *x != OMEGA && y != OMEGA && *x < y {
                                succ.counters[i] = OMEGA;
                            }
                        }
                    }
                    ancestor = tree[a].1;
                }
                // Prune if covered by an existing node.
                if tree.iter().any(|(n, _)| succ.leq(n)) {
                    continue;
                }
                tree.push((succ, Some(idx)));
                worklist.push_back(tree.len() - 1);
            }
        }
        tree.into_iter().map(|(n, _)| n).collect()
    }

    /// Coverability: can a configuration ≥ `target` be reached from
    /// `initial`?
    pub fn coverable(&self, initial: KmNode, target: &KmNode) -> bool {
        self.coverability_set(initial).iter().any(|n| target.leq(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A producer/consumer net: state 0 loops producing into counter 0; a
    /// transition moves to state 1 and consuming transitions decrement.
    fn producer_consumer() -> Vass {
        let mut v = Vass::new(2, 1);
        v.add_transition(0, 0, vec![1]);
        v.add_transition(0, 1, vec![0]);
        v.add_transition(1, 1, vec![-1]);
        v
    }

    #[test]
    fn unbounded_counter_accelerates_to_omega() {
        let v = producer_consumer();
        let set = v.coverability_set(KmNode {
            state: 0,
            counters: vec![0],
        });
        assert!(set.iter().any(|n| n.state == 0 && n.counters[0] == OMEGA));
        // The set is finite and small.
        assert!(set.len() <= 6);
    }

    #[test]
    fn coverability_answers() {
        let v = producer_consumer();
        let init = KmNode {
            state: 0,
            counters: vec![0],
        };
        // Any finite amount is coverable in state 1.
        assert!(v.coverable(
            init.clone(),
            &KmNode {
                state: 1,
                counters: vec![5],
            }
        ));
        assert!(v.coverable(
            init.clone(),
            &KmNode {
                state: 0,
                counters: vec![100],
            }
        ));
        // A bounded net: single token moved around, never two.
        let mut bounded = Vass::new(2, 1);
        bounded.add_transition(0, 1, vec![1]);
        bounded.add_transition(1, 0, vec![-1]);
        assert!(!bounded.coverable(
            KmNode {
                state: 0,
                counters: vec![0],
            },
            &KmNode {
                state: 1,
                counters: vec![2],
            }
        ));
    }

    #[test]
    fn negative_counters_are_not_reachable() {
        let mut v = Vass::new(1, 1);
        v.add_transition(0, 0, vec![-1]);
        let set = v.coverability_set(KmNode {
            state: 0,
            counters: vec![0],
        });
        assert_eq!(set.len(), 1);
    }
}
