//! Sharded scheduling of batch verification.
//!
//! [`crate::engine::Engine::check_all`] used to hand whole properties to a
//! flat thread pool: with `C` cores and `N` properties, up to `C`
//! *sequential* searches ran side by side, and through the tail of a batch
//! most cores idled while one straggler search ran on a single core.  The
//! [`Scheduler`] shards the machine between *batch width* and *per-search
//! depth* instead:
//!
//! * while properties are still queued, every running search gets a budget
//!   of one thread (width first: `C` properties in flight beat one
//!   `C`-thread search, which never scales perfectly),
//! * once the queue drains, the scheduler splits the core budget across
//!   the searches still running *weighted by each search's live frontier
//!   width* (reported through [`ThreadBudget::report_frontier`] at round
//!   boundaries — a search cannot use more workers than it has frontier
//!   nodes to plan, so wide stragglers absorb the cores narrow ones would
//!   waste), and every time one finishes the freed cores are reassigned
//!   to the survivors — the last straggler ends up with all `C` cores on
//!   its one search.
//!
//! Budgets are delivered through [`ThreadBudget`] handles: a search polls
//! its handle at *round boundaries* (see the plan/apply rounds of
//! [`crate::search`]), which is safe because a round is bit-identical for
//! every thread count — growing or shrinking the pool between rounds
//! cannot change the tree, the statistics, the verdict or the witness.
//! The repeated-reachability edge construction polls the same handle at
//! its wave boundaries.
//!
//! Every budget handle records its occupancy timeline (when it was
//! resized, and to how many threads); the scheduler folds the timeline
//! into a per-property [`ScheduleStats`] block that
//! [`crate::report::VerificationReport`] serializes (schema v4) so a
//! verification service can see exactly how the machine was shared over
//! the life of a batch.
//!
//! The total core budget itself is dynamic: a [`SchedulerHandle`]
//! attached to a running batch (see
//! [`crate::engine::BatchBuilder::scheduler_handle`]) lets an *outer*
//! arbiter — a multi-tenant verification server sharing one machine
//! between many concurrent batches — grow or shrink the batch's whole
//! budget mid-run.  [`SchedulerHandle::set_total`] re-splits the new
//! total over the running searches immediately, and each search picks its
//! resized [`ThreadBudget`] up at its next round boundary; because rounds
//! are bit-identical for any worker count, reclaiming cores from a long
//! batch search never changes its verdict.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How [`crate::engine::Engine::check_all`] spreads a batch over the
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The pre-scheduler behaviour: a flat pool of `batch_threads` workers,
    /// each running whole properties with the per-request
    /// `VerifierOptions::search_threads` setting (1 by default).  Cores
    /// freed by finished properties are *not* reassigned.
    Flat,
    /// Adaptive core partitioning: wide while properties are queued, then
    /// freed cores are reassigned to still-running searches so the last
    /// stragglers run with the whole budget.  The per-request
    /// `search_threads` setting is ignored — the scheduler owns the
    /// budget.  Results are bit-identical to [`SchedulePolicy::Flat`] per
    /// property (verdict, witness, search statistics).
    #[default]
    Sharded,
}

impl SchedulePolicy {
    /// The policy's serialization name (`"flat"` / `"sharded"`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Flat => "flat",
            SchedulePolicy::Sharded => "sharded",
        }
    }

    /// Parse a serialization name produced by [`SchedulePolicy::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "flat" => Some(SchedulePolicy::Flat),
            "sharded" => Some(SchedulePolicy::Sharded),
            _ => None,
        }
    }
}

/// Batch-level scheduling knobs of one `check_all` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// The core budget shared by the whole batch (0 = one per available
    /// core).  Under [`SchedulePolicy::Sharded`] this bounds the *sum* of
    /// all running searches' thread budgets; under
    /// [`SchedulePolicy::Flat`] it is the width of the flat pool.
    pub batch_threads: usize,
    /// How the budget is spread over the batch.
    pub schedule: SchedulePolicy,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            batch_threads: 0,
            schedule: SchedulePolicy::Sharded,
        }
    }
}

impl BatchOptions {
    /// The flat-pool configuration (the pre-scheduler `check_all`
    /// behaviour).
    pub fn flat() -> Self {
        BatchOptions {
            schedule: SchedulePolicy::Flat,
            ..BatchOptions::default()
        }
    }

    /// The core budget after resolving the automatic setting.
    pub fn resolved_threads(&self) -> usize {
        match self.batch_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// One point of a core-occupancy timeline: from `at_ms` (milliseconds
/// since the batch started) on, the search ran under a budget of
/// `threads` worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Milliseconds since the batch started.
    pub at_ms: u64,
    /// The thread budget from this point on.
    pub threads: usize,
}

/// A dynamic thread budget, shared between the scheduler (which resizes
/// it) and one running search (which polls it at round boundaries).
///
/// All clones share one value; [`ThreadBudget::current`] never returns 0.
/// Every effective resize is recorded with a timestamp so the scheduler
/// can report the search's core-occupancy timeline.
///
/// The budget also carries a *frontier hint* flowing the other way: the
/// search reports its live frontier width
/// ([`ThreadBudget::report_frontier`]) at the same round boundaries where
/// it polls the budget, and the scheduler weights the post-drain straggler
/// split by those widths — a search whose frontier is 4 nodes wide cannot
/// use 12 cores next round, so they go to the search that can.  The hint
/// is advisory scheduling input only; budgets never change results.
#[derive(Debug, Clone)]
pub struct ThreadBudget {
    shares: Arc<AtomicUsize>,
    frontier: Arc<AtomicUsize>,
    timeline: Arc<Mutex<Vec<OccupancySample>>>,
    epoch: Instant,
}

impl ThreadBudget {
    fn with_epoch(threads: usize, epoch: Instant) -> Self {
        let threads = threads.max(1);
        ThreadBudget {
            shares: Arc::new(AtomicUsize::new(threads)),
            frontier: Arc::new(AtomicUsize::new(0)),
            timeline: Arc::new(Mutex::new(vec![OccupancySample {
                at_ms: elapsed_ms(epoch),
                threads,
            }])),
            epoch,
        }
    }

    /// A budget pinned to `threads` (0 and 1 both mean sequential); useful
    /// for driving [`crate::search::KarpMillerSearch`] outside a batch.
    pub fn fixed(threads: usize) -> Self {
        ThreadBudget::with_epoch(threads, Instant::now())
    }

    /// The current budget (at least 1).  Searches poll this at round
    /// boundaries; the round then runs with that many workers.
    pub fn current(&self) -> usize {
        self.shares.load(Ordering::Relaxed).max(1)
    }

    /// Resize the budget (clamped to at least 1).  Running searches pick
    /// the new value up at their next round boundary.  No-op resizes are
    /// not recorded in the timeline.
    pub fn set(&self, threads: usize) {
        let threads = threads.max(1);
        // Swap under the timeline lock: concurrent setters must record
        // their samples in the order the swaps land, or the timeline's
        // last entry could disagree with `current()`.
        let mut timeline = lock_ignoring_poison(&self.timeline);
        if self.shares.swap(threads, Ordering::Relaxed) != threads {
            timeline.push(OccupancySample {
                at_ms: elapsed_ms(self.epoch),
                threads,
            });
        }
    }

    /// The recorded occupancy timeline (always starts with the initial
    /// budget).
    pub fn timeline(&self) -> Vec<OccupancySample> {
        lock_ignoring_poison(&self.timeline).clone()
    }

    /// Report the search's live frontier width (how many nodes the next
    /// round can plan in parallel).  Called by the search at round
    /// boundaries and by the repeated-reachability edge construction at
    /// wave boundaries; the scheduler reads it when it re-splits the core
    /// budget over the stragglers.
    pub fn report_frontier(&self, width: usize) {
        self.frontier.store(width, Ordering::Relaxed);
    }

    /// The last reported frontier width (0 until the search reports one).
    pub fn frontier_hint(&self) -> usize {
        self.frontier.load(Ordering::Relaxed)
    }
}

/// How one property's verification was scheduled within its batch: the
/// policy and resolved core budget of the batch, when the property
/// started and finished (milliseconds since the batch started) and its
/// core-occupancy timeline.  Scheduling observability only — like
/// [`crate::search::WorkerStats`], none of it affects the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// The batch's scheduling policy.
    pub policy: SchedulePolicy,
    /// The batch's resolved core budget.
    pub batch_threads: usize,
    /// This property's index within the batch.
    pub property_index: usize,
    /// When this property's verification started, in milliseconds since
    /// the batch started.
    pub started_ms: u64,
    /// When it finished, in milliseconds since the batch started.
    pub finished_ms: u64,
    /// The core-occupancy timeline ([`SchedulePolicy::Sharded`] only;
    /// empty under [`SchedulePolicy::Flat`], where the budget is the
    /// per-request `search_threads` for the whole run).
    pub occupancy: Vec<OccupancySample>,
}

/// One claimed job of a running batch: its index, and (under
/// [`SchedulePolicy::Sharded`]) the live [`ThreadBudget`] the scheduler
/// resizes while the job runs.
pub struct JobHandle {
    index: usize,
    started_ms: u64,
    budget: Option<ThreadBudget>,
}

impl JobHandle {
    /// The job's index within the batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The job's dynamic thread budget (None under
    /// [`SchedulePolicy::Flat`], where the per-request configuration
    /// rules).
    pub fn budget(&self) -> Option<&ThreadBudget> {
        self.budget.as_ref()
    }
}

/// Membership of the running set, guarded by the scheduler's mutex: how
/// many jobs are still queued, and the budgets of the jobs in flight (in
/// start order, so leftover cores go to the longest-running search —
/// deterministically, for a deterministic completion order).
struct ShardState {
    pending: usize,
    running: Vec<(usize, ThreadBudget)>,
}

/// The shared state of one scheduler, reachable both from the batch's own
/// worker threads (through [`Scheduler`]) and from an outer arbiter
/// (through an attached [`SchedulerHandle`]).
struct SchedulerInner {
    /// The *live* total core budget.  [`SchedulerHandle::set_total`]
    /// resizes it mid-run; the initial value is the resolved
    /// [`BatchOptions::batch_threads`].
    threads: AtomicUsize,
    policy: SchedulePolicy,
    epoch: Instant,
    state: Mutex<ShardState>,
}

impl SchedulerInner {
    /// Re-split the core budget over the running set: width first (budget
    /// 1 each while jobs are still queued — every queued job will get a
    /// core sooner than a deep search could use it), then a split weighted
    /// by each search's live frontier width (a search can use at most one
    /// worker per frontier node next round, so wide stragglers absorb the
    /// cores narrow ones would waste).  Searches that have not reported a
    /// frontier yet weigh 1, which reduces to the previous even split with
    /// the remainder going to the longest-running searches.
    fn rebalance(&self, state: &mut ShardState) {
        if self.policy == SchedulePolicy::Flat || state.running.is_empty() {
            return;
        }
        if state.pending > 0 {
            for (_, budget) in &state.running {
                budget.set(1);
            }
            return;
        }
        let total = self.threads.load(Ordering::Relaxed).max(1);
        let weights: Vec<u64> = state
            .running
            .iter()
            .map(|(_, budget)| budget.frontier_hint().max(1) as u64)
            .collect();
        for (share, (_, budget)) in weighted_split(total, &weights)
            .into_iter()
            .zip(&state.running)
        {
            budget.set(share);
        }
    }
}

/// A cloneable remote control over one batch's *total* core budget,
/// connecting an outer arbiter (a verification server sharing one machine
/// between concurrent requests) to a running [`Scheduler`].
///
/// The handle starts detached; [`Scheduler::attach`] (or
/// [`crate::engine::BatchBuilder::scheduler_handle`]) wires it to a batch,
/// and the batch detaches it again when it finishes.  All clones share the
/// attachment.  Resizing a detached handle is a recorded no-op, so an
/// arbiter can keep resizing without racing request completion.
#[derive(Clone, Default)]
pub struct SchedulerHandle {
    slot: Arc<Mutex<Option<Arc<SchedulerInner>>>>,
}

impl SchedulerHandle {
    /// A fresh, detached handle.
    pub fn new() -> Self {
        SchedulerHandle::default()
    }

    /// Resize the attached batch's total core budget (clamped to at
    /// least one) and re-split it over the batch's running searches
    /// immediately; each search adopts its resized share at its next
    /// round boundary.  Returns `false` (and does nothing) when no
    /// batch is attached.
    ///
    /// While the batch still has queued properties every running search
    /// keeps a floor budget of one thread (width-first scheduling), so the
    /// sum of per-search budgets can transiently exceed a shrunken total
    /// by at most one thread per running search — searches never block,
    /// they only narrow.
    pub fn set_total(&self, threads: usize) -> bool {
        let slot = lock_ignoring_poison(&self.slot);
        let Some(inner) = slot.as_ref() else {
            return false;
        };
        let mut state = lock_ignoring_poison(&inner.state);
        inner.threads.store(threads.max(1), Ordering::Relaxed);
        inner.rebalance(&mut state);
        true
    }

    /// The attached batch's live total core budget (`None` while
    /// detached).
    pub fn total(&self) -> Option<usize> {
        lock_ignoring_poison(&self.slot)
            .as_ref()
            .map(|inner| inner.threads.load(Ordering::Relaxed).max(1))
    }

    fn attach(&self, inner: &Arc<SchedulerInner>) {
        *lock_ignoring_poison(&self.slot) = Some(Arc::clone(inner));
    }

    fn detach(&self) {
        *lock_ignoring_poison(&self.slot) = None;
    }
}

impl std::fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerHandle")
            .field("total", &self.total())
            .finish()
    }
}

/// The batch work scheduler (see the module docs).
///
/// [`Scheduler::run`] executes one closure invocation per job over
/// `min(budget, jobs)` worker threads; each invocation receives a
/// [`JobHandle`] whose [`ThreadBudget`] the scheduler resizes as the batch
/// drains.  The scheduler is policy-agnostic plumbing: it neither knows
/// nor cares that the jobs are verifications.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    /// The budget resolved at construction — recorded in every job's
    /// [`ScheduleStats`] even when a [`SchedulerHandle`] resizes the live
    /// total later.
    initial_threads: usize,
    jobs: usize,
    /// Handles attached to this batch, detached again when `run` returns.
    attached: Vec<SchedulerHandle>,
}

impl Scheduler {
    /// A scheduler for `jobs` jobs under the given batch options.
    pub fn new(options: BatchOptions, jobs: usize) -> Self {
        let threads = options.resolved_threads();
        Scheduler {
            inner: Arc::new(SchedulerInner {
                threads: AtomicUsize::new(threads),
                policy: options.schedule,
                epoch: Instant::now(),
                state: Mutex::new(ShardState {
                    pending: jobs,
                    running: Vec::new(),
                }),
            }),
            initial_threads: threads,
            jobs,
            attached: Vec::new(),
        }
    }

    /// The resolved core budget (as of construction; a
    /// [`SchedulerHandle`] may resize the live total while the batch
    /// runs).
    pub fn threads(&self) -> usize {
        self.initial_threads
    }

    /// Attach a [`SchedulerHandle`] to this batch: until `run` returns,
    /// [`SchedulerHandle::set_total`] resizes this batch's total core
    /// budget.
    pub fn attach(&mut self, handle: &SchedulerHandle) {
        handle.attach(&self.inner);
        self.attached.push(handle.clone());
    }

    /// Run the scheduler's jobs to completion and return one
    /// `(result, stats)` pair per job, in job order.  A slot is `None`
    /// only if the job's closure panicked (the panic is contained;
    /// remaining jobs still run).  Consumes the scheduler: the job count
    /// and the width-first pending accounting were fixed at
    /// [`Scheduler::new`], and a second run would start from a drained
    /// queue.
    pub fn run<T, F>(self, run: F) -> Vec<Option<(T, ScheduleStats)>>
    where
        T: Send,
        F: Fn(usize, &JobHandle) -> T + Sync,
    {
        let jobs = self.jobs;
        let workers = self.initial_threads.min(jobs).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(T, ScheduleStats)>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs {
                        break;
                    }
                    let handle = self.start_job(index);
                    // Contain a panicking job: the budget it held must be
                    // returned to the pool either way, and one bad job
                    // must not strand the rest of the batch.
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| run(index, &handle)));
                    let stats = self.finish_job(&handle);
                    if let Ok(result) = result {
                        *lock_ignoring_poison(&slots[index]) = Some((result, stats));
                    }
                });
            }
        });
        // The batch is over: outer arbiters must stop resizing it.
        for handle in &self.attached {
            handle.detach();
        }
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    }

    /// Claim job `index`: register it in the running set and rebalance.
    fn start_job(&self, index: usize) -> JobHandle {
        let started_ms = elapsed_ms(self.inner.epoch);
        let budget = match self.inner.policy {
            SchedulePolicy::Flat => None,
            SchedulePolicy::Sharded => Some(ThreadBudget::with_epoch(1, self.inner.epoch)),
        };
        let mut state = lock_ignoring_poison(&self.inner.state);
        state.pending = state.pending.saturating_sub(1);
        if let Some(budget) = &budget {
            state.running.push((index, budget.clone()));
        }
        self.inner.rebalance(&mut state);
        JobHandle {
            index,
            started_ms,
            budget,
        }
    }

    /// Retire a finished job: hand its cores to the survivors and build
    /// its [`ScheduleStats`].
    fn finish_job(&self, handle: &JobHandle) -> ScheduleStats {
        if handle.budget.is_some() {
            let mut state = lock_ignoring_poison(&self.inner.state);
            state.running.retain(|(index, _)| *index != handle.index);
            self.inner.rebalance(&mut state);
        }
        ScheduleStats {
            policy: self.inner.policy,
            batch_threads: self.initial_threads,
            property_index: handle.index,
            started_ms: handle.started_ms,
            finished_ms: elapsed_ms(self.inner.epoch),
            occupancy: handle
                .budget
                .as_ref()
                .map(ThreadBudget::timeline)
                .unwrap_or_default(),
        }
    }
}

/// Apportion `total` cores over `weights` (all ≥ 1): every slot gets at
/// least one core, the rest follow the weights by the largest-remainder
/// method, ties broken towards earlier slots (the longest-running
/// searches).  The result always sums to `max(total, len)` — when there
/// are more slots than cores every slot still gets its floor of one, as
/// before (budgets are advisory and [`ThreadBudget::set`] clamps to 1
/// anyway).  With equal weights this is exactly the even split with the
/// remainder going to the earliest slots.
fn weighted_split(total: usize, weights: &[u64]) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    if total <= n {
        return vec![1; n];
    }
    let sum: u64 = weights.iter().sum();
    let mut shares: Vec<usize> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for &w in weights {
        let share = (((total as u64 * w) / sum) as usize).max(1);
        shares.push(share);
        assigned += share;
    }
    // Slots ordered by descending fractional remainder (earliest slot
    // first on ties).  Leftover cores are handed out one per slot in this
    // cyclic order; when the `max(1)` floors overshot the budget, slots
    // give cores back from the other end of the order (never below 1).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse((total as u64 * weights[i]) % sum), i));
    let mut cursor = 0usize;
    while assigned < total {
        shares[order[cursor % n]] += 1;
        assigned += 1;
        cursor += 1;
    }
    while assigned > total {
        let Some(&slot) = order.iter().rev().find(|&&i| shares[i] > 1) else {
            break;
        };
        shares[slot] -= 1;
        assigned -= 1;
    }
    shares
}

fn elapsed_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

/// Lock a mutex, recovering the guard when a previous holder panicked
/// (the protected data is only mutated through panic-free paths).
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(batch_threads: usize) -> BatchOptions {
        BatchOptions {
            batch_threads,
            schedule: SchedulePolicy::Sharded,
        }
    }

    #[test]
    fn budgets_clamp_to_at_least_one_thread() {
        let budget = ThreadBudget::fixed(0);
        assert_eq!(budget.current(), 1);
        budget.set(0);
        assert_eq!(budget.current(), 1);
    }

    #[test]
    fn budget_timeline_records_only_effective_resizes() {
        let budget = ThreadBudget::fixed(1);
        budget.set(1); // no-op
        budget.set(2);
        budget.set(2); // no-op
        budget.set(3);
        let threads: Vec<usize> = budget.timeline().iter().map(|s| s.threads).collect();
        assert_eq!(threads, vec![1, 2, 3]);
    }

    #[test]
    fn clones_share_one_budget() {
        let budget = ThreadBudget::fixed(1);
        let clone = budget.clone();
        budget.set(7);
        assert_eq!(clone.current(), 7);
        assert_eq!(clone.timeline(), budget.timeline());
    }

    #[test]
    fn a_lone_sharded_job_gets_the_whole_core_budget() {
        let scheduler = Scheduler::new(sharded(4), 1);
        let results = scheduler.run(|_, handle| handle.budget().unwrap().current());
        let (threads, stats) = results.into_iter().next().unwrap().unwrap();
        assert_eq!(threads, 4);
        assert_eq!(stats.policy, SchedulePolicy::Sharded);
        assert_eq!(stats.batch_threads, 4);
        assert_eq!(stats.property_index, 0);
        assert_eq!(stats.occupancy.last().unwrap().threads, 4);
        assert!(stats.finished_ms >= stats.started_ms);
    }

    #[test]
    fn a_sequential_budget_runs_jobs_in_order_with_one_thread_each() {
        let scheduler = Scheduler::new(sharded(1), 3);
        let results = scheduler.run(|index, handle| {
            assert_eq!(handle.index(), index);
            handle.budget().unwrap().current()
        });
        let results: Vec<_> = results.into_iter().map(Option::unwrap).collect();
        assert!(results.iter().all(|(threads, _)| *threads == 1));
        // One worker claims jobs in order, so starts are monotone.
        assert!(results
            .windows(2)
            .all(|w| w[0].1.started_ms <= w[1].1.started_ms));
    }

    #[test]
    fn the_last_straggler_inherits_freed_cores() {
        // One worker (budget 4 but a single-job queue at a time is forced
        // by claiming order): drive the membership transitions directly.
        let scheduler = Scheduler::new(sharded(4), 2);
        let first = scheduler.start_job(0);
        // Job 1 still pending: width first.
        assert_eq!(first.budget().unwrap().current(), 1);
        let second = scheduler.start_job(1);
        // Queue drained, two running: 2 cores each.
        assert_eq!(first.budget().unwrap().current(), 2);
        assert_eq!(second.budget().unwrap().current(), 2);
        let stats = scheduler.finish_job(&first);
        // The straggler inherits the whole budget.
        assert_eq!(second.budget().unwrap().current(), 4);
        assert_eq!(
            stats
                .occupancy
                .iter()
                .map(|s| s.threads)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        let stats = scheduler.finish_job(&second);
        assert_eq!(
            stats
                .occupancy
                .iter()
                .map(|s| s.threads)
                .collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn flat_jobs_carry_no_budget() {
        let scheduler = Scheduler::new(BatchOptions::flat(), 2);
        let results = scheduler.run(|_, handle| handle.budget().is_none());
        for slot in results {
            let (no_budget, stats) = slot.unwrap();
            assert!(no_budget);
            assert_eq!(stats.policy, SchedulePolicy::Flat);
            assert!(stats.occupancy.is_empty());
        }
    }

    #[test]
    fn a_panicking_job_leaves_an_empty_slot_and_the_rest_complete() {
        let scheduler = Scheduler::new(sharded(1), 3);
        let results = scheduler.run(|index, _| {
            if index == 1 {
                panic!("job 1 exploded");
            }
            index
        });
        assert_eq!(results[0].as_ref().map(|(v, _)| *v), Some(0));
        assert!(results[1].is_none());
        assert_eq!(results[2].as_ref().map(|(v, _)| *v), Some(2));
    }

    #[test]
    fn weighted_split_reduces_to_the_even_split_for_equal_weights() {
        assert_eq!(weighted_split(8, &[1, 1, 1]), vec![3, 3, 2]);
        assert_eq!(weighted_split(4, &[1, 1]), vec![2, 2]);
        assert_eq!(weighted_split(7, &[5, 5]), vec![4, 3]);
        // More slots than cores: everyone keeps the floor of one.
        assert_eq!(weighted_split(2, &[9, 9, 9]), vec![1, 1, 1]);
        assert!(weighted_split(4, &[]).is_empty());
    }

    #[test]
    fn weighted_split_follows_frontier_widths() {
        // A 30-node frontier next to a 10-node one: 3/4 of the cores.
        assert_eq!(weighted_split(8, &[30, 10]), vec![6, 2]);
        // A very narrow straggler never starves below one core, and the
        // wide one absorbs what it cannot use.
        assert_eq!(weighted_split(8, &[1000, 1]), vec![7, 1]);
        // `max(1)` floors overshooting the budget give cores back from
        // the heavy slot, never dropping anyone below one.
        assert_eq!(weighted_split(4, &[1, 1, 1000]), vec![1, 1, 2]);
        // Shares always sum to the budget once it covers the slots.
        for total in 2..=16 {
            for weights in [vec![3, 1], vec![7, 2, 5], vec![1, 1, 1, 1]] {
                if total >= weights.len() {
                    let split = weighted_split(total, &weights);
                    assert_eq!(split.iter().sum::<usize>(), total, "{total} {weights:?}");
                    assert!(split.iter().all(|&s| s >= 1));
                }
            }
        }
    }

    #[test]
    fn frontier_hints_weight_the_straggler_split() {
        let scheduler = Scheduler::new(sharded(8), 3);
        let a = scheduler.start_job(0);
        let b = scheduler.start_job(1);
        let c = scheduler.start_job(2);
        // Queue drained with no hints yet: even split of 8 over 3.
        assert_eq!(a.budget().unwrap().current(), 3);
        assert_eq!(b.budget().unwrap().current(), 3);
        assert_eq!(c.budget().unwrap().current(), 2);
        // The searches report their live frontiers; job 2 finishing
        // triggers a rebalance that now respects the widths.
        a.budget().unwrap().report_frontier(30);
        b.budget().unwrap().report_frontier(10);
        scheduler.finish_job(&c);
        assert_eq!(a.budget().unwrap().current(), 6);
        assert_eq!(b.budget().unwrap().current(), 2);
        // The last straggler still inherits the whole budget.
        scheduler.finish_job(&b);
        assert_eq!(a.budget().unwrap().current(), 8);
    }

    #[test]
    fn a_detached_handle_resizes_nothing() {
        let handle = SchedulerHandle::new();
        assert!(!handle.set_total(4));
        assert_eq!(handle.total(), None);
    }

    #[test]
    fn an_attached_handle_resizes_the_running_split_immediately() {
        let mut scheduler = Scheduler::new(sharded(8), 2);
        let handle = SchedulerHandle::new();
        scheduler.attach(&handle);
        let a = scheduler.start_job(0);
        let b = scheduler.start_job(1);
        // Queue drained: even split of 8 over 2.
        assert_eq!(a.budget().unwrap().current(), 4);
        assert_eq!(b.budget().unwrap().current(), 4);
        // The arbiter reclaims six cores mid-run: the survivors narrow at
        // once (each search adopts the value at its next round boundary).
        assert!(handle.set_total(2));
        assert_eq!(handle.total(), Some(2));
        assert_eq!(a.budget().unwrap().current(), 1);
        assert_eq!(b.budget().unwrap().current(), 1);
        // Handing the cores back widens the survivors again, and the last
        // straggler still inherits the whole (live) budget.
        assert!(handle.set_total(6));
        assert_eq!(a.budget().unwrap().current(), 3);
        scheduler.finish_job(&a);
        assert_eq!(b.budget().unwrap().current(), 6);
        // ScheduleStats keep reporting the budget resolved at
        // construction; the occupancy timeline tells the live story.
        let stats = scheduler.finish_job(&b);
        assert_eq!(stats.batch_threads, 8);
    }

    #[test]
    fn set_total_clamps_to_one_and_width_first_scheduling_still_rules() {
        let mut scheduler = Scheduler::new(sharded(4), 2);
        let handle = SchedulerHandle::new();
        scheduler.attach(&handle);
        let a = scheduler.start_job(0);
        // Job 1 still pending: width first, even after a resize.
        assert!(handle.set_total(0));
        assert_eq!(handle.total(), Some(1));
        assert_eq!(a.budget().unwrap().current(), 1);
        let b = scheduler.start_job(1);
        // Queue drained under the clamped total: floors of one each.
        assert_eq!(a.budget().unwrap().current(), 1);
        assert_eq!(b.budget().unwrap().current(), 1);
    }

    #[test]
    fn handles_detach_when_the_batch_finishes() {
        let mut scheduler = Scheduler::new(sharded(2), 2);
        let handle = SchedulerHandle::new();
        scheduler.attach(&handle);
        let clone = handle.clone();
        let results = scheduler.run(|index, _| index);
        assert_eq!(results.len(), 2);
        assert!(!handle.set_total(4), "a finished batch must be detached");
        assert_eq!(clone.total(), None, "clones share the detachment");
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [SchedulePolicy::Flat, SchedulePolicy::Sharded] {
            assert_eq!(SchedulePolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(SchedulePolicy::from_name("adaptive"), None);
    }
}
