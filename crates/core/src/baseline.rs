//! The baseline verifier standing in for the Spin-based verifier of the
//! paper (Section 4.1, "Baseline").
//!
//! The Spin-based verifier of [Li, Deutsch, Vianu — arXiv:1705.09427] has
//! two defining characteristics in the evaluation of the paper:
//!
//! 1. it cannot handle updatable artifact relations (it verifies the
//!    restricted model only), and
//! 2. it explores a much larger state space because it lacks the lazy
//!    partial-isomorphism-type representation and the subsumption pruning.
//!
//! Spin itself is not redistributable inside this repository, so the
//! baseline is implemented as the same search engine with every
//! optimisation disabled and with *exact-duplicate* pruning only
//! (`CoverageKind::Equality`), over the specification with artifact
//! relations stripped.  This reproduces the mechanism responsible for the
//! performance gap reported in Table 2 — state-space blowup — rather than
//! Spin's absolute running times (see `DESIGN.md`, substitution table).

use crate::coverage::CoverageKind;
use crate::product::ProductSystem;
use crate::repeated::find_infinite_violation;
use crate::search::{KarpMillerSearch, SearchLimits, SearchOutcome};
use crate::verifier::{Counterexample, VerificationOutcome, VerificationResult};
use verifas_ltl::LtlFoProperty;
use verifas_model::{HasSpec, ModelError, ServiceRef};

/// The baseline ("Spin-Opt"-like) verifier.
pub struct BaselineVerifier {
    product: ProductSystem,
    limits: SearchLimits,
}

impl BaselineVerifier {
    /// Build the baseline verifier.  Artifact relations are always
    /// ignored, mirroring the restriction of the Spin-based verifier.
    pub fn new(
        spec: &HasSpec,
        property: &LtlFoProperty,
        limits: SearchLimits,
    ) -> Result<Self, ModelError> {
        spec.validate()?;
        let product = ProductSystem::new(spec, property, false)?;
        Ok(BaselineVerifier { product, limits })
    }

    /// Run the baseline verification.
    pub fn verify(&self) -> VerificationResult {
        let mut search =
            KarpMillerSearch::new(&self.product, CoverageKind::Equality, false, self.limits);
        let outcome = search.run();
        let stats = search.stats;
        let failure = std::mem::take(&mut search.failure);
        let describe = |services: &[ServiceRef]| {
            services
                .iter()
                .map(|s| self.product.task.spec.service_name(*s))
                .collect::<Vec<_>>()
                .join(" → ")
        };
        match outcome {
            SearchOutcome::FiniteViolation(node) => {
                let services: Vec<ServiceRef> =
                    search.trace(node).into_iter().map(|(s, _)| s).collect();
                VerificationResult {
                    outcome: VerificationOutcome::Violated,
                    counterexample: Some(Counterexample {
                        description: describe(&services),
                        services,
                        finite: true,
                    }),
                    stats,
                    repeated_stats: None,
                    repeated_cycle: None,
                    worker_stats: Vec::new(),
                    failure,
                }
            }
            SearchOutcome::LimitReached => VerificationResult {
                outcome: VerificationOutcome::Inconclusive,
                counterexample: None,
                stats,
                repeated_stats: None,
                repeated_cycle: None,
                worker_stats: Vec::new(),
                failure,
            },
            SearchOutcome::Exhausted => {
                let repeated = find_infinite_violation(
                    &self.product,
                    CoverageKind::Equality,
                    false,
                    self.limits,
                );
                let repeated_stats = Some(repeated.stats);
                let repeated_cycle = repeated.cycle;
                let failure = failure.or(repeated.failure);
                if let Some(finite) = repeated.finite_violation {
                    return VerificationResult {
                        outcome: VerificationOutcome::Violated,
                        counterexample: Some(Counterexample {
                            description: describe(&finite),
                            services: finite,
                            finite: true,
                        }),
                        stats,
                        repeated_stats,
                        repeated_cycle,
                        worker_stats: Vec::new(),
                        failure,
                    };
                }
                match repeated.violation {
                    Some(v) => VerificationResult {
                        outcome: VerificationOutcome::Violated,
                        counterexample: Some(Counterexample {
                            description: describe(&v.prefix),
                            services: v.prefix,
                            finite: false,
                        }),
                        stats,
                        repeated_stats,
                        repeated_cycle,
                        worker_stats: Vec::new(),
                        failure: failure.clone(),
                    },
                    None if repeated.limit_reached => VerificationResult {
                        outcome: VerificationOutcome::Inconclusive,
                        counterexample: None,
                        stats,
                        repeated_stats,
                        repeated_cycle,
                        worker_stats: Vec::new(),
                        failure: failure.clone(),
                    },
                    None => VerificationResult {
                        outcome: VerificationOutcome::Satisfied,
                        counterexample: None,
                        stats,
                        repeated_stats,
                        repeated_cycle,
                        worker_stats: Vec::new(),
                        failure: failure.clone(),
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
    use verifas_model::schema::attr::data;
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, TaskId, Term};

    fn small_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "go",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        root.service_parts(
            "reset",
            Condition::eq(Term::var(status), Term::str("Done")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("small", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    #[test]
    fn baseline_and_verifas_agree_on_small_specs() {
        let spec = small_spec();
        for (name, formula, cond) in [
            ("violated", Ltl::globally(Ltl::not(Ltl::prop(0))), "Done"),
            (
                "satisfied",
                Ltl::globally(Ltl::not(Ltl::prop(0))),
                "Missing",
            ),
        ] {
            let property = LtlFoProperty::new(
                name,
                TaskId::new(0),
                vec![],
                formula,
                vec![PropAtom::Condition(Condition::eq(
                    Term::var(verifas_model::VarId::new(0)),
                    Term::str(cond),
                ))],
            );
            let baseline =
                BaselineVerifier::new(&spec, &property, SearchLimits::default()).unwrap();
            let engine = Engine::load(spec.clone()).unwrap();
            assert_eq!(
                baseline.verify().outcome,
                engine.check(&property).unwrap().outcome,
                "disagreement on {name}"
            );
        }
    }

    #[test]
    fn baseline_explores_at_least_as_many_states() {
        let spec = small_spec();
        let property = LtlFoProperty::new(
            "safety",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(Condition::eq(
                Term::var(verifas_model::VarId::new(0)),
                Term::str("Missing"),
            ))],
        );
        let baseline = BaselineVerifier::new(&spec, &property, SearchLimits::default()).unwrap();
        let engine = Engine::load(spec.clone()).unwrap();
        let b = baseline.verify();
        let v = engine.check(&property).unwrap();
        assert!(b.stats.states_created >= v.stats.states_created);
    }
}
