//! Partial symbolic instances (paper Definition 19 / Definition 30).
//!
//! A partial symbolic instance (PSI) consists of
//!
//! * the partial isomorphism type of the current artifact tuple,
//! * one counter per *stored* partial isomorphism type, counting the tuples
//!   of the artifact relations that share that type (sparse: only non-zero
//!   counters are materialised, and a counter may hold the ordinal `ω`
//!   after acceleration),
//! * the activation status of the task's children (Definition 30).
//!
//! Stored tuple types are interned globally by the search through
//! [`StoredTypeInterner`] so counters are plain `(type id, count)` pairs.
//! The parallel search gives each worker a [`WorkerInterner`]: a read-only
//! view of the shared table plus a private scratch cache that hands out
//! *provisional* ids for types the shared table does not know yet.  The
//! apply phase of each search round publishes the scratch types to the
//! shared table in a deterministic order (see [`crate::search`]), so the
//! final numbering is independent of how work was scheduled across
//! workers.

use crate::pit::Pit;
use std::collections::HashMap;
use std::fmt;
use verifas_model::ArtRelId;

/// Identifier of an interned stored-tuple type.
pub type StoredTypeId = u32;

/// Read access to a table of stored-tuple types.  Implemented by the
/// shared [`StoredTypeInterner`] and by the per-worker [`WorkerInterner`]
/// overlay, so the coverage tests ([`crate::coverage`]) and the state
/// index ([`crate::index`]) can resolve ids from either.
pub trait TypeTable {
    /// The artifact relation and type of an interned id.
    fn get(&self, id: StoredTypeId) -> &(ArtRelId, Pit);
}

/// Write access to a table of stored-tuple types: interning is idempotent
/// and returns a stable id for the lifetime of the table.
pub trait InternTypes: TypeTable {
    /// Intern a stored type, returning its id.
    fn intern(&mut self, rel: ArtRelId, pit: Pit) -> StoredTypeId;
}

/// Counter value standing for the ordinal `ω` (introduced by the
/// Karp–Miller acceleration).
pub const OMEGA: u32 = u32::MAX;

/// Interner of stored-tuple partial isomorphism types, shared by a whole
/// search so that counter dimensions are stable integers.
#[derive(Debug, Default, Clone)]
pub struct StoredTypeInterner {
    types: Vec<(ArtRelId, Pit)>,
    map: HashMap<(ArtRelId, Pit), StoredTypeId>,
}

impl StoredTypeInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        StoredTypeInterner::default()
    }

    /// Intern a stored type, returning its stable id.
    pub fn intern(&mut self, rel: ArtRelId, pit: Pit) -> StoredTypeId {
        if let Some(&id) = self.map.get(&(rel, pit.clone())) {
            return id;
        }
        let id = self.types.len() as StoredTypeId;
        self.types.push((rel, pit.clone()));
        self.map.insert((rel, pit), id);
        id
    }

    /// The artifact relation and type of an interned id.
    pub fn get(&self, id: StoredTypeId) -> &(ArtRelId, Pit) {
        &self.types[id as usize]
    }

    /// The id of an already-interned type, without interning it.
    pub fn lookup(&self, rel: ArtRelId, pit: &Pit) -> Option<StoredTypeId> {
        self.map.get(&(rel, pit.clone())).copied()
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

impl TypeTable for StoredTypeInterner {
    fn get(&self, id: StoredTypeId) -> &(ArtRelId, Pit) {
        StoredTypeInterner::get(self, id)
    }
}

impl InternTypes for StoredTypeInterner {
    fn intern(&mut self, rel: ArtRelId, pit: Pit) -> StoredTypeId {
        StoredTypeInterner::intern(self, rel, pit)
    }
}

/// Bit marking a provisional (worker-scratch) type id.
const PROVISIONAL_BIT: StoredTypeId = 1 << 31;
/// Bits reserved for the worker tag inside a provisional id.
const WORKER_SHIFT: u32 = 20;
const WORKER_MASK: StoredTypeId = 0x7FF;
const LOCAL_MASK: StoredTypeId = (1 << WORKER_SHIFT) - 1;

/// `true` iff the id was handed out by a [`WorkerInterner`] scratch cache
/// and still awaits publication to the shared table.
pub fn is_provisional(id: StoredTypeId) -> bool {
    id != OMEGA && id & PROVISIONAL_BIT != 0
}

/// Decompose a provisional id into `(worker, local index)`.
pub fn provisional_parts(id: StoredTypeId) -> (usize, usize) {
    debug_assert!(is_provisional(id));
    (
        ((id >> WORKER_SHIFT) & WORKER_MASK) as usize,
        (id & LOCAL_MASK) as usize,
    )
}

/// A per-worker interner overlay used during the parallel plan phase of a
/// search round: reads resolve against the frozen shared table first, then
/// against the worker's private scratch; writes of unknown types go to the
/// scratch under provisional ids.  [`WorkerInterner::begin_node`] /
/// [`WorkerInterner::take_node_new`] bracket the processing of one search
/// node and report, in first-intern order, the provisional ids of the
/// types that node introduced relative to the shared table — the apply
/// phase replays these lists in deterministic node order to publish the
/// types with scheduling-independent final ids.
pub struct WorkerInterner<'a> {
    base: &'a StoredTypeInterner,
    worker: StoredTypeId,
    map: HashMap<(ArtRelId, Pit), StoredTypeId>,
    types: Vec<(ArtRelId, Pit)>,
    node_new: Vec<StoredTypeId>,
}

impl<'a> WorkerInterner<'a> {
    /// A scratch overlay for `worker` on top of the frozen shared table.
    pub fn new(base: &'a StoredTypeInterner, worker: usize) -> Self {
        assert!(
            worker as StoredTypeId <= WORKER_MASK,
            "worker tag {worker} does not fit the provisional-id encoding"
        );
        WorkerInterner {
            base,
            worker: worker as StoredTypeId,
            map: HashMap::new(),
            types: Vec::new(),
            node_new: Vec::new(),
        }
    }

    /// A throwaway scratch overlay (worker tag 0) for read-mostly passes
    /// that never publish their provisional ids — e.g. the
    /// repeated-reachability edge construction, which interns successor
    /// types only to run coverage tests and then discards them.  Cheaper
    /// than cloning the shared table: the overlay starts empty and only
    /// materialises the types the pass actually discovers.
    pub fn scratch(base: &'a StoredTypeInterner) -> Self {
        WorkerInterner::new(base, 0)
    }

    /// Start recording the new types of the next search node.
    pub fn begin_node(&mut self) {
        self.node_new.clear();
    }

    /// The provisional ids first interned while processing the current
    /// node (in intern-call order, deduplicated).
    pub fn take_node_new(&mut self) -> Vec<StoredTypeId> {
        std::mem::take(&mut self.node_new)
    }

    /// The scratch type table, indexed by the local part of the
    /// provisional ids this worker handed out.
    pub fn into_types(self) -> Vec<(ArtRelId, Pit)> {
        self.types
    }
}

impl TypeTable for WorkerInterner<'_> {
    fn get(&self, id: StoredTypeId) -> &(ArtRelId, Pit) {
        if is_provisional(id) {
            let (worker, local) = provisional_parts(id);
            debug_assert_eq!(worker, self.worker as usize);
            &self.types[local]
        } else {
            self.base.get(id)
        }
    }
}

impl InternTypes for WorkerInterner<'_> {
    fn intern(&mut self, rel: ArtRelId, pit: Pit) -> StoredTypeId {
        if let Some(id) = self.base.lookup(rel, &pit) {
            return id;
        }
        let id = match self.map.get(&(rel, pit.clone())) {
            Some(&id) => id,
            None => {
                let local = self.types.len() as StoredTypeId;
                assert!(local <= LOCAL_MASK, "worker scratch interner overflow");
                let id = PROVISIONAL_BIT | (self.worker << WORKER_SHIFT) | local;
                self.types.push((rel, pit.clone()));
                self.map.insert((rel, pit), id);
                id
            }
        };
        if !self.node_new.contains(&id) {
            self.node_new.push(id);
        }
        id
    }
}

/// A sparse vector of counters over stored types.  Counts are strictly
/// positive; [`OMEGA`] represents `ω`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterVec {
    entries: Vec<(StoredTypeId, u32)>,
}

impl CounterVec {
    /// The all-zero counter vector.
    pub fn empty() -> Self {
        CounterVec::default()
    }

    /// The count for a stored type (0 if absent).
    pub fn get(&self, id: StoredTypeId) -> u32 {
        self.entries
            .binary_search_by_key(&id, |(t, _)| *t)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Non-zero entries, sorted by type id.
    pub fn iter(&self) -> impl Iterator<Item = (StoredTypeId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The non-zero entries as a sorted slice — the borrowed form the
    /// arena/state-view layer compares and stores.
    pub fn as_slice(&self) -> &[(StoredTypeId, u32)] {
        &self.entries
    }

    /// Rebuild a counter vector from entries that are already sorted by
    /// type id, deduplicated and strictly positive — the invariant every
    /// slice stored in [`crate::arena::CounterArena`] satisfies.
    pub fn from_sorted(entries: Vec<(StoredTypeId, u32)>) -> CounterVec {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|(_, c)| *c > 0));
        CounterVec { entries }
    }

    /// Number of non-zero counters.
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of stored tuples (`ω` saturates).
    pub fn total(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, c)| {
                if *c == OMEGA {
                    u64::from(u32::MAX)
                } else {
                    u64::from(*c)
                }
            })
            .sum()
    }

    /// A copy with the counter of `id` incremented (ω stays ω).
    pub fn incremented(&self, id: StoredTypeId) -> CounterVec {
        let mut out = self.clone();
        match out.entries.binary_search_by_key(&id, |(t, _)| *t) {
            Ok(i) => {
                if out.entries[i].1 != OMEGA {
                    out.entries[i].1 += 1;
                }
            }
            Err(i) => out.entries.insert(i, (id, 1)),
        }
        out
    }

    /// A copy with the counter of `id` decremented; `None` if it is zero.
    /// Decrementing an `ω` counter leaves it at `ω`.
    pub fn decremented(&self, id: StoredTypeId) -> Option<CounterVec> {
        let mut out = self.clone();
        match out.entries.binary_search_by_key(&id, |(t, _)| *t) {
            Ok(i) => {
                if out.entries[i].1 == OMEGA {
                    return Some(out);
                }
                out.entries[i].1 -= 1;
                if out.entries[i].1 == 0 {
                    out.entries.remove(i);
                }
                Some(out)
            }
            Err(_) => None,
        }
    }

    /// A copy with the counter of `id` set to `ω`.
    pub fn with_omega(&self, id: StoredTypeId) -> CounterVec {
        let mut out = self.clone();
        match out.entries.binary_search_by_key(&id, |(t, _)| *t) {
            Ok(i) => out.entries[i].1 = OMEGA,
            Err(i) => out.entries.insert(i, (id, OMEGA)),
        }
        out
    }

    /// A copy with every type id rewritten through `f` (used to publish
    /// provisional worker ids as final shared ids).  Entries mapping to
    /// the same id are merged (`ω` saturates).
    pub fn map_ids(&self, mut f: impl FnMut(StoredTypeId) -> StoredTypeId) -> CounterVec {
        let mut out = CounterVec::empty();
        for (t, c) in self.entries.iter() {
            let t = f(*t);
            match out.entries.binary_search_by_key(&t, |(u, _)| *u) {
                Ok(i) => {
                    let merged = if out.entries[i].1 == OMEGA || *c == OMEGA {
                        OMEGA
                    } else {
                        out.entries[i].1.saturating_add(*c)
                    };
                    out.entries[i].1 = merged;
                }
                Err(i) => out.entries.insert(i, (t, *c)),
            }
        }
        out
    }

    /// Pointwise comparison `self ≤ other` (with `n < ω` for all `n`).
    pub fn leq(&self, other: &CounterVec) -> bool {
        self.entries.iter().all(|(t, c)| {
            let o = other.get(*t);
            o == OMEGA || (*c != OMEGA && *c <= o)
        })
    }

    /// `true` iff some counter of `other` strictly exceeds the matching
    /// counter of `self` (used by the acceleration rule).
    pub fn strictly_less_somewhere(&self, other: &CounterVec) -> bool {
        other.entries.iter().any(|(t, c)| {
            let mine = self.get(*t);
            mine != OMEGA && (*c == OMEGA || mine < *c)
        })
    }
}

impl fmt::Display for CounterVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, c)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *c == OMEGA {
                write!(f, "τ{t}: ω")?;
            } else {
                write!(f, "τ{t}: {c}")?;
            }
        }
        write!(f, "}}")
    }
}

/// A partial symbolic instance: the artifact-tuple type, the stored-tuple
/// counters and the children activation flags.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Psi {
    /// Partial isomorphism type of the artifact variables (plus the
    /// property's global variables).
    pub pit: Pit,
    /// Counters of stored tuples per stored type.
    pub counters: CounterVec,
    /// Bitmask over the task's children: bit `i` set iff the `i`-th child
    /// is currently active.
    pub child_active: u64,
}

impl Psi {
    /// A PSI with the given type, no stored tuples and no active child.
    pub fn with_pit(pit: Pit) -> Self {
        Psi {
            pit,
            counters: CounterVec::empty(),
            child_active: 0,
        }
    }

    /// `true` iff child `i` is active.
    pub fn child_is_active(&self, i: usize) -> bool {
        self.child_active & (1u64 << i) != 0
    }

    /// A copy with child `i` marked active/inactive.
    pub fn with_child_active(&self, i: usize, active: bool) -> Psi {
        let mut out = self.clone();
        if active {
            out.child_active |= 1u64 << i;
        } else {
            out.child_active &= !(1u64 << i);
        }
        out
    }

    /// `true` iff no child is active.
    pub fn no_child_active(&self) -> bool {
        self.child_active == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_vec_increment_decrement() {
        let c = CounterVec::empty();
        assert_eq!(c.get(3), 0);
        assert!(c.decremented(3).is_none());
        let c = c.incremented(3).incremented(3).incremented(1);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.support_len(), 2);
        let c = c.decremented(3).unwrap();
        assert_eq!(c.get(3), 1);
        let c = c.decremented(3).unwrap();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.support_len(), 1);
    }

    #[test]
    fn omega_counters_absorb_updates() {
        let c = CounterVec::empty().incremented(0).with_omega(0);
        assert_eq!(c.get(0), OMEGA);
        assert_eq!(c.incremented(0).get(0), OMEGA);
        assert_eq!(c.decremented(0).unwrap().get(0), OMEGA);
    }

    #[test]
    fn pointwise_order_with_omega() {
        let a = CounterVec::empty().incremented(0).incremented(1);
        let b = CounterVec::empty()
            .incremented(0)
            .incremented(0)
            .incremented(1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
        let w = CounterVec::empty().with_omega(0).incremented(1);
        assert!(a.leq(&w));
        assert!(!w.leq(&b));
        assert!(a.strictly_less_somewhere(&b));
        assert!(!b.strictly_less_somewhere(&a));
        assert!(a.strictly_less_somewhere(&w));
    }

    #[test]
    fn interner_reuses_ids() {
        let mut interner = StoredTypeInterner::new();
        let rel = ArtRelId::new(0);
        let a = interner.intern(rel, Pit::empty());
        let b = interner.intern(rel, Pit::empty());
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
        let other_rel = ArtRelId::new(1);
        let c = interner.intern(other_rel, Pit::empty());
        assert_ne!(a, c);
        assert_eq!(interner.get(c).0, other_rel);
    }

    #[test]
    fn worker_interner_resolves_shared_and_scratch_ids() {
        let mut shared = StoredTypeInterner::new();
        let rel = ArtRelId::new(0);
        let known = shared.intern(rel, Pit::empty());
        let mut worker = WorkerInterner::new(&shared, 3);
        worker.begin_node();
        // Known types resolve to the shared id without touching scratch.
        assert_eq!(worker.intern(rel, Pit::empty()), known);
        assert!(worker.take_node_new().is_empty());
        // Unknown types get a provisional id, recorded once per node.
        let other = ArtRelId::new(1);
        worker.begin_node();
        let p = worker.intern(other, Pit::empty());
        let p2 = worker.intern(other, Pit::empty());
        assert_eq!(p, p2);
        assert!(is_provisional(p));
        assert!(!is_provisional(known));
        assert_eq!(provisional_parts(p), (3, 0));
        assert_eq!(worker.get(p).0, other);
        assert_eq!(worker.take_node_new(), vec![p]);
        // The same scratch type re-encountered on a later node is
        // reported again (it is still unknown to the shared table).
        worker.begin_node();
        assert_eq!(worker.intern(other, Pit::empty()), p);
        assert_eq!(worker.take_node_new(), vec![p]);
        assert_eq!(worker.into_types(), vec![(other, Pit::empty())]);
    }

    #[test]
    fn map_ids_renumbers_and_merges() {
        let c = CounterVec::empty()
            .incremented(7)
            .incremented(7)
            .incremented(3)
            .with_omega(9);
        let mapped = c.map_ids(|t| if t == 7 { 0 } else { t });
        assert_eq!(mapped.get(0), 2);
        assert_eq!(mapped.get(3), 1);
        assert_eq!(mapped.get(9), OMEGA);
        // Collisions merge; ω absorbs.
        let collided = c.map_ids(|_| 5);
        assert_eq!(collided.get(5), OMEGA);
        assert_eq!(collided.support_len(), 1);
    }

    #[test]
    fn child_activation_flags() {
        let psi = Psi::with_pit(Pit::empty());
        assert!(psi.no_child_active());
        let psi = psi.with_child_active(2, true);
        assert!(psi.child_is_active(2));
        assert!(!psi.child_is_active(0));
        assert!(!psi.no_child_active());
        let psi = psi.with_child_active(2, false);
        assert!(psi.no_child_active());
    }
}
