//! Coverage orders between partial symbolic instances: the classic
//! Karp–Miller order `≤` (Section 3.3), the novel subsumption order `≼`
//! (Section 3.5, Definition 22) decided through a max-flow reduction, and
//! its strict variant `≼⁺` used by the repeated-reachability extension
//! (Appendix C, Definition 31).

use crate::product::StateView;
use crate::psi::{CounterVec, StoredTypeId, TypeTable, OMEGA};

/// Which order the search uses to prune covered states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageKind {
    /// Exact equality only (duplicate detection) — the baseline verifier.
    Equality,
    /// The classic Karp–Miller order: identical types, pointwise-smaller
    /// counters.
    Standard,
    /// The ≼ order of Definition 22: a less restrictive type plus a
    /// tuple-wise mapping into less restrictive stored types (max-flow).
    Subsumption,
    /// The ≼⁺ order of Definition 31 (equality, or ≼ with strict slack on
    /// the stored tuples), which restores strict monotonicity for the
    /// repeated-reachability analysis.
    StrictSubsumption,
}

/// Capacity used to represent `ω` in the flow network.
const BIG: i64 = 1 << 40;

fn count_value(c: u32) -> i64 {
    if c == OMEGA {
        BIG
    } else {
        i64::from(c)
    }
}

/// The discrete components of a state (automaton state, child activation,
/// closed flag).  Two states are comparable under *any* coverage relation
/// only when their discrete keys are equal, so both the state index and
/// the repeated-reachability edge construction partition candidates by
/// this key before running the exact tests.
pub fn discrete_key(state: StateView<'_>) -> (usize, u64, bool) {
    (state.buchi, state.child_active, state.closed)
}

/// Discrete components (automaton state, child activation, closed flag)
/// must match exactly for any coverage relation.
fn discrete_match(covered: StateView<'_>, covering: StateView<'_>) -> bool {
    discrete_key(covered) == discrete_key(covering)
}

/// The count for a stored type in a sorted entry slice (0 if absent).
fn slice_get(entries: &[(StoredTypeId, u32)], id: StoredTypeId) -> u32 {
    entries
        .binary_search_by_key(&id, |(t, _)| *t)
        .map(|i| entries[i].1)
        .unwrap_or(0)
}

/// Pointwise comparison `left ≤ right` (with `n < ω` for all `n`) over
/// sorted entry slices — the borrowed twin of [`CounterVec::leq`].
fn slice_leq(left: &[(StoredTypeId, u32)], right: &[(StoredTypeId, u32)]) -> bool {
    left.iter().all(|(t, c)| {
        let o = slice_get(right, *t);
        o == OMEGA || (*c != OMEGA && *c <= o)
    })
}

/// `true` iff some counter of `right` strictly exceeds the matching one
/// of `left` — the borrowed twin of [`CounterVec::strictly_less_somewhere`].
fn slice_strictly_less_somewhere(
    left: &[(StoredTypeId, u32)],
    right: &[(StoredTypeId, u32)],
) -> bool {
    right.iter().any(|(t, c)| {
        let mine = slice_get(left, *t);
        mine != OMEGA && (*c == OMEGA || mine < *c)
    })
}

/// `true` iff `covering` covers `covered` under the given order
/// (`covered ⊑ covering`), i.e. `covered` may be pruned in favour of
/// `covering`.
pub fn covers(
    kind: CoverageKind,
    covered: StateView<'_>,
    covering: StateView<'_>,
    interner: &dyn TypeTable,
) -> bool {
    if !discrete_match(covered, covering) {
        return false;
    }
    // The discrete components already matched, so full equality reduces
    // to the type and the counters.
    let equal = || covered.pit == covering.pit && covered.counters == covering.counters;
    match kind {
        CoverageKind::Equality => equal(),
        CoverageKind::Standard => {
            covered.pit == covering.pit && slice_leq(covered.counters, covering.counters)
        }
        CoverageKind::Subsumption => {
            covered.pit.implies(covering.pit)
                && flow_feasible(covered.counters, covering.counters, interner, 0)
        }
        CoverageKind::StrictSubsumption => {
            equal()
                || (covered.pit.implies(covering.pit)
                    && flow_feasible(covered.counters, covering.counters, interner, 1))
        }
    }
}

/// `true` iff the tuples counted by `left` can be injectively mapped to
/// tuples counted by `right` such that every tuple lands on a type it
/// implies (Definition 22).  When `required_slack > 0` the mapping must in
/// addition leave at least that much unused capacity on the right
/// (Definition 31).
pub fn flow_feasible(
    left: &[(StoredTypeId, u32)],
    right: &[(StoredTypeId, u32)],
    interner: &dyn TypeTable,
    required_slack: i64,
) -> bool {
    let left_entries: Vec<(u32, i64)> = left.iter().map(|(t, c)| (*t, count_value(*c))).collect();
    let right_entries: Vec<(u32, i64)> = right.iter().map(|(t, c)| (*t, count_value(*c))).collect();
    let demand: i64 = left_entries.iter().map(|(_, c)| *c).sum();
    let supply: i64 = right_entries.iter().map(|(_, c)| *c).sum();
    if demand == 0 {
        return supply >= required_slack;
    }
    if supply < demand + required_slack {
        return false;
    }
    // Max-flow on the bipartite graph: source -> left (capacity = count),
    // left -> right when the stored type of the left implies the stored
    // type of the right (and they belong to the same artifact relation),
    // right -> sink (capacity = count).
    let n = 2 + left_entries.len() + right_entries.len();
    let source = 0;
    let sink = 1;
    let left_node = |i: usize| 2 + i;
    let right_node = |i: usize| 2 + left_entries.len() + i;
    let mut flow = MaxFlow::new(n);
    for (i, (_, c)) in left_entries.iter().enumerate() {
        flow.add_edge(source, left_node(i), *c);
    }
    for (j, (_, c)) in right_entries.iter().enumerate() {
        flow.add_edge(right_node(j), sink, *c);
    }
    for (i, (lt, _)) in left_entries.iter().enumerate() {
        let (lrel, lpit) = interner.get(*lt);
        for (j, (rt, _)) in right_entries.iter().enumerate() {
            let (rrel, rpit) = interner.get(*rt);
            if lrel == rrel && lpit.implies(rpit) {
                flow.add_edge(left_node(i), right_node(j), BIG);
            }
        }
    }
    flow.max_flow(source, sink) >= demand
}

/// The Karp–Miller acceleration: compare a candidate state against an
/// ancestor; when the ancestor is covered by the candidate and some counter
/// strictly grew, that counter is set to `ω` (Section 3.3; the
/// subsumption-based generalisation of Section 3.5 sets `ω` on every
/// right-hand type that can keep strict slack in a feasible mapping).
/// Returns `None` when no acceleration applies.
pub fn accelerate(
    kind: CoverageKind,
    ancestor: StateView<'_>,
    candidate: StateView<'_>,
    interner: &dyn TypeTable,
) -> Option<CounterVec> {
    if !discrete_match(ancestor, candidate) {
        return None;
    }
    match kind {
        CoverageKind::Equality => None,
        CoverageKind::Standard => {
            if ancestor.pit != candidate.pit
                || !slice_leq(ancestor.counters, candidate.counters)
                || !slice_strictly_less_somewhere(ancestor.counters, candidate.counters)
            {
                return None;
            }
            let mut counters = CounterVec::from_sorted(candidate.counters.to_vec());
            for &(t, c) in candidate.counters {
                let anc = slice_get(ancestor.counters, t);
                if anc != OMEGA && c != OMEGA && anc < c {
                    counters = counters.with_omega(t);
                }
                if anc != OMEGA && c == OMEGA {
                    counters = counters.with_omega(t);
                }
            }
            Some(counters)
        }
        CoverageKind::Subsumption | CoverageKind::StrictSubsumption => {
            if !ancestor.pit.implies(candidate.pit)
                || !flow_feasible(ancestor.counters, candidate.counters, interner, 0)
            {
                return None;
            }
            // A right-hand type can be accelerated if the mapping can leave
            // slack on it: feasibility still holds after lowering its
            // capacity by one.
            let owned = CounterVec::from_sorted(candidate.counters.to_vec());
            let mut counters = owned.clone();
            let mut changed = false;
            for (t, c) in owned.iter() {
                if c == OMEGA {
                    continue;
                }
                let Some(reduced) = owned.decremented(t) else {
                    continue;
                };
                if flow_feasible(ancestor.counters, reduced.as_slice(), interner, 0) {
                    counters = counters.with_omega(t);
                    changed = true;
                }
            }
            if changed {
                Some(counters)
            } else {
                None
            }
        }
    }
}

/// A small Dinic-style max-flow (BFS levels + DFS blocking flow), adequate
/// for the tiny bipartite networks produced by the ≼ test.
struct MaxFlow {
    graph: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<i64>,
}

impl MaxFlow {
    fn new(n: usize) -> Self {
        MaxFlow {
            graph: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        let e = self.to.len();
        self.graph[from].push(e);
        self.to.push(to);
        self.cap.push(cap);
        self.graph[to].push(e + 1);
        self.to.push(from);
        self.cap.push(0);
    }

    fn bfs(&self, source: usize, sink: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.graph.len()];
        level[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.graph[u] {
                let v = self.to[e];
                if self.cap[e] > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs(&mut self, u: usize, sink: usize, pushed: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if u == sink {
            return pushed;
        }
        while it[u] < self.graph[u].len() {
            let e = self.graph[u][it[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs(v, sink, pushed.min(self.cap[e]), level, it);
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        let mut total = 0;
        while let Some(level) = self.bfs(source, sink) {
            let mut it = vec![0usize; self.graph.len()];
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprUniverse;
    use crate::pit::{Pit, PitBuilder};
    use crate::psi::{Psi, StoredTypeInterner};
    use std::collections::BTreeSet;
    use verifas_model::schema::attr::data;
    use verifas_model::{
        ArtRelId, Condition, DataValue, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, VarId,
        VarRef,
    };

    fn setup() -> (HasSpec, ExprUniverse) {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let x = root.data_var("x");
        root.art_relation_like("S", &[x]);
        root.service_parts("noop", Condition::True, Condition::True, vec![], None);
        let spec = SpecBuilder::new("cov", db, root.build()).build().unwrap();
        let consts = BTreeSet::from([DataValue::str("a"), DataValue::str("b")]);
        let u = ExprUniverse::build(&spec, spec.root(), &[], &consts);
        (spec, u)
    }

    use crate::product::ProductState;

    fn state(pit: Pit, counters: crate::psi::CounterVec) -> ProductState {
        ProductState {
            psi: Psi {
                pit,
                counters,
                child_active: 0,
            },
            buchi: 0,
            closed: false,
        }
    }

    fn constrained(u: &ExprUniverse, c: &str) -> Pit {
        let x = u.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        let k = u.const_expr(&DataValue::str(c)).unwrap();
        let mut b = PitBuilder::new(u);
        b.assert_eq(x, k);
        b.finish().unwrap()
    }

    fn slot_constrained(u: &ExprUniverse, c: &str) -> Pit {
        let s = u.slot_expr(ArtRelId::new(0), 0).unwrap();
        let k = u.const_expr(&DataValue::str(c)).unwrap();
        let mut b = PitBuilder::new(u);
        b.assert_eq(s, k);
        b.finish().unwrap()
    }

    #[test]
    fn standard_coverage_requires_identical_types() {
        let (_s, u) = setup();
        let interner = StoredTypeInterner::new();
        let a = state(Pit::empty(), crate::psi::CounterVec::empty());
        let b = state(constrained(&u, "a"), crate::psi::CounterVec::empty());
        assert!(covers(
            CoverageKind::Standard,
            a.view(),
            a.view(),
            &interner
        ));
        assert!(!covers(
            CoverageKind::Standard,
            b.view(),
            a.view(),
            &interner
        ));
        // Subsumption allows pruning the more constrained state in favour of
        // the less constrained one.
        assert!(covers(
            CoverageKind::Subsumption,
            b.view(),
            a.view(),
            &interner
        ));
        assert!(!covers(
            CoverageKind::Subsumption,
            a.view(),
            b.view(),
            &interner
        ));
        // Equality is the strictest.
        assert!(!covers(
            CoverageKind::Equality,
            b.view(),
            a.view(),
            &interner
        ));
    }

    #[test]
    fn subsumption_counters_use_the_flow_mapping() {
        // Example 23 of the paper: {τa: 2, τb: 2} ≼ {τa: 3, τb: 1} when
        // τb ⊨ τa (τb is more restrictive).
        let (_s, u) = setup();
        let mut interner = StoredTypeInterner::new();
        let rel = ArtRelId::new(0);
        let tau_a = interner.intern(rel, Pit::empty());
        let tau_b = interner.intern(rel, slot_constrained(&u, "a"));
        let left = crate::psi::CounterVec::empty()
            .incremented(tau_a)
            .incremented(tau_a)
            .incremented(tau_b)
            .incremented(tau_b);
        let right = crate::psi::CounterVec::empty()
            .incremented(tau_a)
            .incremented(tau_a)
            .incremented(tau_a)
            .incremented(tau_b);
        let covered = state(Pit::empty(), left.clone());
        let covering = state(Pit::empty(), right.clone());
        assert!(covers(
            CoverageKind::Subsumption,
            covered.view(),
            covering.view(),
            &interner
        ));
        // Standard coverage fails: counters are not pointwise comparable.
        assert!(!covers(
            CoverageKind::Standard,
            covered.view(),
            covering.view(),
            &interner
        ));
        // The reverse direction does not hold: τa tuples cannot map to τb.
        assert!(!covers(
            CoverageKind::Subsumption,
            covering.view(),
            covered.view(),
            &interner
        ));
    }

    #[test]
    fn strict_subsumption_needs_slack_or_equality() {
        let (_s, u) = setup();
        let mut interner = StoredTypeInterner::new();
        let rel = ArtRelId::new(0);
        let tau_a = interner.intern(rel, Pit::empty());
        let one = crate::psi::CounterVec::empty().incremented(tau_a);
        let two = one.incremented(tau_a);
        let s1 = state(Pit::empty(), one.clone());
        let s2 = state(Pit::empty(), two);
        assert!(covers(
            CoverageKind::StrictSubsumption,
            s1.view(),
            s1.view(),
            &interner
        ));
        assert!(covers(
            CoverageKind::StrictSubsumption,
            s1.view(),
            s2.view(),
            &interner
        ));
        // Same totals, different nothing: ≼ holds but ≼⁺ needs strict slack.
        let s1b = state(Pit::empty(), one);
        assert!(covers(
            CoverageKind::Subsumption,
            s1.view(),
            s1b.view(),
            &interner
        ));
        assert!(covers(
            CoverageKind::StrictSubsumption,
            s1.view(),
            s1b.view(),
            &interner
        )); // equality case
        let different = state(
            constrained(&u, "a"),
            crate::psi::CounterVec::empty().incremented(tau_a),
        );
        assert!(!covers(
            CoverageKind::StrictSubsumption,
            different.view(),
            s1.view(),
            &interner
        ));
        let _ = u;
    }

    #[test]
    fn acceleration_pumps_strictly_growing_counters() {
        let (_s, _u) = setup();
        let mut interner = StoredTypeInterner::new();
        let rel = ArtRelId::new(0);
        let t = interner.intern(rel, Pit::empty());
        let ancestor = state(Pit::empty(), crate::psi::CounterVec::empty().incremented(t));
        let candidate = state(
            Pit::empty(),
            crate::psi::CounterVec::empty()
                .incremented(t)
                .incremented(t),
        );
        let accelerated = accelerate(
            CoverageKind::Standard,
            ancestor.view(),
            candidate.view(),
            &interner,
        )
        .expect("acceleration applies");
        assert_eq!(accelerated.get(t), OMEGA);
        // No acceleration when counters did not grow.
        assert!(accelerate(
            CoverageKind::Standard,
            ancestor.view(),
            ancestor.view(),
            &interner
        )
        .is_none());
        // Subsumption-based acceleration also pumps.
        let accelerated = accelerate(
            CoverageKind::Subsumption,
            ancestor.view(),
            candidate.view(),
            &interner,
        )
        .expect("subsumption acceleration applies");
        assert_eq!(accelerated.get(t), OMEGA);
    }

    #[test]
    fn discrete_components_must_match() {
        let (_s, _u) = setup();
        let interner = StoredTypeInterner::new();
        let a = state(Pit::empty(), crate::psi::CounterVec::empty());
        let mut b = a.clone();
        b.buchi = 1;
        assert!(!covers(
            CoverageKind::Subsumption,
            a.view(),
            b.view(),
            &interner
        ));
        let mut c = a.clone();
        c.psi.child_active = 1;
        assert!(!covers(
            CoverageKind::Standard,
            a.view(),
            c.view(),
            &interner
        ));
        let mut d = a.clone();
        d.closed = true;
        assert!(!covers(
            CoverageKind::Equality,
            a.view(),
            d.view(),
            &interner
        ));
    }
}
