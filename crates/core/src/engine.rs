//! The session-oriented verification engine.
//!
//! [`Engine`] is the long-lived front door of VERIFAS: it loads a
//! [`HasSpec`] once and serves many verification requests against it,
//! amortizing the spec-side preprocessing — the expression universe, the
//! compiled symbolic task and the spec-side static-analysis constraint
//! graph — across properties.  Three entry points:
//!
//! * [`Engine::check`] — verify one property with the engine's default
//!   options,
//! * [`Engine::verification`] — a builder for one request: override
//!   options, attach a [`ProgressObserver`], set a deadline or a
//!   [`CancelToken`], then [`VerificationBuilder::run`],
//! * [`Engine::check_all`] — verify a batch of properties, building each
//!   distinct (task, configuration) preprocessing exactly once and
//!   scheduling the per-property searches over the machine through the
//!   sharded [`Scheduler`] (see [`crate::schedule`]): wide while
//!   properties are queued, with freed cores reassigned to still-running
//!   searches through the tail of the batch.  [`Engine::batch`] is the
//!   builder variant with batch-level knobs ([`BatchOptions`], a
//!   [`CancelToken`], a streaming result callback).
//!
//! Every run returns a structured, serializable
//! [`VerificationReport`]; every failure is a typed [`VerifasError`].
//!
//! ```
//! use verifas_core::engine::Engine;
//! # use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
//! # use verifas_model::schema::attr::data;
//! # use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term, VarId};
//! # let mut db = DatabaseSchema::new();
//! # db.add_relation("R", vec![data("a")]).unwrap();
//! # let mut root = TaskBuilder::new("Root");
//! # let status = root.data_var("status");
//! # root.service_parts("go", Condition::eq(Term::var(status), Term::Null),
//! #     Condition::eq(Term::var(status), Term::str("Done")), vec![], None);
//! # let mut b = SpecBuilder::new("doc", db, root.build());
//! # b.global_pre(Condition::eq(Term::var(status), Term::Null));
//! # let spec = b.build().unwrap();
//! # let property = LtlFoProperty::new("p", spec.root(), vec![],
//! #     Ltl::globally(Ltl::not(Ltl::prop(0))),
//! #     vec![PropAtom::Condition(Condition::eq(Term::var(VarId::new(0)), Term::str("Broken")))]);
//! let engine = Engine::load(spec).unwrap();
//! let report = engine.check(&property).unwrap();
//! println!("{}", report.to_json());
//! ```

use crate::delta::{
    fingerprint, static_removed_fingerprint, DeltaSummary, ReuseMode, SpecDelta, TransitionMemo,
};
use crate::error::VerifasError;
use crate::expr::ExprUniverse;
use crate::observer::{CancelToken, ProgressEvent, ProgressObserver, SearchControl};
use crate::product::ProductSystem;
use crate::report::VerificationReport;
use crate::schedule::{BatchOptions, Scheduler, SchedulerHandle};
use crate::search::SearchLimits;
use crate::static_analysis::ConstraintGraph;
use crate::transition::{spec_constants, SymbolicTask};
use crate::verifier::VerificationOutcome;
use crate::verifier::{run_verification, VerifierOptions};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use verifas_ltl::{LtlFoProperty, PropertyHandle};
use verifas_model::{DataValue, HasSpec, TaskId, VarType};

/// Cache key of one spec-side preprocessing artefact.
///
/// Two properties share a preprocessing iff they verify the same task under
/// the same artifact-relation handling, bind global variables of the same
/// types, and add the same constants on top of the specification's own
/// (for almost all benchmark properties that extra set is empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrepKey {
    task: TaskId,
    include_sets: bool,
    global_types: Vec<VarType>,
    extra_constants: Vec<DataValue>,
}

/// The shared spec-side preprocessing of one cache key: the compiled
/// symbolic task (which owns the expression universe) and the
/// property-independent part of the static-analysis constraint graph,
/// built lazily on the first request that actually enables the static
/// analysis.
struct TaskPreprocessing {
    task: SymbolicTask,
    spec_graph: std::sync::OnceLock<ConstraintGraph>,
    /// Replay-mode transition memo (see [`crate::delta`]).  Lives with the
    /// preprocessing so [`Engine::load_delta`] carries recorded
    /// enumerations across sessions exactly when the compiled task itself
    /// carries over; empty unless a replay-mode request recorded into it.
    memo: TransitionMemo,
}

impl TaskPreprocessing {
    fn spec_graph(&self, spec: &HasSpec, task: TaskId) -> &ConstraintGraph {
        self.spec_graph
            .get_or_init(|| ConstraintGraph::build_spec_side(spec, task, &self.task.universe))
    }
}

/// The preprocessing cache clears itself once it holds this many entries
/// (distinct keys arise from properties adding unseen constants or global
/// variable types); a long-lived service with adversarial properties must
/// not grow without bound.
const PREPROCESSING_CACHE_CAPACITY: usize = 64;

/// The report cache clears itself once it holds this many entries (one
/// entry per distinct (task, property, options) request that ran to a
/// definite verdict).
const REPORT_CACHE_CAPACITY: usize = 256;

/// Cache key of one finished verification: the verified task plus
/// structural fingerprints of the property and the full options (the
/// search is deterministic in these — and in the task's slice, which
/// [`Engine::load_delta`] checks before carrying entries across
/// sessions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ReportKey {
    task: TaskId,
    property_fp: u64,
    options_fp: u64,
}

impl ReportKey {
    fn new(property: &LtlFoProperty, options: &VerifierOptions) -> Self {
        ReportKey {
            task: property.task,
            property_fp: fingerprint(property),
            options_fp: fingerprint(options),
        }
    }
}

/// A long-lived verification engine over one loaded specification.
///
/// The engine is `Sync`: one engine can serve concurrent `check` calls
/// from many threads, sharing its preprocessing cache.
pub struct Engine {
    spec: HasSpec,
    options: VerifierOptions,
    /// How much this engine reuses from a prior session (see
    /// [`crate::delta`]); plain [`Engine::load`] sessions are
    /// [`ReuseMode::Cold`].
    reuse: ReuseMode,
    /// The specification's own constants (property constants are keyed on
    /// top of these).
    base_constants: BTreeSet<DataValue>,
    cache: Mutex<HashMap<PrepKey, Arc<TaskPreprocessing>>>,
    /// Finished reports of definite, uncancelled runs — always recorded
    /// (so a later [`Engine::load_delta`] can carry them), only consulted
    /// on non-[`ReuseMode::Cold`] engines.
    reports: Mutex<HashMap<ReportKey, Arc<VerificationReport>>>,
}

impl Engine {
    /// Load and validate a specification with default options.
    pub fn load(spec: HasSpec) -> Result<Self, VerifasError> {
        Engine::load_with_options(spec, VerifierOptions::default())
    }

    /// Load and validate a specification; `options` become the engine's
    /// defaults (individual requests can still override them through
    /// [`Engine::verification`]).
    pub fn load_with_options(
        spec: HasSpec,
        options: VerifierOptions,
    ) -> Result<Self, VerifasError> {
        Engine::load_with_reuse(spec, options, ReuseMode::Cold)
    }

    /// [`Engine::load_with_options`] with an explicit [`ReuseMode`].
    ///
    /// A non-[`ReuseMode::Cold`] engine answers repeated identical
    /// requests from its report cache (without re-running the search —
    /// no progress events are emitted for such answers), and under
    /// [`ReuseMode::Replay`] additionally records every spec-side
    /// transition enumeration so that later searches — of this session or
    /// of a [`Engine::load_delta`] successor — replay instead of
    /// recompute.  Results are bit-identical to a cold engine's in every
    /// mode (modulo wall-clock fields); the modes only change how much
    /// work producing them takes.
    pub fn load_with_reuse(
        spec: HasSpec,
        options: VerifierOptions,
        reuse: ReuseMode,
    ) -> Result<Self, VerifasError> {
        spec.validate()?;
        let base_constants = spec_constants(&spec);
        Ok(Engine {
            spec,
            options,
            reuse,
            base_constants,
            cache: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
        })
    }

    /// Load an edited specification as the successor of a prior session,
    /// carrying over everything the structural [`SpecDelta`] proves
    /// untouched: the spec-side preprocessing (expression universe,
    /// compiled symbolic task, static-analysis graph — and, under
    /// [`ReuseMode::Replay`], the recorded transition enumerations) of
    /// every task whose slice is unchanged, plus the finished reports of
    /// unchanged (task, property, options) requests, which later
    /// identical requests answer without any search.
    ///
    /// Nothing is rebuilt for carried entries — see
    /// [`crate::counters::preps_carried`] — and nothing changed is ever
    /// carried: the slice hash (see [`crate::delta::slice_hash`]) covers
    /// the full dependency cone of each compiled artefact.  With
    /// [`ReuseMode::Cold`] this is equivalent to a fresh
    /// [`Engine::load_with_options`] (useful as a baseline).
    pub fn load_delta(
        prior: &Engine,
        spec: HasSpec,
        mode: ReuseMode,
    ) -> Result<(Self, DeltaSummary), VerifasError> {
        let engine = Engine::load_with_reuse(spec, prior.options, mode)?;
        let delta = SpecDelta::diff(&prior.spec, &engine.spec);
        let mut summary = DeltaSummary {
            mode,
            tasks: delta.tasks.len(),
            tasks_unchanged: delta.unchanged_tasks(),
            preps_carried: 0,
            reports_carried: 0,
        };
        if mode == ReuseMode::Cold {
            return Ok((engine, summary));
        }
        {
            let prior_cache = lock_ignoring_poison(&prior.cache);
            let mut cache = lock_ignoring_poison(&engine.cache);
            for (key, prep) in prior_cache.iter() {
                if delta.task_unchanged(key.task) {
                    cache.insert(key.clone(), Arc::clone(prep));
                    summary.preps_carried += 1;
                }
            }
        }
        {
            let prior_reports = lock_ignoring_poison(&prior.reports);
            let mut reports = lock_ignoring_poison(&engine.reports);
            for (key, report) in prior_reports.iter() {
                if delta.task_unchanged(key.task) {
                    reports.insert(key.clone(), Arc::clone(report));
                    summary.reports_carried += 1;
                }
            }
        }
        use std::sync::atomic::Ordering;
        crate::counters::PREPS_CARRIED.fetch_add(summary.preps_carried, Ordering::Relaxed);
        crate::counters::REPORTS_CARRIED.fetch_add(summary.reports_carried, Ordering::Relaxed);
        Ok((engine, summary))
    }

    /// The loaded specification.
    pub fn spec(&self) -> &HasSpec {
        &self.spec
    }

    /// The engine's default options.
    pub fn options(&self) -> VerifierOptions {
        self.options
    }

    /// The engine's [`ReuseMode`].
    pub fn reuse_mode(&self) -> ReuseMode {
        self.reuse
    }

    /// Number of distinct spec-side preprocessings currently cached
    /// (diagnostic; see [`crate::counters`] for process-wide build counts).
    pub fn cached_preprocessings(&self) -> usize {
        lock_ignoring_poison(&self.cache).len()
    }

    /// Number of finished reports currently cached (diagnostic).
    pub fn cached_reports(&self) -> usize {
        lock_ignoring_poison(&self.reports).len()
    }

    /// Deterministic estimate of this engine's resident bytes — a fixed
    /// base plus per-element costs for the preprocessing and report
    /// caches (the structures that actually grow with use).  Feeds
    /// byte-based session-cache eviction in `verifas serve`; like
    /// [`crate::search::KarpMillerSearch::estimated_bytes`] it is an
    /// accounting figure, never an allocator probe, so eviction order is
    /// identical on every host.
    pub fn estimated_bytes(&self) -> usize {
        const ENGINE_BASE_BYTES: usize = 64 << 10;
        const PREP_BYTES: usize = 256 << 10;
        const REPORT_BYTES: usize = 8 << 10;
        ENGINE_BASE_BYTES
            + self.cached_preprocessings() * PREP_BYTES
            + self.cached_reports() * REPORT_BYTES
    }

    /// Build (or reuse) the spec-side preprocessing a property needs,
    /// without running any search, and return the property's
    /// [`PropertyHandle`].
    ///
    /// A verification service calls this while admitting a batch — keyed
    /// by the returned handle — so the first real request does not pay the
    /// one-off setup cost; [`Engine::check_all`] warms the cache the same
    /// way.
    pub fn warm(&self, property: &LtlFoProperty) -> Result<PropertyHandle, VerifasError> {
        property.validate(&self.spec)?;
        self.preprocessing(property, self.options);
        Ok(property.handle())
    }

    /// Verify one property with the engine's default options.
    pub fn check(&self, property: &LtlFoProperty) -> Result<VerificationReport, VerifasError> {
        self.run_request(property, self.options, &mut SearchControl::default())
    }

    /// Start building one verification request.
    pub fn verification(&self) -> VerificationBuilder<'_, '_> {
        VerificationBuilder {
            engine: self,
            property: None,
            options: self.options,
            observer: None,
            deadline: None,
            cancel: None,
            progress_every: 0,
            memory: None,
        }
    }

    /// Verify a batch of properties with the engine's default options and
    /// the default [`BatchOptions`] (sharded scheduling over one core
    /// budget per available core), returning one result per property in
    /// input order.
    ///
    /// The spec-side preprocessing (expression universe, compiled task,
    /// static-analysis graph) is built exactly once per distinct
    /// (task, configuration) key — see [`crate::counters`] — and the
    /// per-property searches are scheduled by [`crate::schedule`]'s
    /// [`Scheduler`]: wide while properties are queued, then cores freed
    /// by finished properties are reassigned to still-running searches.
    /// The per-property results are bit-identical to sequential
    /// [`Engine::check`] calls regardless of the scheduling.
    pub fn check_all(
        &self,
        properties: &[LtlFoProperty],
    ) -> Vec<Result<VerificationReport, VerifasError>> {
        self.check_all_with(properties, BatchOptions::default())
    }

    /// [`Engine::check_all`] under explicit [`BatchOptions`] (core budget
    /// and scheduling policy).
    pub fn check_all_with(
        &self,
        properties: &[LtlFoProperty],
        batch: BatchOptions,
    ) -> Vec<Result<VerificationReport, VerifasError>> {
        self.batch().batch_options(batch).run(properties)
    }

    /// Start building one batch verification request: scheduling knobs
    /// ([`BatchOptions`]), per-request [`VerifierOptions`], a batch-wide
    /// [`CancelToken`] and a streaming per-property result callback.
    pub fn batch(&self) -> BatchBuilder<'_, '_> {
        BatchBuilder {
            engine: self,
            batch: BatchOptions::default(),
            options: self.options,
            cancel: None,
            deadline: None,
            on_result: None,
            on_event: None,
            scheduler_handle: None,
            memory: None,
        }
    }

    /// Get or build the preprocessing shared by all properties with the
    /// same [`PrepKey`].
    fn preprocessing(
        &self,
        property: &LtlFoProperty,
        options: VerifierOptions,
    ) -> Arc<TaskPreprocessing> {
        let extra_constants: Vec<DataValue> = property
            .condition_constants()
            .into_iter()
            .filter(|c| !self.base_constants.contains(c))
            .collect();
        let key = PrepKey {
            task: property.task,
            include_sets: options.handle_artifact_relations,
            global_types: property.global_vars.clone(),
            extra_constants,
        };
        // Recover from poisoning instead of propagating it: the cache is
        // only ever mutated *after* a build succeeds, so a panic during a
        // build (contained per-property by `check_all`) leaves the map
        // itself consistent — treating the poison as fatal would turn one
        // bad property into a permanently broken engine.
        let mut cache = lock_ignoring_poison(&self.cache);
        if let Some(prep) = cache.get(&key) {
            return Arc::clone(prep);
        }
        // Bound the cache: distinct keys come from properties introducing
        // unseen constants or global types, which an adversarial stream
        // could mint indefinitely.  Dropping everything is safe — entries
        // are pure caches — and simpler than tracking recency.
        if cache.len() >= PREPROCESSING_CACHE_CAPACITY {
            cache.clear();
        }
        let mut constants = self.base_constants.clone();
        constants.extend(key.extra_constants.iter().cloned());
        let universe = ExprUniverse::build(&self.spec, key.task, &key.global_types, &constants);
        let task = SymbolicTask::with_universe(&self.spec, key.task, universe, key.include_sets);
        let prep = Arc::new(TaskPreprocessing {
            task,
            spec_graph: std::sync::OnceLock::new(),
            memo: TransitionMemo::new(),
        });
        cache.insert(key, Arc::clone(&prep));
        prep
    }

    /// Run one request against the shared preprocessing.
    fn run_request(
        &self,
        property: &LtlFoProperty,
        options: VerifierOptions,
        control: &mut SearchControl<'_>,
    ) -> Result<VerificationReport, VerifasError> {
        property.validate(&self.spec)?;
        let key = ReportKey::new(property, &options);
        if self.reuse != ReuseMode::Cold {
            if let Some(report) = lock_ignoring_poison(&self.reports).get(&key) {
                use std::sync::atomic::Ordering;
                crate::counters::REPORTS_REUSED.fetch_add(1, Ordering::Relaxed);
                return Ok((**report).clone());
            }
        }
        let prep = self.preprocessing(property, options);
        // The property was validated against the engine's spec just above,
        // and the cached task was compiled from that same spec.
        let mut product = ProductSystem::with_task_prevalidated(prep.task.clone(), property);
        if options.static_analysis {
            let graph = prep
                .spec_graph(&self.spec, property.task)
                .with_property(property, &product.task.universe);
            let removed = graph.non_violating_edges(&product.task.universe);
            product.set_static_removed(removed);
        }
        if self.reuse == ReuseMode::Replay {
            // Scope the memo to the final removed-edge set (recorded
            // successors are only valid under the removed set they were
            // enumerated with), after `set_static_removed` above.
            let fp = static_removed_fingerprint(&product.task.static_removed);
            product.set_memo(prep.memo.scope(fp));
        }
        let mut result = run_verification(&product, options, control);
        // A memory-budgeted run that tripped its lease degrades to a
        // typed error instead of a (limit-shaped) report: the verdict
        // would be Inconclusive anyway, and the caller needs to
        // distinguish "out of budget" from "out of states" to size a
        // retry.  Checked before caching — an exhausted run must never
        // answer a future request.
        if control.memory_exhausted() {
            let (bytes, limit_bytes) = control
                .memory
                .as_ref()
                .map(|lease| (lease.held_bytes(), lease.limit_bytes()))
                .unwrap_or((0, 0));
            return Err(VerifasError::ResourceExhausted {
                states: result.stats.states_created,
                bytes,
                limit_bytes,
            });
        }
        // A run in which a worker thread panicked degrades the same way:
        // a typed error instead of a (limit-shaped) report.  The search
        // tree behind the partial result is consistent — panicked rounds
        // are discarded unapplied — but the verdict would be Inconclusive
        // and the caller needs the panic message, not a report.  Checked
        // before caching, like memory exhaustion above.
        if let Some(reason) = result.failure.take() {
            return Err(VerifasError::Internal { reason });
        }
        let report = VerificationReport::from_result(
            &self.spec,
            &property.name,
            property.task,
            options,
            result,
        );
        // Record for later reuse (within this session on non-cold engines,
        // across sessions through `load_delta`) — but only definite,
        // uncancelled verdicts: a cancelled or inconclusive run depends on
        // wall-clock limits and must not answer a future request.
        if !report.cancelled && report.outcome != VerificationOutcome::Inconclusive {
            let mut reports = lock_ignoring_poison(&self.reports);
            if reports.len() >= REPORT_CACHE_CAPACITY {
                reports.clear();
            }
            reports.insert(key, Arc::new(report.clone()));
        }
        Ok(report)
    }
}

/// Lock a mutex, recovering the guard when a previous holder panicked
/// (the protected data is only mutated through panic-free paths, so the
/// contents stay consistent).
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

use crate::error::panic_message;

/// Builder for one verification request (see [`Engine::verification`]).
pub struct VerificationBuilder<'e, 'o> {
    engine: &'e Engine,
    property: Option<LtlFoProperty>,
    options: VerifierOptions,
    observer: Option<&'o mut dyn ProgressObserver>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    progress_every: usize,
    memory: Option<crate::memory::MemoryBudget>,
}

impl<'e, 'o> VerificationBuilder<'e, 'o> {
    /// The property to verify (required).
    pub fn property(mut self, property: &LtlFoProperty) -> Self {
        self.property = Some(property.clone());
        self
    }

    /// Override the engine's default options for this request.
    pub fn options(mut self, options: VerifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Override only the resource limits for this request.
    pub fn limits(mut self, limits: SearchLimits) -> Self {
        self.options.limits = limits;
        self
    }

    /// Number of worker threads for this one request: they expand the
    /// search frontier of both phases and build the edges of the
    /// repeated-reachability cycle detection (1 = sequential, 0 = one per
    /// available core).  The verdict and witness are deterministic
    /// regardless of this setting; see the "Parallel execution" notes on
    /// `verifas_core::search` and the cycle-detection notes on
    /// `verifas_core::repeated`.
    pub fn search_threads(mut self, threads: usize) -> Self {
        self.options.search_threads = threads;
        self
    }

    /// Attach a progress observer (a `FnMut(&ProgressEvent)` closure works
    /// directly).
    pub fn observer(mut self, observer: &'o mut dyn ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Emit a progress event every `expansions` state expansions
    /// (default 128).
    pub fn progress_every(mut self, expansions: usize) -> Self {
        self.progress_every = expansions;
        self
    }

    /// Stop the run once this much wall-clock time has passed.  The
    /// report's `cancelled` flag is set; the outcome is `Inconclusive`
    /// unless a violation was already found (then `Violated`, which is
    /// always sound).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token; cancelling any clone of it stops the
    /// run at its next state expansion.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Account this run's search state against a shared
    /// [`crate::memory::MemoryBudget`]: the search re-sizes its lease at
    /// round boundaries and, if the pool refuses a grow, stops and
    /// reports a typed [`VerifasError::ResourceExhausted`] instead of
    /// growing without bound.
    pub fn memory_budget(mut self, budget: &crate::memory::MemoryBudget) -> Self {
        self.memory = Some(budget.clone());
        self
    }

    /// Run the request.
    pub fn run(self) -> Result<VerificationReport, VerifasError> {
        let property = self.property.ok_or(VerifasError::MissingProperty)?;
        let mut control = SearchControl {
            observer: self.observer,
            cancel: self.cancel,
            deadline: self.deadline.map(|d| Instant::now() + d),
            progress_every: self.progress_every,
            memory: self.memory.as_ref().map(crate::memory::MemoryBudget::lease),
            ..SearchControl::default()
        };
        self.engine
            .run_request(&property, self.options, &mut control)
    }
}

/// A per-property result callback of a batch run (see
/// [`BatchBuilder::on_result`]).
pub type BatchResultCallback<'f> =
    &'f mut (dyn FnMut(usize, &Result<VerificationReport, VerifasError>) + Send);

/// A shared per-batch progress-event sink (see [`BatchBuilder::on_event`]):
/// called with the property's batch index and the event, concurrently from
/// whichever worker thread coordinates that property's search.
pub type BatchEventSink<'f> = &'f (dyn Fn(usize, &ProgressEvent) + Send + Sync);

/// The typed end-of-batch summary of one [`BatchBuilder::run_with_summary`]
/// call: how the batch ended, without inspecting the per-property result
/// set.  A streaming consumer (a verification service forwarding
/// [`BatchBuilder::on_result`] frames to a client) uses it as the terminal
/// end-of-stream event — in particular [`BatchSummary::aborted`]
/// distinguishes "stream finished" from "stream cut short by cancellation
/// or a deadline".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Number of properties submitted.
    pub properties: usize,
    /// Properties that finished with a report that was *not* cut short
    /// (report present, `cancelled` unset).
    pub completed: usize,
    /// Properties whose report carries the `cancelled` flag (stopped by
    /// the batch token or the batch deadline before finishing).
    pub cancelled: usize,
    /// Properties that reported a typed error instead of a report.
    pub errors: usize,
    /// `true` when the batch was stopped early: the batch-wide
    /// [`CancelToken`] fired, the batch deadline passed, or any property's
    /// report was cut short.  `false` means every submitted property ran
    /// to its natural end.
    pub aborted: bool,
}

/// Builder for one batch verification request (see [`Engine::batch`]).
pub struct BatchBuilder<'e, 'f> {
    engine: &'e Engine,
    batch: BatchOptions,
    options: VerifierOptions,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
    on_result: Option<BatchResultCallback<'f>>,
    on_event: Option<BatchEventSink<'f>>,
    scheduler_handle: Option<SchedulerHandle>,
    memory: Option<crate::memory::MemoryBudget>,
}

impl<'e, 'f> BatchBuilder<'e, 'f> {
    /// Set all scheduling knobs at once.
    pub fn batch_options(mut self, batch: BatchOptions) -> Self {
        self.batch = batch;
        self
    }

    /// The core budget shared by the whole batch (0 = one per available
    /// core).
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch.batch_threads = threads;
        self
    }

    /// How the core budget is spread over the batch (default
    /// [`crate::schedule::SchedulePolicy::Sharded`]).
    pub fn schedule(mut self, schedule: crate::schedule::SchedulePolicy) -> Self {
        self.batch.schedule = schedule;
        self
    }

    /// Override the engine's default options for every property of this
    /// batch.  Under [`crate::schedule::SchedulePolicy::Sharded`] the
    /// `search_threads` member is ignored — the scheduler owns the core
    /// budget; under [`crate::schedule::SchedulePolicy::Flat`] it is each
    /// search's fixed thread count, exactly as in a single request.
    pub fn options(mut self, options: VerifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a batch-wide cancellation token: cancelling any clone stops
    /// every running search at its next state expansion and makes every
    /// not-yet-started property report `cancelled` immediately.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Stop the whole batch once this much wall-clock time has passed
    /// (measured from [`BatchBuilder::run`]): running searches stop at
    /// their next state expansion, queued properties report `cancelled`
    /// immediately — the batch analogue of
    /// [`VerificationBuilder::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a shared progress-event sink: every property's search emits
    /// its [`ProgressEvent`]s into it, tagged with the property's batch
    /// index.  Unlike [`VerificationBuilder::observer`] the sink is called
    /// concurrently (from whichever worker coordinates each search), so it
    /// takes `&self` — a metrics registry of atomics is the intended
    /// consumer.
    pub fn on_event(mut self, sink: BatchEventSink<'f>) -> Self {
        self.on_event = Some(sink);
        self
    }

    /// Attach a [`SchedulerHandle`] to the batch: while the batch runs,
    /// [`SchedulerHandle::set_total`] resizes its total core budget and
    /// re-splits it over the running searches — how a multi-tenant server
    /// reclaims cores from a long batch for a newly arrived interactive
    /// request without waiting for it.  The handle detaches itself when
    /// the batch finishes.
    pub fn scheduler_handle(mut self, handle: &SchedulerHandle) -> Self {
        self.scheduler_handle = Some(handle.clone());
        self
    }

    /// Stream per-property results as they complete: the callback receives
    /// the property's batch index and its result, from the worker thread
    /// that finished it (calls are serialized, but not in index order).
    /// The final `Vec` is still returned in input order.  A panic in the
    /// callback is contained — the property's result is kept and the rest
    /// of the batch proceeds (further callback invocations may be
    /// skipped).
    pub fn on_result(mut self, callback: BatchResultCallback<'f>) -> Self {
        self.on_result = Some(callback);
        self
    }

    /// Account every search of this batch against a shared
    /// [`crate::memory::MemoryBudget`] (one lease per property).  A
    /// search whose lease is refused a grow stops at its next round
    /// boundary and reports a typed
    /// [`VerifasError::ResourceExhausted`] for that property; the rest
    /// of the batch keeps running on whatever the pool still holds.
    pub fn memory_budget(mut self, budget: &crate::memory::MemoryBudget) -> Self {
        self.memory = Some(budget.clone());
        self
    }

    /// Run the batch, returning one result per property in input order.
    pub fn run(
        self,
        properties: &[LtlFoProperty],
    ) -> Vec<Result<VerificationReport, VerifasError>> {
        self.run_with_summary(properties).0
    }

    /// [`BatchBuilder::run`], additionally returning the typed
    /// [`BatchSummary`] of how the batch ended.
    pub fn run_with_summary(
        self,
        properties: &[LtlFoProperty],
    ) -> (Vec<Result<VerificationReport, VerifasError>>, BatchSummary) {
        let engine = self.engine;
        let options = self.options;
        // Warm the cache sequentially so every preprocessing is built once
        // no matter how the worker threads interleave (invalid properties
        // report their error from the worker instead).
        for property in properties {
            let _ = engine.warm(property);
        }
        if properties.is_empty() {
            return (Vec::new(), BatchSummary::default());
        }
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let mut scheduler = Scheduler::new(self.batch, properties.len());
        if let Some(handle) = &self.scheduler_handle {
            scheduler.attach(handle);
        }
        let on_result = self.on_result.map(Mutex::new);
        let outputs = scheduler.run(|index, handle| {
            let property = &properties[index];
            // A panic in one verification must neither poison the whole
            // batch nor abort the process: it becomes a typed per-property
            // error.
            let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut forward = self
                    .on_event
                    .map(|sink| move |event: &ProgressEvent| sink(index, event));
                let mut control = SearchControl {
                    cancel: self.cancel.clone(),
                    deadline,
                    thread_budget: handle.budget().cloned(),
                    observer: forward.as_mut().map(|f| f as &mut dyn ProgressObserver),
                    memory: self.memory.as_ref().map(crate::memory::MemoryBudget::lease),
                    ..SearchControl::default()
                };
                engine.run_request(property, options, &mut control)
            }))
            .unwrap_or_else(|panic| {
                Err(VerifasError::Internal {
                    reason: format!(
                        "verification worker panicked: {}",
                        panic_message(panic.as_ref())
                    ),
                })
            });
            if let Some(callback) = &on_result {
                // The callback is observability only: a panic in user code
                // must not discard the finished report (the scheduler
                // would drop the whole slot and misattribute the loss to a
                // worker failure).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    (lock_ignoring_poison(callback))(index, &report)
                }));
            }
            report
        });
        let results: Vec<Result<VerificationReport, VerifasError>> = outputs
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Some((mut report, stats)) => {
                    if let Ok(report) = &mut report {
                        report.schedule = Some(stats);
                    }
                    report
                }
                // The scheduler only leaves a slot empty when the job
                // closure panicked, and the closure above converts panics
                // into typed errors itself — but a missing result must
                // still be a typed error, never a panic of our own.
                None => Err(VerifasError::Internal {
                    reason: format!(
                        "no worker thread reported a result for property index {index}"
                    ),
                }),
            })
            .collect();
        let mut summary = BatchSummary {
            properties: results.len(),
            ..BatchSummary::default()
        };
        for result in &results {
            match result {
                Ok(report) if report.cancelled => summary.cancelled += 1,
                Ok(_) => summary.completed += 1,
                Err(_) => summary.errors += 1,
            }
        }
        summary.aborted = summary.cancelled > 0
            || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || deadline.is_some_and(|d| Instant::now() >= d);
        (results, summary)
    }
}

/// The canonical hash of a *lowered* specification — the session-cache
/// key of a verification service (`verifas serve`), also printed by
/// `verifas hash` / `verifas validate` so cache behaviour is scriptable.
///
/// The hash covers the whole lowered [`HasSpec`] structure (name, schema,
/// task hierarchy, services, global pre-condition), **not** the source
/// text it may have come from: two `.has` files that differ only in
/// formatting or comments lower to the same structure (the `verifas-spec`
/// frontend lowers through the same builders programmatic callers use,
/// bit-identically) and therefore share one session.  FNV-1a over the
/// structure's canonical rendering; stable for a given build of the
/// library, which is exactly the lifetime of an in-memory session cache.
pub fn spec_hash(spec: &HasSpec) -> u64 {
    use std::fmt::Write;
    struct Fnv(u64);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for byte in s.bytes() {
                self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
    // The derived Debug rendering is a canonical, total serialization of
    // the lowered structure: equal specs render equally, and every field
    // that distinguishes two specs appears in it.
    write!(fnv, "{spec:?}").expect("writing to a hasher cannot fail");
    fnv.0
}

/// [`spec_hash`] rendered as the 16-digit lowercase hex string used on
/// the wire and in the CLI.
pub fn spec_hash_hex(spec: &HasSpec) -> String {
    format!("{:016x}", spec_hash(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::VerificationOutcome;
    use verifas_ltl::{Ltl, PropAtom};
    use verifas_model::schema::attr::data;
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term, VarId};

    fn flow_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "begin",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "finish",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        root.service_parts(
            "reset",
            Condition::eq(Term::var(status), Term::str("Done")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("flow", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn status_is(v: &str) -> Condition {
        Condition::eq(Term::var(VarId::new(0)), Term::str(v))
    }

    fn never(name: &str, spec: &HasSpec, value: &str) -> LtlFoProperty {
        LtlFoProperty::new(
            name,
            spec.root(),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is(value))],
        )
    }

    #[test]
    fn engine_checks_a_property() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let violated = engine.check(&never("never-done", &spec, "Done")).unwrap();
        assert_eq!(violated.outcome, VerificationOutcome::Violated);
        assert!(violated.witness.is_some());
        let satisfied = engine
            .check(&never("never-broken", &spec, "Broken"))
            .unwrap();
        assert_eq!(satisfied.outcome, VerificationOutcome::Satisfied);
        assert!(satisfied.witness.is_none());
    }

    #[test]
    fn builder_requires_a_property() {
        let engine = Engine::load(flow_spec()).unwrap();
        assert!(matches!(
            engine.verification().run(),
            Err(VerifasError::MissingProperty)
        ));
    }

    #[test]
    fn check_all_matches_sequential_checks() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let properties = vec![
            never("a", &spec, "Done"),
            never("b", &spec, "Broken"),
            never("c", &spec, "Working"),
        ];
        let batched = engine.check_all(&properties);
        for (property, batched) in properties.iter().zip(&batched) {
            let single = engine.check(property).unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(single.outcome, batched.outcome, "{}", property.name);
            assert_eq!(single.witness, batched.witness, "{}", property.name);
        }
    }

    #[test]
    fn warm_builds_the_cache_without_searching() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let property = never("warmed", &spec, "Done");
        let handle = engine.warm(&property).unwrap();
        assert_eq!(handle, property.handle());
        assert_eq!(engine.cached_preprocessings(), 1);
        // The subsequent check reuses the warmed preprocessing.
        engine.check(&property).unwrap();
        assert_eq!(engine.cached_preprocessings(), 1);
    }

    #[test]
    fn search_threads_do_not_change_the_verdict() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let property = never("never-done-mt", &spec, "Done");
        let seq = engine.check(&property).unwrap();
        let par = engine
            .verification()
            .property(&property)
            .search_threads(4)
            .run()
            .unwrap();
        assert_eq!(seq.outcome, par.outcome);
        assert_eq!(seq.witness, par.witness);
        assert_eq!(par.stats.threads, 4);
        assert_eq!(seq.stats.threads, 1);
    }

    #[test]
    fn invalid_properties_report_typed_errors() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        // Proposition 1 has no interpretation.
        let bad = LtlFoProperty::new(
            "bad",
            spec.root(),
            vec![],
            Ltl::globally(Ltl::prop(7)),
            vec![],
        );
        assert!(matches!(engine.check(&bad), Err(VerifasError::Model(_))));
    }

    #[test]
    fn spec_hash_is_canonical_over_the_lowered_structure() {
        let spec = flow_spec();
        assert_eq!(spec_hash(&spec), spec_hash(&spec.clone()));
        assert_eq!(spec_hash_hex(&spec).len(), 16);
        // Any structural difference — even just the name — changes the key
        // (a session must never be shared across distinct specs).
        let mut renamed = spec.clone();
        renamed.name = "flow2".to_owned();
        assert_ne!(spec_hash(&spec), spec_hash(&renamed));
        let mut extended = spec.clone();
        extended.tasks[0].services.pop();
        assert_ne!(spec_hash(&spec), spec_hash(&extended));
    }

    #[test]
    fn a_clean_batch_summarizes_as_not_aborted() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let properties = vec![never("a", &spec, "Done"), never("b", &spec, "Broken")];
        let (results, summary) = engine.batch().run_with_summary(&properties);
        assert_eq!(results.len(), 2);
        assert_eq!(
            summary,
            BatchSummary {
                properties: 2,
                completed: 2,
                cancelled: 0,
                errors: 0,
                aborted: false,
            }
        );
    }

    #[test]
    fn a_cancelled_batch_summarizes_as_aborted() {
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let properties = vec![never("a", &spec, "Done"), never("b", &spec, "Broken")];
        let token = CancelToken::new();
        token.cancel();
        let (results, summary) = engine
            .batch()
            .cancel_token(token)
            .run_with_summary(&properties);
        assert_eq!(results.len(), 2);
        assert!(summary.aborted);
        assert_eq!(summary.completed, 0);
        assert_eq!(summary.cancelled, 2);
        for result in &results {
            assert!(result.as_ref().unwrap().cancelled);
        }
    }

    #[test]
    fn batch_event_sinks_see_every_property_phase() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        let properties = vec![never("a", &spec, "Done"), never("b", &spec, "Broken")];
        let seen = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let sink = |index: usize, event: &crate::observer::ProgressEvent| {
            if matches!(event, crate::observer::ProgressEvent::PhaseFinished { .. }) {
                seen[index].fetch_add(1, Ordering::Relaxed);
            }
        };
        let results = engine.batch().on_event(&sink).run(&properties);
        assert!(results.iter().all(Result::is_ok));
        for counter in &seen {
            assert!(counter.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn preprocessing_is_cached_per_key() {
        // (The strict exactly-once assertion via crate::counters lives in
        // the facade's `check_all_sharing` integration test, which runs in
        // its own process; the process-wide counters are not reliable here
        // where other unit tests build universes concurrently.)
        let spec = flow_spec();
        let engine = Engine::load(spec.clone()).unwrap();
        engine.check(&never("p1", &spec, "Done")).unwrap();
        engine.check(&never("p2", &spec, "Working")).unwrap();
        assert_eq!(engine.cached_preprocessings(), 1);
        // "Broken" introduces a constant the spec does not mention, so it
        // gets its own universe; the first two share one.
        engine.check(&never("p3", &spec, "Broken")).unwrap();
        assert_eq!(engine.cached_preprocessings(), 2);
    }

    /// Zero the wall-clock-dependent report fields (the only ones that may
    /// legitimately differ between a cold and an incremental run).
    fn scrubbed(mut report: VerificationReport) -> VerificationReport {
        report.stats.elapsed_ms = 0;
        if let Some(stats) = &mut report.repeated_stats {
            stats.elapsed_ms = 0;
        }
        if let Some(cycle) = &mut report.repeated_cycle {
            cycle.edge_micros = 0;
            cycle.scc_micros = 0;
        }
        for worker in &mut report.workers {
            worker.busy_micros = 0;
        }
        report.schedule = None;
        report
    }

    #[test]
    fn load_delta_carries_preprocessing_and_reports() {
        let spec = flow_spec();
        let prior = Engine::load(spec.clone()).unwrap();
        let property = never("delta-carried", &spec, "Done");
        let cold = prior.check(&property).unwrap();
        assert_eq!(prior.cached_preprocessings(), 1);
        assert_eq!(prior.cached_reports(), 1);

        let (warm, summary) = Engine::load_delta(&prior, spec.clone(), ReuseMode::Preproc).unwrap();
        assert_eq!(summary.tasks, 1);
        assert_eq!(summary.tasks_unchanged, 1);
        assert_eq!(summary.preps_carried, 1);
        assert_eq!(summary.reports_carried, 1);
        // The preprocessing was transplanted, not rebuilt: it is present
        // before the warm engine has run anything.
        assert_eq!(warm.cached_preprocessings(), 1);

        // The identical request is answered from the carried report — the
        // exact same report, wall-clock fields included.
        let warm_report = warm.check(&property).unwrap();
        assert_eq!(warm_report, cold);
        // No new preprocessing appeared to answer it.
        assert_eq!(warm.cached_preprocessings(), 1);
    }

    #[test]
    fn a_cold_delta_carries_nothing() {
        let spec = flow_spec();
        let prior = Engine::load(spec.clone()).unwrap();
        prior.check(&never("cold-base", &spec, "Done")).unwrap();
        let (fresh, summary) = Engine::load_delta(&prior, spec, ReuseMode::Cold).unwrap();
        assert_eq!(summary.preps_carried, 0);
        assert_eq!(summary.reports_carried, 0);
        assert_eq!(fresh.cached_preprocessings(), 0);
        assert_eq!(fresh.cached_reports(), 0);
    }

    #[test]
    fn a_changed_spec_carries_no_stale_artefacts() {
        let spec = flow_spec();
        let prior = Engine::load(spec.clone()).unwrap();
        prior.check(&never("stale", &spec, "Done")).unwrap();
        // Change the root's service guard: its slice hash moves, so
        // nothing may be carried.
        let mut edited = spec.clone();
        edited.tasks[0].services[1].pre = Condition::neq(Term::var(VarId::new(0)), Term::Null);
        let (warm, summary) =
            Engine::load_delta(&prior, edited.clone(), ReuseMode::Preproc).unwrap();
        assert_eq!(summary.tasks_unchanged, 0);
        assert_eq!(summary.preps_carried, 0);
        assert_eq!(summary.reports_carried, 0);
        // The edited engine still verifies correctly from scratch.
        let report = warm.check(&never("stale", &edited, "Done")).unwrap();
        assert_eq!(report.outcome, VerificationOutcome::Violated);
    }

    #[test]
    fn replay_mode_records_and_replays_bit_identically() {
        let spec = flow_spec();
        let property = never("replayed", &spec, "Done");
        let cold = Engine::load(spec.clone())
            .unwrap()
            .check(&property)
            .unwrap();

        let prior =
            Engine::load_with_reuse(spec.clone(), VerifierOptions::default(), ReuseMode::Replay)
                .unwrap();
        let first = prior.check(&property).unwrap();
        assert_eq!(scrubbed(first), scrubbed(cold.clone()));

        // Carry the recorded enumerations into a successor session and
        // force a real search there with a renamed (otherwise identical)
        // property: the report cache misses, the memo hits.
        let (warm, summary) = Engine::load_delta(&prior, spec.clone(), ReuseMode::Replay).unwrap();
        assert_eq!(summary.preps_carried, 1);
        let hits_before = crate::counters::memo_hits();
        let mut replayed = warm.check(&never("replayed-2", &spec, "Done")).unwrap();
        assert!(
            crate::counters::memo_hits() > hits_before,
            "the carried memo must serve enumerations"
        );
        replayed.property = "replayed".to_owned();
        assert_eq!(scrubbed(replayed), scrubbed(cold));
    }
}
