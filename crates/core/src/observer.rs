//! Run observability and cancellation.
//!
//! Verification of a hard property can run for minutes; a production
//! service needs to *watch* a run (how many states, how big is the
//! frontier, which phase) and to *stop* one (an operator cancels, a
//! request deadline passes).  This module provides both:
//!
//! * [`ProgressObserver`] — a callback trait receiving [`ProgressEvent`]s
//!   as the search expands states and transitions between phases.  Closures
//!   `FnMut(&ProgressEvent)` implement it directly.
//! * [`CancelToken`] — a cheap, cloneable handle that stops a running
//!   search from another thread.
//! * [`SearchControl`] — bundles an observer, a token, a deadline and the
//!   event granularity; threaded through [`crate::search::KarpMillerSearch`]
//!   and [`crate::repeated::find_infinite_violation_with`].
//!
//! A cancelled or past-deadline search stops at the next state expansion
//! and reports itself like a resource-limited one — outcome
//! `Inconclusive`, or `Violated` when a violation was already in hand —
//! with [`crate::search::SearchStats::cancelled`] set.

use crate::memory::MemoryLease;
use crate::schedule::ThreadBudget;
use crate::search::SearchStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The two search phases of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The main Karp–Miller reachability search (finds finite violations).
    Reachability,
    /// The repeated-reachability analysis (finds infinite violations).
    RepeatedReachability,
}

/// One progress event of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A search phase begins.
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// Periodic progress within a phase (every
    /// [`SearchControl::progress_every`] state expansions).
    Progress {
        /// Which phase.
        phase: Phase,
        /// Tree nodes created so far in this phase.
        states_created: usize,
        /// Current size of the search frontier (worklist).
        frontier: usize,
        /// ω-accelerations applied so far in this phase.
        accelerations: usize,
    },
    /// A search phase ended (exhausted, violated, limited or cancelled).
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Final statistics of the phase.
        stats: SearchStats,
    },
    /// Periodic progress of the cycle-detection pass of the
    /// repeated-reachability analysis: emitted every
    /// [`SearchControl::progress_every`] active states whose outgoing
    /// edges of the abstract transition graph have been constructed.
    /// These events follow the auxiliary search's `PhaseFinished` event
    /// within [`Phase::RepeatedReachability`] — the post-pass runs on the
    /// finished search's active set.
    CycleProgress {
        /// Which phase (always [`Phase::RepeatedReachability`]).
        phase: Phase,
        /// Active states whose outgoing edges have been built so far.
        states_processed: usize,
        /// Edges of the abstract transition graph built so far.
        edges_built: usize,
    },
}

/// Observer of verification progress.
///
/// Implemented for every `FnMut(&ProgressEvent) + Send + Sync`, so a
/// closure can be passed directly to `verification().observer(...)`.
///
/// The trait requires `Sync` so that a [`SearchControl`] holding an
/// observer is itself `Sync`: the parallel search shares one control with
/// all of its worker threads (for cancellation and deadline checks) while
/// events keep being emitted, in deterministic order, from the
/// coordinating thread.
pub trait ProgressObserver: Send + Sync {
    /// Called for every event, in order, from the thread coordinating the
    /// search.
    fn on_event(&mut self, event: &ProgressEvent);
}

impl<F: FnMut(&ProgressEvent) + Send + Sync> ProgressObserver for F {
    fn on_event(&mut self, event: &ProgressEvent) {
        self(event)
    }
}

/// A cheap, cloneable cancellation handle.
///
/// All clones share one flag: calling [`CancelToken::cancel`] on any clone
/// stops every search the token was handed to at its next state expansion.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Observer, cancellation and deadline for one search run.
///
/// [`SearchControl::default`] observes nothing and never stops a search.
///
/// The control is `Sync`: the parallel search hands shared references to
/// every worker thread so they can poll [`SearchControl::should_stop`]
/// between state expansions, while event emission (which needs `&mut`)
/// stays on the coordinating thread.
#[derive(Default)]
pub struct SearchControl<'o> {
    /// Progress observer, if any.
    pub observer: Option<&'o mut dyn ProgressObserver>,
    /// Cooperative cancellation token, if any.
    pub cancel: Option<CancelToken>,
    /// Absolute wall-clock deadline, if any.
    pub deadline: Option<Instant>,
    /// Emit a [`ProgressEvent::Progress`] every this many state
    /// expansions (0 = use the default of 128).
    pub progress_every: usize,
    /// The phase label attached to emitted events.
    pub phase: Option<Phase>,
    /// A dynamic thread budget installed by the batch
    /// [`crate::schedule::Scheduler`].  When set, it overrides the
    /// configured `search_threads`: the search re-polls it at every round
    /// boundary (and the repeated-reachability edge construction at every
    /// wave boundary), so a batch can grow or shrink a running search's
    /// worker pool without changing its result.
    pub thread_budget: Option<ThreadBudget>,
    /// A lease on a server-wide [`crate::memory::MemoryBudget`].  When
    /// set, the search re-accounts its estimated resident bytes at
    /// every round boundary (and the repeated-reachability edge
    /// construction at every wave boundary) and stops — like a state
    /// limit — once the pool refuses a grow.  The sticky verdict is
    /// read back through [`SearchControl::memory_exhausted`].
    pub memory: Option<MemoryLease>,
}

impl<'o> SearchControl<'o> {
    /// Granularity of progress events, with the default applied.
    pub(crate) fn granularity(&self) -> usize {
        if self.progress_every == 0 {
            128
        } else {
            self.progress_every
        }
    }

    pub(crate) fn current_phase(&self) -> Phase {
        self.phase.unwrap_or(Phase::Reachability)
    }

    /// The worker count for the next round of parallel work: the live
    /// value of the installed [`ThreadBudget`], or `configured` when no
    /// budget governs this run.  Never 0.
    pub(crate) fn workers_for_round(&self, configured: usize) -> usize {
        match &self.thread_budget {
            Some(budget) => budget.current(),
            None => configured.max(1),
        }
    }

    /// Report the live frontier width to the installed [`ThreadBudget`]
    /// (no-op when this run is not batch-scheduled).  The scheduler
    /// weights the straggler budget split by these widths; the value is
    /// advisory and never changes a result.
    pub(crate) fn report_frontier(&self, width: usize) {
        if let Some(budget) = &self.thread_budget {
            budget.report_frontier(width);
        }
    }

    /// Re-account the run's estimated resident size against the
    /// installed memory lease.  Returns `false` when the budget refused
    /// the grow — the caller stops at this boundary, exactly like a
    /// state limit.  Always `true` when no budget governs this run.
    pub(crate) fn charge_memory(&self, bytes: usize) -> bool {
        match &self.memory {
            Some(lease) => lease.resize(bytes),
            None => true,
        }
    }

    /// Whether the installed memory lease ever refused a grow (sticky;
    /// `false` when no budget governs this run).
    pub fn memory_exhausted(&self) -> bool {
        self.memory.as_ref().is_some_and(MemoryLease::exhausted)
    }

    /// `true` when the run was cancelled or its deadline has passed.
    /// Callable from any thread (the parallel search polls it from every
    /// worker between state expansions).
    pub fn should_stop(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    pub(crate) fn emit(&mut self, event: ProgressEvent) {
        if let Some(observer) = self.observer.as_mut() {
            observer.on_event(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_and_token_are_shareable_across_threads() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<SearchControl<'_>>();
        assert_sync::<CancelToken>();
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn default_control_never_stops() {
        let control = SearchControl::default();
        assert!(!control.should_stop());
        assert_eq!(control.granularity(), 128);
    }

    #[test]
    fn past_deadline_stops() {
        let control = SearchControl {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SearchControl::default()
        };
        assert!(control.should_stop());
    }

    #[test]
    fn closures_are_observers() {
        let mut events = Vec::new();
        {
            let mut closure = |e: &ProgressEvent| events.push(*e);
            let mut control = SearchControl {
                observer: Some(&mut closure),
                ..SearchControl::default()
            };
            control.emit(ProgressEvent::PhaseStarted {
                phase: Phase::Reachability,
            });
        }
        assert_eq!(events.len(), 1);
    }
}
