//! Static analysis of non-violating constraints (Section 3.7).
//!
//! The *constraint graph* `G` collects every `=`/`≠` edge that any symbolic
//! transition or property condition could ever add to a partial
//! isomorphism type (Definition 24).  An edge of `G` is *non-violating*
//! when adding it to any consistent subgraph keeps the subgraph consistent;
//! such edges can be dropped from every reachable type without changing
//! the verification outcome, shrinking the state space.
//!
//! Following the paper, a `≠`-edge is non-violating when its endpoints lie
//! in different connected components of the `=`-edges.  For `=`-edges the
//! paper uses biconnected components; this implementation uses the simpler,
//! *conservative* criterion that the whole `=`-connected component contains
//! no conflict (no `≠`-edge between two of its members and at most one
//! constant among its members) — every edge it removes is also removed by
//! the exact criterion, so soundness is preserved and only some reduction
//! opportunities are missed.

use crate::eval::compile_condition;
use crate::expr::{ExprId, ExprUniverse};
use crate::pit::Edge;
use std::collections::{HashMap, HashSet};
use verifas_ltl::{LtlFoProperty, PropAtom};
use verifas_model::{Condition, HasSpec, TaskId};

/// The constraint graph of a specification/property pair, restricted to the
/// verified task's expression universe.
#[derive(Debug, Default, Clone)]
pub struct ConstraintGraph {
    /// All `=`-edges that can ever be asserted.
    pub eq_edges: HashSet<(ExprId, ExprId)>,
    /// All `≠`-edges that can ever be asserted.
    pub neq_edges: HashSet<(ExprId, ExprId)>,
}

impl ConstraintGraph {
    /// Build the constraint graph from every condition observable in local
    /// runs of the task (service pre/post conditions, opening/closing
    /// guards, the global pre-condition) and the property's conditions.
    pub fn build(
        spec: &HasSpec,
        task: TaskId,
        property: &LtlFoProperty,
        universe: &ExprUniverse,
    ) -> Self {
        ConstraintGraph::build_spec_side(spec, task, universe).with_property(property, universe)
    }

    /// Build the property-independent part of the constraint graph: every
    /// condition observable in local runs of the task (service pre/post
    /// conditions, opening/closing guards, the global pre-condition).  The
    /// result can be shared across properties of the same task and extended
    /// per property with [`ConstraintGraph::with_property`].
    pub fn build_spec_side(spec: &HasSpec, task: TaskId, universe: &ExprUniverse) -> Self {
        crate::counters::SPEC_GRAPH_BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut graph = ConstraintGraph::default();
        let mut conditions: Vec<Condition> = Vec::new();
        let task_def = spec.task(task);
        for svc in &task_def.services {
            conditions.push(svc.pre.clone());
            conditions.push(svc.post.clone());
        }
        conditions.push(task_def.closing.pre.clone());
        for &child in spec.children(task) {
            conditions.push(spec.task(child).opening.pre.clone());
        }
        if task == spec.root() {
            conditions.push(spec.global_pre.clone());
        }
        graph.add_conditions(&conditions, universe);
        graph
    }

    /// Extend a (spec-side) graph with the edges of a property's FO
    /// conditions and their negations, returning the completed graph.
    pub fn with_property(&self, property: &LtlFoProperty, universe: &ExprUniverse) -> Self {
        let mut graph = self.clone();
        let mut conditions: Vec<Condition> = Vec::new();
        for atom in &property.props {
            if let PropAtom::Condition(c) = atom {
                conditions.push(c.clone());
                conditions.push(Condition::not(c.clone()));
            }
        }
        graph.add_conditions(&conditions, universe);
        graph
    }

    fn add_conditions(&mut self, conditions: &[Condition], universe: &ExprUniverse) {
        for cond in conditions {
            // Compiling both the condition and, through DNF, all its atoms
            // yields exactly the edges a symbolic transition may add; add
            // their navigation consequences as well (Definition 24 closes
            // `=`-edges under common suffixes).
            let compiled = compile_condition(&cond.nnf(), universe);
            for conjunct in &compiled.conjuncts {
                for edge in conjunct {
                    self.add_edge_with_suffixes(*edge, universe);
                }
            }
        }
    }

    fn add_edge_with_suffixes(&mut self, edge: Edge, universe: &ExprUniverse) {
        let (a, b) = edge.endpoints();
        if edge.is_neq() {
            self.neq_edges.insert(ordered(a, b));
        } else {
            self.eq_edges.insert(ordered(a, b));
            // x = y implies x.w = y.w for every common suffix w.
            let mut stack = vec![(a, b)];
            while let Some((x, y)) = stack.pop() {
                for (attr, cx) in &universe.expr(x).children {
                    if let Some(cy) = universe.navigate(y, *attr) {
                        if self.eq_edges.insert(ordered(*cx, cy)) {
                            stack.push((*cx, cy));
                        }
                    }
                }
            }
        }
    }

    /// The set of non-violating edges: these can be removed from every
    /// reachable partial isomorphism type (Section 3.7).
    pub fn non_violating_edges(&self, universe: &ExprUniverse) -> HashSet<Edge> {
        // Connected components of the =-edges.
        let n = universe.len();
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let root = find(dsu, dsu[x]);
                dsu[x] = root;
            }
            dsu[x]
        }
        for &(a, b) in &self.eq_edges {
            let (ra, rb) = (find(&mut dsu, a as usize), find(&mut dsu, b as usize));
            if ra != rb {
                dsu[ra] = rb;
            }
        }
        // A component is conflicted when it contains both endpoints of a
        // ≠-edge or more than one constant (including null).
        let mut conflicted: HashSet<usize> = HashSet::new();
        for &(a, b) in &self.neq_edges {
            let (ra, rb) = (find(&mut dsu, a as usize), find(&mut dsu, b as usize));
            if ra == rb {
                conflicted.insert(ra);
            }
        }
        let mut constants_per_component: HashMap<usize, usize> = HashMap::new();
        for (id, expr) in universe.iter() {
            let is_const = matches!(
                expr.head,
                crate::expr::ExprHead::Null | crate::expr::ExprHead::Const(_)
            ) && expr.path.is_empty();
            if is_const {
                let r = find(&mut dsu, id as usize);
                *constants_per_component.entry(r).or_insert(0) += 1;
            }
        }
        for (component, count) in constants_per_component {
            if count > 1 {
                conflicted.insert(component);
            }
        }
        let mut out = HashSet::new();
        // ≠-edges between different =-components are non-violating.
        for &(a, b) in &self.neq_edges {
            if find(&mut dsu, a as usize) != find(&mut dsu, b as usize) {
                out.insert(Edge::neq(a, b));
            }
        }
        // =-edges inside a conflict-free component are non-violating.
        for &(a, b) in &self.eq_edges {
            let r = find(&mut dsu, a as usize);
            if !conflicted.contains(&r) {
                out.insert(Edge::eq(a, b));
            }
        }
        out
    }
}

fn ordered(a: ExprId, b: ExprId) -> (ExprId, ExprId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_ltl::Ltl;
    use verifas_model::schema::attr::data;
    use verifas_model::{DatabaseSchema, SpecBuilder, TaskBuilder, Term, VarId, VarRef};

    /// Spec where variable x is compared only by equality to "a" (never
    /// disequated) and variable y is both equated and disequated to "b".
    fn spec_and_property() -> (HasSpec, LtlFoProperty) {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let x = root.data_var("x");
        let y = root.data_var("y");
        root.service_parts(
            "sx",
            Condition::True,
            Condition::eq(Term::var(x), Term::str("a")),
            vec![],
            None,
        );
        root.service_parts(
            "sy",
            Condition::neq(Term::var(y), Term::str("b")),
            Condition::eq(Term::var(y), Term::str("b")),
            vec![],
            None,
        );
        let spec = SpecBuilder::new("sa", db, root.build()).build().unwrap();
        let property = LtlFoProperty::new(
            "trivial",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::prop(0)),
            vec![PropAtom::Condition(Condition::True)],
        );
        (spec, property)
    }

    #[test]
    fn equality_only_constraints_are_non_violating() {
        let (spec, property) = spec_and_property();
        let st = crate::transition::SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let graph = ConstraintGraph::build(&spec, spec.root(), &property, &st.universe);
        let removable = graph.non_violating_edges(&st.universe);
        let u = &st.universe;
        let x = u.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        let y = u.var_expr(VarRef::Task(VarId::new(1))).unwrap();
        let a = u.const_expr(&verifas_model::DataValue::str("a")).unwrap();
        let b = u.const_expr(&verifas_model::DataValue::str("b")).unwrap();
        // x = "a" can never be violated (x is never disequated from
        // anything), so it is removable.
        assert!(removable.contains(&Edge::eq(x, a)));
        // y = "b" conflicts with the pre-condition y ≠ "b", so it must stay.
        assert!(!removable.contains(&Edge::eq(y, b)));
        // The ≠-edge y ≠ "b" connects two expressions joined by an =-edge
        // elsewhere in the graph (y = "b"), so it is violating and must stay.
        assert!(!removable.contains(&Edge::neq(y, b)));
    }

    #[test]
    fn disconnected_disequalities_are_non_violating() {
        // A ≠ between two expressions never connected by = edges can never
        // cause inconsistency.
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let x = root.data_var("x");
        let y = root.data_var("y");
        root.service_parts(
            "s",
            Condition::neq(Term::var(x), Term::var(y)),
            Condition::True,
            vec![],
            None,
        );
        let spec = SpecBuilder::new("sa2", db, root.build()).build().unwrap();
        let property = LtlFoProperty::new(
            "trivial",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::prop(0)),
            vec![PropAtom::Condition(Condition::True)],
        );
        let st = crate::transition::SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let graph = ConstraintGraph::build(&spec, spec.root(), &property, &st.universe);
        let removable = graph.non_violating_edges(&st.universe);
        let u = &st.universe;
        let xe = u.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        let ye = u.var_expr(VarRef::Task(VarId::new(1))).unwrap();
        assert!(removable.contains(&Edge::neq(xe, ye)));
    }
}
